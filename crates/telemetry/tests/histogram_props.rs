//! Property tests certifying the log2 histogram against a naive
//! sorted-vector model: bucket counts conserve samples, min/max and
//! percentile bounds bracket the true order statistics, and merging is
//! lossless (merge(a, b) == record(a ++ b)).
#![cfg(feature = "enabled")]

use proptest::prelude::*;
use softmem_telemetry::{bucket_bounds, bucket_index, Histogram};

/// Sample streams that cover every bucket magnitude: small ints,
/// zeros, and full-range values built from a base and a shift.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            3 => 0u64..50,
            2 => (1u64..=1024).prop_map(|v| v * 1_000),
            1 => (1u64..=255, 0u32..56).prop_map(|(base, shift)| base << shift),
        ],
        1..200,
    )
}

/// Nearest-rank percentile of a sorted sample vector.
fn true_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_counts_sum_to_n(xs in samples()) {
        let h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, xs.len() as u64);
        let bucket_total: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, xs.len() as u64);
        prop_assert_eq!(s.sum, xs.iter().sum::<u64>());
        // Every sample landed in the bucket whose bounds contain it.
        for &(b, _) in &s.buckets {
            let (lo, hi) = bucket_bounds(b);
            prop_assert!(xs.iter().any(|&x| lo <= x && x <= hi));
            prop_assert!(xs.iter().filter(|&&x| bucket_index(x) == b).count() > 0);
        }
    }

    #[test]
    fn min_max_and_percentile_bounds_bracket_truth(xs in samples(), p in 1u32..100) {
        let h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let s = h.snapshot();
        prop_assert_eq!(s.min, sorted[0]);
        prop_assert_eq!(s.max, *sorted.last().unwrap());
        let truth = true_percentile(&sorted, p as f64);
        let (lo, hi) = s.percentile(p as f64);
        prop_assert!(
            lo <= truth && truth <= hi,
            "p{} bounds ({},{}) miss true value {}",
            p, lo, hi, truth
        );
        prop_assert!(lo >= s.min && hi <= s.max);
    }

    #[test]
    fn merge_equals_concatenated_record(a in samples(), b in samples()) {
        let ha = Histogram::new();
        for &x in &a {
            ha.record(x);
        }
        let hb = Histogram::new();
        for &x in &b {
            hb.record(x);
        }
        ha.merge_from(&hb);

        let concat = Histogram::new();
        for &x in a.iter().chain(b.iter()) {
            concat.record(x);
        }
        prop_assert_eq!(ha.snapshot(), concat.snapshot());
    }
}
