//! Machine-wide observability primitives for the soft-memory stack.
//!
//! Three hot-path primitives — [`Counter`], [`Gauge`], and a
//! fixed-bucket log2 [`Histogram`] — plus a labeled [`Registry`] that
//! renders point-in-time [`Snapshot`]s as single-line JSON, a human
//! table, or a flat `name:value;…` string. Everything is lock-free and
//! allocation-free on the record path: metrics are plain atomics,
//! registration (the only locking, allocating operation) happens once
//! at construction time.
//!
//! The whole crate is gated on the `enabled` feature (on by default).
//! With `--no-default-features` every primitive compiles to a
//! zero-sized no-op, registries still remember their metric *names*
//! (so snapshots render zeros rather than disappearing), and the
//! public API is unchanged — callers never need `cfg` guards.
//! Downstream code that must *branch* on instrumentation (tests,
//! invariant checkers) reads the [`ENABLED`] constant instead of
//! inspecting cargo features, so feature unification across the
//! workspace cannot produce a crate that disagrees with the shim.
//!
//! Latency is recorded in nanoseconds via [`Timer`]. For hot paths,
//! [`Timer::start_sampled`] times one in [`SAMPLE_EVERY`] operations
//! (driven by a counter the caller was bumping anyway), which keeps
//! the instrumented alloc path within its <2% overhead budget.

use std::fmt::Write as _;
use std::sync::Arc;

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Whether instrumentation is compiled in. Runtime code that must
/// behave differently under `--no-default-features` (e.g. the
/// metrics-consistency invariant family) branches on this constant.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Sampled timers fire when `n & SAMPLE_MASK == 0`.
pub const SAMPLE_MASK: u64 = 63;

/// One in this many operations is timed by [`Timer::start_sampled`].
pub const SAMPLE_EVERY: u64 = SAMPLE_MASK + 1;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b - 1]`, up to bucket 64 for the top
/// of the u64 range.
pub const BUCKETS: usize = 65;

/// The log2 bucket index for a sample.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `(low, high)` value range covered by a bucket.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    assert!(b < BUCKETS, "bucket index out of range");
    if b == 0 {
        (0, 0)
    } else if b == 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (b - 1), (1 << b) - 1)
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    v: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter {
            #[cfg(feature = "enabled")]
            v: AtomicU64::new(0),
        }
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.v.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Adds one event, returning the *previous* count — the idiom that
    /// feeds [`Timer::start_sampled`] without a second atomic op.
    #[inline]
    pub fn inc(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.v.fetch_add(1, Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Current count (always 0 when instrumentation is compiled out).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.v.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }
}

/// A point-in-time signed level (occupancy, slack, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    #[cfg(feature = "enabled")]
    v: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            #[cfg(feature = "enabled")]
            v: AtomicI64::new(0),
        }
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(feature = "enabled")]
        self.v.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Adjusts the level by a delta.
    #[inline]
    pub fn add(&self, d: i64) {
        #[cfg(feature = "enabled")]
        self.v.fetch_add(d, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = d;
    }

    /// Current level (always 0 when instrumentation is compiled out).
    #[inline]
    pub fn get(&self) -> i64 {
        #[cfg(feature = "enabled")]
        {
            self.v.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }
}

/// A fixed-bucket log2 histogram of u64 samples (typically
/// nanoseconds). Recording is four relaxed atomic RMW ops plus two
/// conditional min/max updates — no locks, no allocation, no floats.
#[derive(Debug)]
pub struct Histogram {
    #[cfg(feature = "enabled")]
    count: AtomicU64,
    #[cfg(feature = "enabled")]
    sum: AtomicU64,
    #[cfg(feature = "enabled")]
    min: AtomicU64,
    #[cfg(feature = "enabled")]
    max: AtomicU64,
    #[cfg(feature = "enabled")]
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            #[cfg(feature = "enabled")]
            count: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            sum: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            min: AtomicU64::new(u64::MAX),
            #[cfg(feature = "enabled")]
            max: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "enabled")]
        {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.min.fetch_min(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.count.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Folds every sample of `other` into `self`. Because buckets are
    /// added exactly, `merge_from` is *lossless*: merging two
    /// histograms yields the same state as recording the concatenated
    /// sample streams into one.
    pub fn merge_from(&self, other: &Histogram) {
        #[cfg(feature = "enabled")]
        {
            self.count
                .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
            self.sum
                .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            self.min
                .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
            self.max
                .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
            for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
                dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        #[cfg(not(feature = "enabled"))]
        let _ = other;
    }

    /// A consistent-enough copy of the current state. (Individual
    /// atomics are read independently; concurrent recording can skew a
    /// snapshot by in-flight samples, which is fine for telemetry and
    /// exact at the testkit's quiesce points.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(feature = "enabled")]
        {
            let count = self.count.load(Ordering::Relaxed);
            let buckets: Vec<(usize, u64)> = self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, b)| (i, b.load(Ordering::Relaxed)))
                .filter(|&(_, n)| n > 0)
                .collect();
            let min = if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            };
            let max = self.max.load(Ordering::Relaxed);
            HistogramSnapshot {
                count,
                sum: self.sum.load(Ordering::Relaxed),
                min,
                max,
                buckets,
            }
        }
        #[cfg(not(feature = "enabled"))]
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        }
    }
}

/// A one-shot latency timer. `Timer::start()` always times;
/// [`Timer::start_sampled`] times one in [`SAMPLE_EVERY`] calls and is
/// a no-op (not even a clock read) otherwise.
#[derive(Debug)]
#[must_use = "a Timer only records when observed"]
pub struct Timer {
    #[cfg(feature = "enabled")]
    start: Option<Instant>,
}

impl Timer {
    /// Starts timing unconditionally.
    #[inline]
    pub fn start() -> Self {
        Timer {
            #[cfg(feature = "enabled")]
            start: Some(Instant::now()),
        }
    }

    /// Starts timing only when `n & SAMPLE_MASK == 0`; pass the
    /// previous value of a counter the call site already increments
    /// (see [`Counter::inc`]).
    #[inline]
    pub fn start_sampled(n: u64) -> Self {
        #[cfg(feature = "enabled")]
        {
            Timer {
                start: (n & SAMPLE_MASK == 0).then(Instant::now),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = n;
            Timer {}
        }
    }

    /// A timer that never records — for paths that decide after the
    /// fact not to measure.
    #[inline]
    pub fn inactive() -> Self {
        Timer {
            #[cfg(feature = "enabled")]
            start: None,
        }
    }

    /// Records the elapsed nanoseconds into `hist` (if this timer was
    /// actually started).
    #[inline]
    pub fn observe(self, hist: &Histogram) {
        #[cfg(feature = "enabled")]
        if let Some(start) = self.start {
            hist.record(start.elapsed().as_nanos() as u64);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = hist;
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Registration locks a mutex (do it at
/// construction time); reads on the registered `Arc`s are lock-free.
/// Names are retained even when instrumentation is compiled out, so a
/// disabled build still renders a complete (all-zero) catalogue.
#[derive(Debug, Default)]
pub struct Registry {
    name: String,
    entries: std::sync::Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    /// An empty registry labelled `name` (e.g. `"sma"`, `"smd"`,
    /// `"kv"`).
    pub fn new(name: &str) -> Self {
        Registry {
            name: name.to_string(),
            entries: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// The registry's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn register(&self, name: &str, metric: Metric) -> Metric {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some((_, existing)) = entries.iter().find(|(n, _)| n == name) {
            return existing.clone();
        }
        entries.push((name.to_string(), metric.clone()));
        metric
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.register(name, Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.register(name, Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.register(name, Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// A point-in-time copy of every metric, in registration order.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        Snapshot {
            name: self.name.clone(),
            metrics: entries
                .iter()
                .map(|(name, metric)| MetricSnapshot {
                    name: name.clone(),
                    value: match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// A frozen copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping is the caller's problem at ~584
    /// years of nanoseconds).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank percentile *bounds*: the true p-th percentile is
    /// guaranteed to lie in the returned inclusive `(low, high)`
    /// range, which is the covering bucket clamped by the observed
    /// min/max. `p` is in percent (50.0, 99.0, …).
    pub fn percentile(&self, p: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for &(b, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(b);
                return (lo.max(self.min), hi.min(self.max));
            }
        }
        (self.max, self.max) // unreachable when counts are consistent
    }
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One named metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// The metric's registered name.
    pub name: String,
    /// Its value.
    pub value: MetricValue,
}

/// A frozen copy of a whole registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The registry label.
    pub name: String,
    /// Every metric, in registration order.
    pub metrics: Vec<MetricSnapshot>,
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Snapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// Single-line JSON object mapping metric names to values, with no
    /// whitespace (so it survives line-oriented wire protocols
    /// verbatim). Histograms render as
    /// `{"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p99":..,"buckets":{"<idx>":n,..}}`
    /// where `p50`/`p99` are the upper percentile bounds.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(&m.name, &mut out);
            out.push_str("\":");
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":{{",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.mean(),
                        h.percentile(50.0).1,
                        h.percentile(99.0).1,
                    );
                    for (j, (b, n)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{b}\":{n}");
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push('}');
        out
    }

    /// A padded human-readable table, one metric per row.
    pub fn render_table(&self) -> String {
        let rows: Vec<(String, String)> = self
            .metrics
            .iter()
            .map(|m| {
                let v = match &m.value {
                    MetricValue::Counter(v) => v.to_string(),
                    MetricValue::Gauge(v) => v.to_string(),
                    MetricValue::Histogram(h) => format!(
                        "n={} mean={} min={} max={} p50<={} p99<={}",
                        h.count,
                        h.mean(),
                        h.min,
                        h.max,
                        h.percentile(50.0).1,
                        h.percentile(99.0).1,
                    ),
                };
                (m.name.clone(), v)
            })
            .collect();
        let w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = format!("[{}]\n", self.name);
        for (name, value) in rows {
            let _ = writeln!(out, "  {name:<w$}  {value}");
        }
        out
    }

    /// Flat `name:value;name:value` single line (histograms contribute
    /// `name.count` and `name.mean`) — the compact form line-oriented
    /// INFO-style commands embed.
    pub fn render_flat(&self) -> String {
        let mut parts = Vec::with_capacity(self.metrics.len());
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(v) => parts.push(format!("{}:{v}", m.name)),
                MetricValue::Gauge(v) => parts.push(format!("{}:{v}", m.name)),
                MetricValue::Histogram(h) => {
                    parts.push(format!("{}.count:{}", m.name, h.count));
                    parts.push(format!("{}.mean:{}", m.name, h.mean()));
                }
            }
        }
        parts.join(";")
    }
}

/// Wraps several registry snapshots as one JSON object keyed by
/// registry label: `{"sma":{…},"smd":{…}}`. Single-line, no spaces.
pub fn combined_json(snapshots: &[Snapshot]) -> String {
    let mut out = String::from("{");
    for (i, s) in snapshots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape(&s.name, &mut out);
        out.push_str("\":");
        out.push_str(&s.to_json());
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_agree() {
        for b in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_index(lo), b, "low edge of bucket {b}");
            assert_eq!(bucket_index(hi), b, "high edge of bucket {b}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn registry_renders_all_shapes() {
        let reg = Registry::new("test");
        let c = reg.counter("ops_total");
        let g = reg.gauge("level");
        let h = reg.histogram("lat_ns");
        c.add(3);
        g.set(-2);
        h.record(5);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(!json.contains(' '), "wire JSON must be space-free: {json}");
        assert_eq!(json.lines().count(), 1);
        let table = snap.render_table();
        assert!(table.starts_with("[test]"));
        let flat = snap.render_flat();
        assert_eq!(flat.lines().count(), 1);
        if ENABLED {
            assert_eq!(snap.get("ops_total"), Some(&MetricValue::Counter(3)));
            assert_eq!(snap.get("level"), Some(&MetricValue::Gauge(-2)));
            assert!(json.contains("\"ops_total\":3"), "{json}");
            assert!(json.contains("\"count\":1"), "{json}");
            assert!(flat.contains("ops_total:3") && flat.contains("lat_ns.count:1"));
        } else {
            // Disabled builds keep the catalogue but read all zeros.
            assert_eq!(snap.get("ops_total"), Some(&MetricValue::Counter(0)));
            assert!(json.contains("\"ops_total\":0"), "{json}");
        }
        let combined = combined_json(&[snap]);
        assert!(combined.starts_with("{\"test\":{"), "{combined}");
    }

    #[test]
    fn registry_deduplicates_by_name() {
        let reg = Registry::new("r");
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(1);
        b.add(1);
        assert_eq!(reg.snapshot().metrics.len(), 1);
        if ENABLED {
            assert_eq!(a.get(), 2);
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1_000_000);
        let (lo, hi) = s.percentile(50.0);
        assert!(lo <= 100 && 100 <= hi, "p50 bounds ({lo},{hi}) miss 100");
        let (lo, hi) = s.percentile(99.0);
        assert!(
            lo <= 1_000_000 && 1_000_000 <= hi,
            "p99 bounds ({lo},{hi}) miss max"
        );
        assert_eq!(s.percentile(0.0).0, 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn timers_record_and_sampling_skips() {
        let h = Histogram::new();
        Timer::start().observe(&h);
        assert_eq!(h.count(), 1);
        Timer::inactive().observe(&h);
        assert_eq!(h.count(), 1);
        let c = Counter::new();
        for _ in 0..(2 * SAMPLE_EVERY) {
            Timer::start_sampled(c.inc()).observe(&h);
        }
        assert_eq!(h.count(), 3, "exactly 1 in {SAMPLE_EVERY} sampled");
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_mode_is_inert_and_zero_sized() {
        const { assert!(!ENABLED) };
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Gauge>(), 0);
        assert_eq!(std::mem::size_of::<Histogram>(), 0);
        let c = Counter::new();
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = Histogram::new();
        h.record(9);
        Timer::start().observe(&h);
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().percentile(50.0), (0, 0));
    }
}
