//! The KV server's telemetry registry.
//!
//! Mirrors of the store's behaviour counters (which the testkit's
//! metrics-consistency family certifies against ground truth), per-op
//! and reclamation-callback latency histograms, and keyspace occupancy
//! gauges refreshed before every snapshot.

use std::sync::Arc;

use softmem_telemetry::{Counter, Gauge, Histogram, Registry, Snapshot};

/// The store's metric set (registry label `kv` for a standalone store;
/// shard `i` of a sharded engine labels its registry `kv{i}`).
pub struct StoreMetrics {
    registry: Registry,
    /// Live keys (refreshed via [`crate::Store::refresh_gauges`]).
    pub keys: Arc<Gauge>,
    /// Bytes of soft memory held by the table.
    pub soft_bytes: Arc<Gauge>,
    /// Pages of soft memory attached to the table's heap.
    pub soft_pages: Arc<Gauge>,
    /// Mirror of [`crate::StoreStats::hits`].
    pub hits: Arc<Counter>,
    /// Mirror of [`crate::StoreStats::misses`].
    pub misses: Arc<Counter>,
    /// Mirror of [`crate::StoreStats::sets`].
    pub sets: Arc<Counter>,
    /// Mirror of [`crate::StoreStats::reclaimed_entries`].
    pub reclaimed_entries: Arc<Counter>,
    /// Mirror of [`crate::StoreStats::reclaimed_bytes`].
    pub reclaimed_bytes: Arc<Counter>,
    /// Mirror of [`crate::StoreStats::degraded_denies`].
    pub degraded_denies: Arc<Counter>,
    /// Mirror of [`crate::StoreStats::cold_demotions`]: evictions
    /// demoted into the cold tier (incremented at each demote site).
    pub cold_demotions: Arc<Counter>,
    /// Mirror of [`crate::StoreStats::cold_hits`]: GETs promoted out
    /// of the cold arena.
    pub cold_hits: Arc<Counter>,
    /// Mirror of [`crate::StoreStats::spill_hits`]: GETs promoted off
    /// the spill log.
    pub spill_hits: Arc<Counter>,
    /// Live entries in the cold arena (refreshed from tier stats).
    pub cold_entries: Arc<Gauge>,
    /// Cold-arena DRAM footprint in bytes.
    pub cold_bytes: Arc<Gauge>,
    /// Live entries on the spill log.
    pub spill_entries: Arc<Gauge>,
    /// Spill-log bytes referenced by live entries.
    pub spill_bytes: Arc<Gauge>,
    /// Mirror of [`crate::StoreStats::spill_writes`] (set from tier
    /// ground truth on refresh — spills happen inside the tier, out of
    /// the store's sight).
    pub spill_writes: Arc<Gauge>,
    /// Mirror of [`crate::StoreStats::cold_corruptions`] (set from
    /// tier ground truth on refresh).
    pub cold_corruptions: Arc<Gauge>,
    /// Spill-log compaction passes (set from tier ground truth on
    /// refresh).
    pub spill_compactions: Arc<Gauge>,
    /// Reclamation-callback duration (ns), one sample per entry lost.
    pub callback_ns: Arc<Histogram>,
    /// Per-command execution latency (ns), across all verbs.
    pub op_ns: Arc<Histogram>,
}

impl StoreMetrics {
    pub(crate) fn new(label: &str) -> Self {
        let registry = Registry::new(label);
        StoreMetrics {
            keys: registry.gauge("keys"),
            soft_bytes: registry.gauge("soft_bytes"),
            soft_pages: registry.gauge("soft_pages"),
            hits: registry.counter("hits"),
            misses: registry.counter("misses"),
            sets: registry.counter("sets"),
            reclaimed_entries: registry.counter("reclaimed_entries"),
            reclaimed_bytes: registry.counter("reclaimed_bytes"),
            degraded_denies: registry.counter("degraded_denies"),
            cold_demotions: registry.counter("cold_demotions"),
            cold_hits: registry.counter("cold_hits"),
            spill_hits: registry.counter("spill_hits"),
            cold_entries: registry.gauge("cold_entries"),
            cold_bytes: registry.gauge("cold_bytes"),
            spill_entries: registry.gauge("spill_entries"),
            spill_bytes: registry.gauge("spill_bytes"),
            spill_writes: registry.gauge("spill_writes"),
            cold_corruptions: registry.gauge("cold_corruptions"),
            spill_compactions: registry.gauge("spill_compactions"),
            callback_ns: registry.histogram("callback_ns"),
            op_ns: registry.histogram("op_ns"),
            registry,
        }
    }

    /// The underlying registry (for snapshots and rendering).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl std::fmt::Debug for StoreMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreMetrics")
            .field("hits", &self.hits.get())
            .field("misses", &self.misses.get())
            .field("sets", &self.sets.get())
            .finish_non_exhaustive()
    }
}
