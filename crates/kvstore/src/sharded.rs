//! The sharded command engine: N independent [`Store`]s behind one
//! keyspace.
//!
//! Redis scales past one core by running one engine per core and
//! hash-partitioning the keyspace; this module is that shape for the
//! soft-memory store. Each shard is a complete [`Store`] — its own
//! `SoftHashMap` SDS, its own telemetry registry (`kv0`, `kv1`, …),
//! its own expiry dict — so shards never contend on a data-structure
//! lock. Single-key operations route by a deterministic hash of the
//! key; cross-shard operations (`MGET`, `KEYS`, `DBSIZE`, `FLUSHALL`,
//! `SHED`, `INFO`/`STATS`) fan out and merge.
//!
//! A one-shard engine is byte-for-byte the old single store: same SDS
//! name, same `kv` metrics label, same `INFO`/`STATS` rendering — the
//! protocol-compatibility contract the existing test suite pins down.
//!
//! Reclamation interplay: every shard registers with the *same* SMA
//! (one allocator per process, as the paper prescribes), so the
//! daemon's priority ordering sees shards as distinct SDSs. The SMA's
//! tier-3 reclamation runs each shard's callback outside the global
//! allocator lock and re-acquires it only to return whole pages
//! (`softmem_core::sma`), which is what keeps a reclaim on shard A
//! from stalling `SET`s on shards B–N.

use std::sync::Arc;

use softmem_core::tier::{ColdTier, TierConfig};
use softmem_core::{Priority, Sma, SoftResult};
use softmem_sds::EvictionOrder;
use softmem_telemetry::Snapshot;

use crate::protocol::{CommandRef, Response};
use crate::store::{ReclaimCostModel, Store, StoreStats, Ttl};

/// FNV-1a over the key bytes: stable across platforms and runs, so a
/// key's shard — and therefore every routing decision, bench
/// distribution, and testkit schedule — is reproducible.
fn fnv1a(key: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A hash-partitioned keyspace of one or more [`Store`] shards.
///
/// # Examples
///
/// ```
/// use softmem_core::{Priority, Sma};
/// use softmem_kv::ShardedStore;
///
/// let sma = Sma::standalone(1024);
/// let engine = ShardedStore::new(&sma, "keyspace", Priority::new(4), 4);
/// engine.set(b"user:1", b"alice").unwrap();
/// assert_eq!(engine.get(b"user:1"), Some(b"alice".to_vec()));
/// assert_eq!(engine.dbsize(), 1);
/// assert_eq!(engine.shard_count(), 4);
/// ```
pub struct ShardedStore {
    shards: Vec<Arc<Store>>,
}

impl ShardedStore {
    /// Creates `shards` stores on `sma`, all at `priority`.
    ///
    /// With `shards == 1` the single store keeps the plain `name` and
    /// the `kv` metrics label — indistinguishable from a direct
    /// [`Store::new`]. With more, shard `i` registers its SDS as
    /// `{name}-s{i}` and labels its registry `kv{i}`.
    pub fn new(sma: &Arc<Sma>, name: &str, priority: Priority, shards: usize) -> Self {
        Self::with_eviction(sma, name, priority, EvictionOrder::InsertionOrder, shards)
    }

    /// [`ShardedStore::new`] with an explicit eviction order for every
    /// shard.
    pub fn with_eviction(
        sma: &Arc<Sma>,
        name: &str,
        priority: Priority,
        eviction: EvictionOrder,
        shards: usize,
    ) -> Self {
        let n = shards.max(1);
        let stores = (0..n)
            .map(|i| {
                let (sds_name, label) = if n == 1 {
                    (name.to_string(), "kv".to_string())
                } else {
                    (format!("{name}-s{i}"), format!("kv{i}"))
                };
                Arc::new(Store::with_eviction_labeled(
                    sma, &sds_name, priority, eviction, &label,
                ))
            })
            .collect();
        ShardedStore { shards: stores }
    }

    /// [`ShardedStore::with_eviction`] with a second-chance cold tier
    /// per shard (see [`Store::with_tier`]): each shard gets its own
    /// [`ColdTier`] built from `tier_cfg`, with the spill path (when
    /// configured) suffixed `-s{i}` on multi-shard engines so shards
    /// never share a log file.
    pub fn with_tier(
        sma: &Arc<Sma>,
        name: &str,
        priority: Priority,
        eviction: EvictionOrder,
        shards: usize,
        tier_cfg: TierConfig,
    ) -> std::io::Result<Self> {
        let n = shards.max(1);
        let mut stores = Vec::with_capacity(n);
        for i in 0..n {
            let (sds_name, label) = if n == 1 {
                (name.to_string(), "kv".to_string())
            } else {
                (format!("{name}-s{i}"), format!("kv{i}"))
            };
            let mut cfg = tier_cfg.clone();
            if n > 1 {
                cfg.spill_path = cfg.spill_path.map(|p| {
                    let mut os = p.into_os_string();
                    os.push(format!("-s{i}"));
                    os.into()
                });
            }
            let tier = Arc::new(ColdTier::new(cfg)?);
            stores.push(Arc::new(Store::with_tier(
                sma, &sds_name, priority, eviction, &label, tier,
            )));
        }
        Ok(ShardedStore { shards: stores })
    }

    /// Wraps an existing store as a one-shard engine (exact
    /// single-store semantics; used by [`crate::KvServer::start`]).
    pub fn from_single(store: Store) -> Self {
        ShardedStore {
            shards: vec![Arc::new(store)],
        }
    }

    /// Builds an engine from pre-constructed shards — e.g. one store
    /// per *allocator* for a shard-per-core deployment where each core
    /// runs its own SMA registered with the machine daemon.
    ///
    /// # Panics
    ///
    /// Panics when `stores` is empty.
    pub fn from_stores(stores: Vec<Arc<Store>>) -> Self {
        assert!(!stores.is_empty(), "an engine needs at least one shard");
        ShardedStore { shards: stores }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            (fnv1a(key) % self.shards.len() as u64) as usize
        }
    }

    /// Shard `i`'s store (panics when out of range).
    pub fn shard(&self, i: usize) -> &Arc<Store> {
        &self.shards[i]
    }

    /// Every shard, in index order.
    pub fn shards(&self) -> &[Arc<Store>] {
        &self.shards
    }

    fn owner(&self, key: &[u8]) -> &Store {
        &self.shards[self.shard_of(key)]
    }

    // ------------------------------------------------------------------
    // Single-key operations: route to the owning shard.
    // ------------------------------------------------------------------

    /// Stores `value` under `key` (overwrites). See [`Store::set`].
    pub fn set(&self, key: &[u8], value: &[u8]) -> SoftResult<()> {
        self.owner(key).set(key, value)
    }

    /// Fetches the value under `key`; `None` is a miss.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.owner(key).get(key)
    }

    /// Fetches the value under `key` directly into `buf` (appended);
    /// returns whether it was a hit. See [`Store::get_into`].
    pub fn get_into(&self, key: &[u8], buf: &mut Vec<u8>) -> bool {
        self.owner(key).get_into(key, buf)
    }

    /// Deletes `key`; returns whether it existed.
    pub fn del(&self, key: &[u8]) -> bool {
        self.owner(key).del(key)
    }

    /// Whether `key` is present.
    pub fn exists(&self, key: &[u8]) -> bool {
        self.owner(key).exists(key)
    }

    /// Sets a time-to-live on `key`; returns whether the key exists.
    pub fn expire(&self, key: &[u8], ttl: std::time::Duration) -> bool {
        self.owner(key).expire(key, ttl)
    }

    /// Clears any expiry on `key`; returns whether one was cleared.
    pub fn persist(&self, key: &[u8]) -> bool {
        self.owner(key).persist(key)
    }

    /// Queries the remaining time-to-live of `key`.
    pub fn ttl(&self, key: &[u8]) -> Ttl {
        self.owner(key).ttl(key)
    }

    /// Atomically increments the integer at `key` by `delta`.
    pub fn incr_by(&self, key: &[u8], delta: i64) -> Result<i64, String> {
        self.owner(key).incr_by(key, delta)
    }

    /// Stores `value` only if `key` is absent; whether it was stored.
    pub fn setnx(&self, key: &[u8], value: &[u8]) -> SoftResult<bool> {
        self.owner(key).setnx(key, value)
    }

    /// Appends `suffix` to the value at `key`; the new length.
    pub fn append(&self, key: &[u8], suffix: &[u8]) -> SoftResult<usize> {
        self.owner(key).append(key, suffix)
    }

    // ------------------------------------------------------------------
    // Cross-shard operations: fan out and merge.
    // ------------------------------------------------------------------

    /// Fetches several keys (position-matched; `None` = miss). Keys
    /// are grouped per shard, so each shard is visited once.
    pub fn mget<'k>(&self, keys: impl IntoIterator<Item = &'k [u8]>) -> Vec<Option<Vec<u8>>> {
        keys.into_iter().map(|k| self.owner(k).get(k)).collect()
    }

    /// Live keys across every shard.
    pub fn dbsize(&self) -> usize {
        self.shards.iter().map(|s| s.dbsize()).sum()
    }

    /// Drops every key on every shard.
    pub fn flushall(&self) {
        for s in &self.shards {
            s.flushall();
        }
    }

    /// Keys with the given prefix across every shard, sorted globally
    /// (each shard returns sorted keys; the merge re-sorts so the
    /// result is shard-count independent).
    pub fn keys_with_prefix(&self, prefix: &[u8]) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = self
            .shards
            .iter()
            .flat_map(|s| s.keys_with_prefix(prefix))
            .collect();
        out.sort();
        out
    }

    /// Manually gives up about `bytes` of soft memory, spread evenly
    /// across shards; returns the bytes actually freed.
    pub fn shed(&self, bytes: usize) -> usize {
        let n = self.shards.len();
        let per = bytes.div_ceil(n);
        self.shards.iter().map(|s| s.shed(per)).sum()
    }

    /// Bytes of soft memory across all shards' tables.
    pub fn soft_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.soft_bytes()).sum()
    }

    /// Pages of soft memory across all shards' heaps.
    pub fn soft_pages(&self) -> usize {
        self.shards.iter().map(|s| s.soft_pages()).sum()
    }

    /// Changes every shard's reclamation priority.
    pub fn set_priority(&self, priority: Priority) {
        for s in &self.shards {
            s.set_priority(priority);
        }
    }

    /// Sets the simulated per-entry cleanup cost on every shard.
    pub fn set_reclaim_cost(&self, per_entry: std::time::Duration) {
        for s in &self.shards {
            s.set_reclaim_cost(per_entry);
        }
    }

    /// Chooses the cleanup-cost model on every shard.
    pub fn set_reclaim_cost_model(&self, model: ReclaimCostModel) {
        for s in &self.shards {
            s.set_reclaim_cost_model(model);
        }
    }

    /// Total reclamation-callback time across shards.
    pub fn callback_time(&self) -> std::time::Duration {
        self.shards.iter().map(|s| s.callback_time()).sum()
    }

    /// Behaviour counters summed across shards.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for s in &self.shards {
            let st = s.stats();
            total.hits += st.hits;
            total.misses += st.misses;
            total.sets += st.sets;
            total.reclaimed_entries += st.reclaimed_entries;
            total.reclaimed_bytes += st.reclaimed_bytes;
            total.degraded_denies += st.degraded_denies;
            total.cold_demotions += st.cold_demotions;
            total.cold_hits += st.cold_hits;
            total.spill_hits += st.spill_hits;
            total.spill_writes += st.spill_writes;
            total.cold_corruptions += st.cold_corruptions;
        }
        total
    }

    /// Re-syncs every shard's occupancy gauges.
    pub fn refresh_gauges(&self) {
        for s in &self.shards {
            s.refresh_gauges();
        }
    }

    /// Point-in-time snapshots of every shard's registry, gauges
    /// refreshed, in shard order.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        self.shards
            .iter()
            .map(|s| {
                s.refresh_gauges();
                s.metrics().snapshot()
            })
            .collect()
    }

    /// The `INFO` rendering for this engine.
    ///
    /// One shard renders exactly like the standalone store (the
    /// registry's flat form, or the ground-truth fields with telemetry
    /// compiled out). Multiple shards render an aggregated machine
    /// view — ground-truth totals prefixed with the shard count, in
    /// the same field order.
    pub fn info_string(&self) -> String {
        if self.shards.len() == 1 {
            return crate::protocol::render_info(&self.shards[0]);
        }
        let s = self.stats();
        format!(
            "shards:{};keys:{};soft_bytes:{};soft_pages:{};hits:{};misses:{};sets:{};\
             reclaimed_entries:{};reclaimed_bytes:{};degraded_denies:{};\
             cold_demotions:{};cold_hits:{};spill_hits:{};spill_writes:{};\
             cold_corruptions:{}",
            self.shards.len(),
            self.dbsize(),
            self.soft_bytes(),
            self.soft_pages(),
            s.hits,
            s.misses,
            s.sets,
            s.reclaimed_entries,
            s.reclaimed_bytes,
            s.degraded_denies,
            s.cold_demotions,
            s.cold_hits,
            s.spill_hits,
            s.spill_writes,
            s.cold_corruptions,
        )
    }

    /// The `STATS` rendering: one line of JSON combining every shard's
    /// registry (`{"kv":{…}}` for one shard, `{"kv0":{…},"kv1":{…},…}`
    /// for more).
    pub fn stats_json(&self) -> String {
        softmem_telemetry::combined_json(&self.snapshots())
    }

    /// Executes a parsed command with shard `shard` as its home shard.
    ///
    /// This is the reactor's batch-dispatch entry point: the frontend
    /// hash-routes each raw frame (via [`Self::shard_of`] on its
    /// routing key, or `conn % shards` for keyless verbs), and the
    /// shard worker parses and calls this directly — no channel hop.
    /// Single-key commands and `PING` run on `shard`'s store;
    /// cross-shard verbs fan out inline through the engine's merge
    /// helpers, producing the same replies as the in-process router
    /// ([`crate::KvHandle`]) for every command.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= self.shard_count()`.
    pub fn execute_at(&self, shard: usize, cmd: &CommandRef<'_>) -> Response {
        match cmd {
            // Single-key commands (and PING, which measures one engine
            // round trip) execute on the home shard's store. The
            // caller routed by key, so `owner()` would be identity.
            CommandRef::Ping => cmd.execute(&self.shards[shard]),
            c if c.routing_key().is_some() => c.execute(&self.shards[shard]),
            // Cross-shard verbs merge inline, mirroring the router.
            CommandRef::DbSize => Response::Int(self.dbsize() as i64),
            CommandRef::FlushAll => {
                self.flushall();
                Response::Ok("OK".into())
            }
            CommandRef::Keys { prefix } => Response::Array(self.keys_with_prefix(prefix)),
            CommandRef::Shed { bytes } => Response::Int(self.shed(*bytes) as i64),
            CommandRef::MGet { keys } => Response::Array(
                self.mget(keys.iter().copied())
                    .into_iter()
                    .map(|v| v.unwrap_or_else(|| b"(nil)".to_vec()))
                    .collect(),
            ),
            CommandRef::Info => Response::Bulk(Some(self.info_string().into_bytes())),
            CommandRef::Stats => Response::Bulk(Some(self.stats_json().into_bytes())),
            // The frontend handles connection/process teardown; the
            // engine just acknowledges.
            CommandRef::Shutdown => Response::Ok("OK".into()),
            // Every single-key variant was matched by routing_key().
            _ => unreachable!("single-key command fell through routing_key guard"),
        }
    }
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("keys", &self.dbsize())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(shards: usize, budget_pages: usize) -> (Arc<Sma>, ShardedStore) {
        let sma = Sma::standalone(budget_pages);
        let e = ShardedStore::new(&sma, "kv", Priority::new(4), shards);
        (sma, e)
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let (_sma, e) = engine(4, 1024);
        for i in 0..64 {
            let key = format!("key-{i}");
            let s1 = e.shard_of(key.as_bytes());
            let s2 = e.shard_of(key.as_bytes());
            assert_eq!(s1, s2);
            assert!(s1 < 4);
        }
    }

    #[test]
    fn keys_land_on_their_shard_only() {
        let (_sma, e) = engine(4, 1024);
        for i in 0..100 {
            let key = format!("key-{i}");
            e.set(key.as_bytes(), b"v").unwrap();
            let owner = e.shard_of(key.as_bytes());
            for (idx, shard) in e.shards().iter().enumerate() {
                assert_eq!(
                    shard.exists(key.as_bytes()),
                    idx == owner,
                    "key {key} must live on shard {owner} only"
                );
            }
        }
        // A non-trivial spread: with 100 keys over 4 shards, every
        // shard holds something.
        for shard in e.shards() {
            assert!(shard.dbsize() > 0, "degenerate hash distribution");
        }
        assert_eq!(e.dbsize(), 100);
    }

    #[test]
    fn cross_shard_ops_merge() {
        let (_sma, e) = engine(4, 1024);
        for i in 0..20 {
            e.set(format!("user:{i}").as_bytes(), format!("u{i}").as_bytes())
                .unwrap();
        }
        e.set(b"other", b"x").unwrap();
        // MGET preserves request order regardless of shard placement.
        let got = e.mget([b"user:3".as_slice(), b"missing", b"user:11", b"other"]);
        assert_eq!(
            got,
            vec![
                Some(b"u3".to_vec()),
                None,
                Some(b"u11".to_vec()),
                Some(b"x".to_vec())
            ]
        );
        // KEYS is globally sorted.
        let keys = e.keys_with_prefix(b"user:1");
        assert_eq!(
            keys,
            vec![
                b"user:1".to_vec(),
                b"user:10".to_vec(),
                b"user:11".to_vec(),
                b"user:12".to_vec(),
                b"user:13".to_vec(),
                b"user:14".to_vec(),
                b"user:15".to_vec(),
                b"user:16".to_vec(),
                b"user:17".to_vec(),
                b"user:18".to_vec(),
                b"user:19".to_vec(),
            ]
        );
        assert_eq!(e.dbsize(), 21);
        e.flushall();
        assert_eq!(e.dbsize(), 0);
    }

    #[test]
    fn one_shard_matches_plain_store_identity() {
        let sma = Sma::standalone(256);
        let e = ShardedStore::new(&sma, "kv", Priority::new(4), 1);
        e.set(b"a", b"1").unwrap();
        e.get(b"a");
        e.get(b"nope");
        // SDS name is the plain name and the registry label is `kv`,
        // exactly like Store::new.
        assert!(
            e.stats_json().starts_with("{\"kv\":{"),
            "{}",
            e.stats_json()
        );
        let info = e.info_string();
        assert!(info.contains("keys:1"), "{info}");
        assert!(!info.contains("shards:"), "one shard renders unsharded");
        let st = e.stats();
        assert_eq!((st.hits, st.misses, st.sets), (1, 1, 1));
    }

    #[test]
    fn multi_shard_stats_aggregate_and_label() {
        let (_sma, e) = engine(2, 1024);
        for i in 0..30 {
            e.set(format!("k{i}").as_bytes(), b"v").unwrap();
            e.get(format!("k{i}").as_bytes());
        }
        let st = e.stats();
        assert_eq!(st.sets, 30);
        assert_eq!(st.hits, 30);
        let json = e.stats_json();
        assert!(json.contains("\"kv0\":{"), "{json}");
        assert!(json.contains("\"kv1\":{"), "{json}");
        assert!(!json.contains('\n'));
        let info = e.info_string();
        assert!(info.starts_with("shards:2;"), "{info}");
        assert!(info.contains("sets:30"), "{info}");
    }

    #[test]
    fn shed_spreads_across_shards() {
        let (_sma, e) = engine(4, 4096);
        for i in 0..4000 {
            e.set(format!("key-{i:05}").as_bytes(), &[1u8; 40]).unwrap();
        }
        let before = e.soft_pages();
        let freed = e.shed(e.soft_bytes() / 2);
        assert!(freed > 0);
        assert!(e.soft_pages() < before);
        // Every shard gave something up (even pressure).
        for shard in e.shards() {
            assert!(shard.stats().reclaimed_entries > 0);
        }
    }

    #[test]
    fn execute_at_matches_router_semantics() {
        let (_sma, e) = engine(4, 1024);
        for i in 0..20 {
            let line = format!("SET user:{i} u{i}");
            let cmd = CommandRef::parse(&line).unwrap();
            let shard = e.shard_of(cmd.routing_key().unwrap());
            assert_eq!(e.execute_at(shard, &cmd), Response::Ok("OK".into()));
        }
        // Single-key reads land on the owning shard.
        let cmd = CommandRef::parse("GET user:3").unwrap();
        let shard = e.shard_of(b"user:3");
        assert_eq!(
            e.execute_at(shard, &cmd),
            Response::Bulk(Some(b"u3".to_vec()))
        );
        // Cross-shard verbs merge identically from *any* home shard.
        for home in 0..4 {
            assert_eq!(
                e.execute_at(home, &CommandRef::parse("DBSIZE").unwrap()),
                Response::Int(20)
            );
            let Response::Array(keys) =
                e.execute_at(home, &CommandRef::parse("KEYS user:1").unwrap())
            else {
                panic!("KEYS must return array");
            };
            assert_eq!(keys.len(), 11);
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "globally sorted");
            assert_eq!(
                e.execute_at(home, &CommandRef::parse("MGET user:2 nope user:7").unwrap()),
                Response::Array(vec![b"u2".to_vec(), b"(nil)".to_vec(), b"u7".to_vec()])
            );
        }
        assert_eq!(
            e.execute_at(0, &CommandRef::parse("FLUSHALL").unwrap()),
            Response::Ok("OK".into())
        );
        assert_eq!(e.dbsize(), 0);
    }

    #[test]
    fn reclaim_on_shared_sma_sheds_across_shards() {
        let sma = Sma::with_config(
            softmem_core::SmaConfig::for_testing(128)
                .free_pool_retain(0)
                .sds_retain(0),
        );
        let e = ShardedStore::new(&sma, "kv", Priority::new(4), 4);
        for i in 0..2000 {
            e.set(format!("key-{i}").as_bytes(), &[7u8; 32]).unwrap();
        }
        let before = e.dbsize();
        let demand = sma.stats().slack_pages() + sma.held_pages() / 2;
        let report = sma.reclaim(demand);
        assert!(report.pages_released() > 0);
        let after = e.dbsize();
        assert!(after < before);
        assert_eq!(e.stats().reclaimed_entries, (before - after) as u64);
    }
}
