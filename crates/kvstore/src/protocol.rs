//! The wire protocol: a line-oriented, Redis-flavoured command set.
//!
//! Requests are single lines, e.g. `SET user:1 alice`; values with
//! spaces can be sent as the remainder of the line after the key.
//! Replies use Redis-style sigils: `+OK`, `$<value>`, `:<integer>`,
//! `-ERR <message>`, `*<n>` followed by `n` element lines.

use crate::store::Store;

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `PING` → `+PONG`.
    Ping,
    /// `SET key value` → `+OK`.
    Set {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes (remainder of the line).
        value: Vec<u8>,
    },
    /// `GET key` → `$value` or `$-1` (miss).
    Get {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `DEL key` → `:1`/`:0`.
    Del {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `EXISTS key` → `:1`/`:0`.
    Exists {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `DBSIZE` → `:n`.
    DbSize,
    /// `FLUSHALL` → `+OK`.
    FlushAll,
    /// `KEYS prefix` (empty prefix lists all) → `*n` + keys.
    Keys {
        /// Required key prefix.
        prefix: Vec<u8>,
    },
    /// `INFO` → `$<multi-line stats>`.
    Info,
    /// `SHED bytes` → `:freed` (voluntary soft-memory scale-down).
    Shed {
        /// Bytes to give up.
        bytes: usize,
    },
    /// `INCR key` / `INCRBY key n` → `:new-value`.
    IncrBy {
        /// Key bytes.
        key: Vec<u8>,
        /// Signed delta.
        delta: i64,
    },
    /// `APPEND key value` → `:new-length`.
    Append {
        /// Key bytes.
        key: Vec<u8>,
        /// Bytes to append.
        value: Vec<u8>,
    },
    /// `PEXPIRE key ms` → `:1`/`:0`.
    PExpire {
        /// Key bytes.
        key: Vec<u8>,
        /// Time to live in milliseconds.
        ms: u64,
    },
    /// `PTTL key` → remaining ms, `:-1` (no expiry) or `:-2` (no key).
    PTtl {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `PERSIST key` → `:1`/`:0`.
    Persist {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `SETNX key value` → `:1` (stored) / `:0` (already present).
    SetNx {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// `MGET key…` → `*n` with one element per key (`(nil)` for a
    /// miss).
    MGet {
        /// Keys, position-matched in the reply.
        keys: Vec<Vec<u8>>,
    },
    /// `STATS` → `$<telemetry JSON snapshot>` (single line).
    Stats,
    /// `SHUTDOWN` → `+OK` and the server exits.
    Shutdown,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `+<text>`.
    Ok(String),
    /// `$<bytes>`; `None` encodes a miss (`$-1`).
    Bulk(Option<Vec<u8>>),
    /// `:<n>`.
    Int(i64),
    /// `*<n>` + element lines.
    Array(Vec<Vec<u8>>),
    /// `-ERR <message>`.
    Error(String),
}

impl Command {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Command, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        let mut parts = line.splitn(2, ' ');
        let verb = parts.next().unwrap_or("").to_ascii_uppercase();
        let rest = parts.next().unwrap_or("");
        let one_arg = |rest: &str, verb: &str| -> Result<Vec<u8>, String> {
            if rest.is_empty() {
                Err(format!("wrong number of arguments for '{verb}'"))
            } else {
                Ok(rest.as_bytes().to_vec())
            }
        };
        match verb.as_str() {
            "PING" => Ok(Command::Ping),
            "SET" => {
                let mut kv = rest.splitn(2, ' ');
                let key = kv.next().unwrap_or("");
                let value = kv.next();
                match (key.is_empty(), value) {
                    (false, Some(v)) => Ok(Command::Set {
                        key: key.as_bytes().to_vec(),
                        value: v.as_bytes().to_vec(),
                    }),
                    _ => Err("wrong number of arguments for 'SET'".into()),
                }
            }
            "GET" => Ok(Command::Get {
                key: one_arg(rest, "GET")?,
            }),
            "DEL" => Ok(Command::Del {
                key: one_arg(rest, "DEL")?,
            }),
            "EXISTS" => Ok(Command::Exists {
                key: one_arg(rest, "EXISTS")?,
            }),
            "DBSIZE" => Ok(Command::DbSize),
            "FLUSHALL" => Ok(Command::FlushAll),
            "KEYS" => Ok(Command::Keys {
                prefix: rest.as_bytes().to_vec(),
            }),
            "INFO" => Ok(Command::Info),
            "SHED" => rest
                .trim()
                .parse::<usize>()
                .map(|bytes| Command::Shed { bytes })
                .map_err(|_| "SHED requires a byte count".into()),
            "INCR" => Ok(Command::IncrBy {
                key: one_arg(rest, "INCR")?,
                delta: 1,
            }),
            "INCRBY" => {
                let mut kv = rest.splitn(2, ' ');
                let key = kv.next().unwrap_or("");
                let delta = kv.next().and_then(|s| s.trim().parse::<i64>().ok());
                match (key.is_empty(), delta) {
                    (false, Some(delta)) => Ok(Command::IncrBy {
                        key: key.as_bytes().to_vec(),
                        delta,
                    }),
                    _ => Err("INCRBY requires a key and an integer".into()),
                }
            }
            "APPEND" => {
                let mut kv = rest.splitn(2, ' ');
                let key = kv.next().unwrap_or("");
                let value = kv.next();
                match (key.is_empty(), value) {
                    (false, Some(v)) => Ok(Command::Append {
                        key: key.as_bytes().to_vec(),
                        value: v.as_bytes().to_vec(),
                    }),
                    _ => Err("wrong number of arguments for 'APPEND'".into()),
                }
            }
            "PEXPIRE" => {
                let mut kv = rest.splitn(2, ' ');
                let key = kv.next().unwrap_or("");
                let ms = kv.next().and_then(|s| s.trim().parse::<u64>().ok());
                match (key.is_empty(), ms) {
                    (false, Some(ms)) => Ok(Command::PExpire {
                        key: key.as_bytes().to_vec(),
                        ms,
                    }),
                    _ => Err("PEXPIRE requires a key and milliseconds".into()),
                }
            }
            "PTTL" => Ok(Command::PTtl {
                key: one_arg(rest, "PTTL")?,
            }),
            "PERSIST" => Ok(Command::Persist {
                key: one_arg(rest, "PERSIST")?,
            }),
            "SETNX" => {
                let mut kv = rest.splitn(2, ' ');
                let key = kv.next().unwrap_or("");
                let value = kv.next();
                match (key.is_empty(), value) {
                    (false, Some(v)) => Ok(Command::SetNx {
                        key: key.as_bytes().to_vec(),
                        value: v.as_bytes().to_vec(),
                    }),
                    _ => Err("wrong number of arguments for 'SETNX'".into()),
                }
            }
            "MGET" => {
                let keys: Vec<Vec<u8>> = rest
                    .split_whitespace()
                    .map(|k| k.as_bytes().to_vec())
                    .collect();
                if keys.is_empty() {
                    Err("wrong number of arguments for 'MGET'".into())
                } else {
                    Ok(Command::MGet { keys })
                }
            }
            "STATS" => Ok(Command::Stats),
            "SHUTDOWN" => Ok(Command::Shutdown),
            "" => Err("empty command".into()),
            other => Err(format!("unknown command '{other}'")),
        }
    }

    /// Executes against a store. (`Shutdown` is handled by the server
    /// loop; here it just acknowledges.)
    pub fn execute(&self, store: &Store) -> Response {
        let timer = softmem_telemetry::Timer::start();
        let response = self.execute_inner(store);
        timer.observe(&store.metrics().op_ns);
        response
    }

    fn execute_inner(&self, store: &Store) -> Response {
        match self {
            Command::Ping => Response::Ok("PONG".into()),
            Command::Set { key, value } => match store.set(key, value) {
                Ok(()) => Response::Ok("OK".into()),
                Err(e) => Response::Error(format!("OOM {e}")),
            },
            Command::Get { key } => {
                // Borrowed-bytes reply: the value lands in the reply
                // buffer in one copy, straight from the guarded read.
                let mut buf = Vec::new();
                Response::Bulk(store.get_into(key, &mut buf).then_some(buf))
            }
            Command::Del { key } => Response::Int(store.del(key) as i64),
            Command::Exists { key } => Response::Int(store.exists(key) as i64),
            Command::DbSize => Response::Int(store.dbsize() as i64),
            Command::FlushAll => {
                store.flushall();
                Response::Ok("OK".into())
            }
            Command::Keys { prefix } => Response::Array(store.keys_with_prefix(prefix)),
            Command::Info => Response::Bulk(Some(render_info(store).into_bytes())),
            Command::Shed { bytes } => Response::Int(store.shed(*bytes) as i64),
            Command::IncrBy { key, delta } => match store.incr_by(key, *delta) {
                Ok(n) => Response::Int(n),
                Err(msg) => Response::Error(msg),
            },
            Command::Append { key, value } => match store.append(key, value) {
                Ok(len) => Response::Int(len as i64),
                Err(e) => Response::Error(format!("OOM {e}")),
            },
            Command::PExpire { key, ms } => {
                Response::Int(store.expire(key, std::time::Duration::from_millis(*ms)) as i64)
            }
            Command::PTtl { key } => Response::Int(match store.ttl(key) {
                crate::store::Ttl::NoKey => -2,
                crate::store::Ttl::NoExpiry => -1,
                crate::store::Ttl::Remaining(d) => d.as_millis() as i64,
            }),
            Command::Persist { key } => Response::Int(store.persist(key) as i64),
            Command::SetNx { key, value } => match store.setnx(key, value) {
                Ok(stored) => Response::Int(stored as i64),
                Err(e) => Response::Error(format!("OOM {e}")),
            },
            Command::MGet { keys } => Response::Array(
                keys.iter()
                    .map(|k| {
                        // Each reply element is filled straight from
                        // the guarded borrow (no Option layer, no
                        // intermediate clone).
                        let mut buf = Vec::new();
                        if !store.get_into(k, &mut buf) {
                            buf.extend_from_slice(b"(nil)");
                        }
                        buf
                    })
                    .collect(),
            ),
            Command::Stats => Response::Bulk(Some(render_stats(store).into_bytes())),
            Command::Shutdown => Response::Ok("OK".into()),
        }
    }
}

pub(crate) fn render_info(store: &Store) -> String {
    // Single line: the protocol frames replies by lines, so INFO packs
    // its fields with `;` separators — exactly the telemetry
    // registry's flat rendering, so there is no bespoke formatting to
    // drift out of sync with the metric set.
    if softmem_telemetry::ENABLED {
        store.refresh_gauges();
        store.metrics().snapshot().render_flat()
    } else {
        // Telemetry compiled out: INFO still reports the ground-truth
        // statistics, in the registry's field order.
        let s = store.stats();
        format!(
            "keys:{};soft_bytes:{};soft_pages:{};hits:{};misses:{};sets:{};\
             reclaimed_entries:{};reclaimed_bytes:{};degraded_denies:{};\
             cold_demotions:{};cold_hits:{};spill_hits:{};spill_writes:{};\
             cold_corruptions:{}",
            store.dbsize(),
            store.soft_bytes(),
            store.soft_pages(),
            s.hits,
            s.misses,
            s.sets,
            s.reclaimed_entries,
            s.reclaimed_bytes,
            s.degraded_denies,
            s.cold_demotions,
            s.cold_hits,
            s.spill_hits,
            s.spill_writes,
            s.cold_corruptions,
        )
    }
}

pub(crate) fn render_stats(store: &Store) -> String {
    // Single line of whitespace-free JSON, safe under line framing.
    store.refresh_gauges();
    softmem_telemetry::combined_json(&[store.metrics().snapshot()])
}

impl Response {
    /// Encodes the reply as protocol text (always ends with `\n`).
    pub fn encode(&self) -> String {
        match self {
            Response::Ok(s) => format!("+{s}\n"),
            Response::Bulk(None) => "$-1\n".into(),
            Response::Bulk(Some(v)) => format!("${}\n", String::from_utf8_lossy(v)),
            Response::Int(n) => format!(":{n}\n"),
            Response::Array(items) => {
                let mut out = format!("*{}\n", items.len());
                for item in items {
                    out.push_str(&String::from_utf8_lossy(item));
                    out.push('\n');
                }
                out
            }
            Response::Error(msg) => format!("-ERR {msg}\n"),
        }
    }

    /// Decodes a reply from protocol text (the first line, plus array
    /// elements where applicable).
    pub fn decode(text: &str) -> Result<Response, String> {
        let mut lines = text.lines();
        let first = lines.next().ok_or("empty response")?;
        match first.as_bytes().first() {
            Some(b'+') => Ok(Response::Ok(first[1..].to_string())),
            Some(b':') => first[1..]
                .parse::<i64>()
                .map(Response::Int)
                .map_err(|e| e.to_string()),
            Some(b'$') => {
                if first == "$-1" {
                    Ok(Response::Bulk(None))
                } else {
                    // Bulk payload = rest of first line + any
                    // remaining lines (INFO is multi-line).
                    let mut payload = first[1..].to_string();
                    for line in lines {
                        payload.push('\n');
                        payload.push_str(line);
                    }
                    Ok(Response::Bulk(Some(payload.into_bytes())))
                }
            }
            Some(b'*') => {
                let n: usize = first[1..].parse().map_err(|_| "bad array length")?;
                let items: Vec<Vec<u8>> = lines.take(n).map(|l| l.as_bytes().to_vec()).collect();
                if items.len() != n {
                    return Err("truncated array".into());
                }
                Ok(Response::Array(items))
            }
            Some(b'-') => Ok(Response::Error(
                first.trim_start_matches("-ERR ").to_string(),
            )),
            _ => Err(format!("unparseable response: {first}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmem_core::{Priority, Sma};

    #[test]
    fn parse_basic_commands() {
        assert_eq!(Command::parse("PING").unwrap(), Command::Ping);
        assert_eq!(
            Command::parse("SET k hello world").unwrap(),
            Command::Set {
                key: b"k".to_vec(),
                value: b"hello world".to_vec()
            }
        );
        assert_eq!(
            Command::parse("get k\r\n").unwrap(),
            Command::Get { key: b"k".to_vec() }
        );
        assert_eq!(Command::parse("DBSIZE").unwrap(), Command::DbSize);
        assert_eq!(
            Command::parse("KEYS user:").unwrap(),
            Command::Keys {
                prefix: b"user:".to_vec()
            }
        );
        assert_eq!(
            Command::parse("SHED 4096").unwrap(),
            Command::Shed { bytes: 4096 }
        );
    }

    #[test]
    fn parse_new_commands() {
        assert_eq!(
            Command::parse("INCR n").unwrap(),
            Command::IncrBy {
                key: b"n".to_vec(),
                delta: 1
            }
        );
        assert_eq!(
            Command::parse("INCRBY n -5").unwrap(),
            Command::IncrBy {
                key: b"n".to_vec(),
                delta: -5
            }
        );
        assert_eq!(
            Command::parse("APPEND k tail text").unwrap(),
            Command::Append {
                key: b"k".to_vec(),
                value: b"tail text".to_vec()
            }
        );
        assert_eq!(
            Command::parse("PEXPIRE k 1500").unwrap(),
            Command::PExpire {
                key: b"k".to_vec(),
                ms: 1500
            }
        );
        assert_eq!(
            Command::parse("PTTL k").unwrap(),
            Command::PTtl { key: b"k".to_vec() }
        );
        assert_eq!(
            Command::parse("PERSIST k").unwrap(),
            Command::Persist { key: b"k".to_vec() }
        );
        assert!(Command::parse("INCRBY n lots").is_err());
        assert!(Command::parse("PEXPIRE k").is_err());
    }

    #[test]
    fn execute_new_commands() {
        let sma = Sma::standalone(64);
        let store = Store::new(&sma, "kv", Priority::default());
        assert_eq!(
            Command::parse("INCR hits").unwrap().execute(&store),
            Response::Int(1)
        );
        assert_eq!(
            Command::parse("INCRBY hits 9").unwrap().execute(&store),
            Response::Int(10)
        );
        assert_eq!(
            Command::parse("APPEND log a").unwrap().execute(&store),
            Response::Int(1)
        );
        assert_eq!(
            Command::parse("PTTL log").unwrap().execute(&store),
            Response::Int(-1)
        );
        assert_eq!(
            Command::parse("PEXPIRE log 60000").unwrap().execute(&store),
            Response::Int(1)
        );
        match Command::parse("PTTL log").unwrap().execute(&store) {
            Response::Int(ms) => assert!((0..=60_000).contains(&ms)),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(
            Command::parse("PERSIST log").unwrap().execute(&store),
            Response::Int(1)
        );
        assert_eq!(
            Command::parse("PTTL missing").unwrap().execute(&store),
            Response::Int(-2)
        );
    }

    #[test]
    fn setnx_and_mget_protocol() {
        let sma = Sma::standalone(64);
        let store = Store::new(&sma, "kv", Priority::default());
        assert_eq!(
            Command::parse("SETNX lock holder-1")
                .unwrap()
                .execute(&store),
            Response::Int(1)
        );
        assert_eq!(
            Command::parse("SETNX lock holder-2")
                .unwrap()
                .execute(&store),
            Response::Int(0)
        );
        store.set(b"a", b"1").unwrap();
        assert_eq!(
            Command::parse("MGET a nope lock").unwrap().execute(&store),
            Response::Array(vec![b"1".to_vec(), b"(nil)".to_vec(), b"holder-1".to_vec()])
        );
        assert!(Command::parse("MGET").is_err());
        assert!(Command::parse("SETNX k").is_err());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Command::parse("").is_err());
        assert!(Command::parse("SET k").is_err());
        assert!(Command::parse("GET").is_err());
        assert!(Command::parse("SHED lots").is_err());
        assert!(Command::parse("BANANA").is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        for resp in [
            Response::Ok("OK".into()),
            Response::Bulk(None),
            Response::Bulk(Some(b"value".to_vec())),
            Response::Int(-3),
            Response::Array(vec![b"a".to_vec(), b"b".to_vec()]),
            Response::Error("boom".into()),
        ] {
            let decoded = Response::decode(&resp.encode()).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn execute_against_store() {
        let sma = Sma::standalone(256);
        let store = Store::new(&sma, "kv", Priority::default());
        assert_eq!(
            Command::parse("SET a 1").unwrap().execute(&store),
            Response::Ok("OK".into())
        );
        assert_eq!(
            Command::parse("GET a").unwrap().execute(&store),
            Response::Bulk(Some(b"1".to_vec()))
        );
        assert_eq!(
            Command::parse("GET b").unwrap().execute(&store),
            Response::Bulk(None)
        );
        assert_eq!(
            Command::parse("EXISTS a").unwrap().execute(&store),
            Response::Int(1)
        );
        assert_eq!(
            Command::parse("DEL a").unwrap().execute(&store),
            Response::Int(1)
        );
        assert_eq!(
            Command::parse("DBSIZE").unwrap().execute(&store),
            Response::Int(0)
        );
        if let Response::Bulk(Some(info)) = Command::Info.execute(&store) {
            let text = String::from_utf8(info).unwrap();
            assert!(text.contains("keys:0"), "{text}");
            if softmem_telemetry::ENABLED {
                assert!(text.contains("hits:1"), "{text}");
            }
        } else {
            panic!("INFO must return bulk");
        }
    }

    #[test]
    fn stats_returns_json_snapshot() {
        let sma = Sma::standalone(64);
        let store = Store::new(&sma, "kv", Priority::default());
        store.set(b"a", b"1").unwrap();
        store.get(b"a");
        assert_eq!(Command::parse("stats").unwrap(), Command::Stats);
        let reply = Command::Stats.execute(&store);
        let Response::Bulk(Some(json)) = reply else {
            panic!("STATS must return bulk, got {reply:?}");
        };
        let text = String::from_utf8(json).unwrap();
        assert!(text.starts_with("{\"kv\":{"), "{text}");
        assert!(!text.contains('\n'), "STATS must be one line: {text}");
        assert!(text.contains("\"hits\":"), "{text}");
        assert!(text.contains("\"op_ns\":"), "{text}");
        if softmem_telemetry::ENABLED {
            assert!(text.contains("\"hits\":1"), "{text}");
            assert!(text.contains("\"keys\":1"), "{text}");
        }
        // The reply survives an encode/decode round trip intact.
        let decoded = Response::decode(&Command::Stats.execute(&store).encode()).unwrap();
        let Response::Bulk(Some(raw)) = decoded else {
            panic!("decode changed shape");
        };
        assert!(String::from_utf8(raw).unwrap().starts_with("{\"kv\":{"));
    }
}
