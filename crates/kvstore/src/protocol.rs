//! The wire protocol: a line-oriented, Redis-flavoured command set.
//!
//! Requests are single lines, e.g. `SET user:1 alice`; values with
//! spaces can be sent as the remainder of the line after the key.
//! Replies use Redis-style sigils: `+OK`, `$<value>`, `:<integer>`,
//! `-ERR <message>`, `*<n>` followed by `n` element lines.
//!
//! The module separates the three protocol stages so each layer of the
//! server pays only for what it needs:
//!
//! * **Framing** ([`next_frame`]) — find a complete request line in a
//!   byte buffer without interpreting it. This is the only stage the
//!   reactor front-end runs on the event loop.
//! * **Routing** ([`routing_key_of`]) — extract the routing key of a
//!   single-key command from a raw frame without allocating or fully
//!   parsing, so frames can be hash-routed to shard queues.
//! * **Parsing/execution** ([`CommandRef::parse`]) — the borrowed-slice
//!   parse that shard workers run; key/value slices borrow straight
//!   from the frame, and [`CommandRef::execute`] runs against a store.
//!   The owned [`Command`] remains as the allocation-friendly form the
//!   in-process router and tests use.

use crate::store::Store;

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `PING` → `+PONG`.
    Ping,
    /// `SET key value` → `+OK`.
    Set {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes (remainder of the line).
        value: Vec<u8>,
    },
    /// `GET key` → `$value` or `$-1` (miss).
    Get {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `DEL key` → `:1`/`:0`.
    Del {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `EXISTS key` → `:1`/`:0`.
    Exists {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `DBSIZE` → `:n`.
    DbSize,
    /// `FLUSHALL` → `+OK`.
    FlushAll,
    /// `KEYS prefix` (empty prefix lists all) → `*n` + keys.
    Keys {
        /// Required key prefix.
        prefix: Vec<u8>,
    },
    /// `INFO` → `$<multi-line stats>`.
    Info,
    /// `SHED bytes` → `:freed` (voluntary soft-memory scale-down).
    Shed {
        /// Bytes to give up.
        bytes: usize,
    },
    /// `INCR key` / `INCRBY key n` → `:new-value`.
    IncrBy {
        /// Key bytes.
        key: Vec<u8>,
        /// Signed delta.
        delta: i64,
    },
    /// `APPEND key value` → `:new-length`.
    Append {
        /// Key bytes.
        key: Vec<u8>,
        /// Bytes to append.
        value: Vec<u8>,
    },
    /// `PEXPIRE key ms` → `:1`/`:0`.
    PExpire {
        /// Key bytes.
        key: Vec<u8>,
        /// Time to live in milliseconds.
        ms: u64,
    },
    /// `PTTL key` → remaining ms, `:-1` (no expiry) or `:-2` (no key).
    PTtl {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `PERSIST key` → `:1`/`:0`.
    Persist {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `SETNX key value` → `:1` (stored) / `:0` (already present).
    SetNx {
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// `MGET key…` → `*n` with one element per key (`(nil)` for a
    /// miss).
    MGet {
        /// Keys, position-matched in the reply.
        keys: Vec<Vec<u8>>,
    },
    /// `STATS` → `$<telemetry JSON snapshot>` (single line).
    Stats,
    /// `SHUTDOWN` → `+OK` and the server exits.
    Shutdown,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `+<text>`.
    Ok(String),
    /// `$<bytes>`; `None` encodes a miss (`$-1`).
    Bulk(Option<Vec<u8>>),
    /// `:<n>`.
    Int(i64),
    /// `*<n>` + element lines.
    Array(Vec<Vec<u8>>),
    /// `-ERR <message>`.
    Error(String),
}

/// A parsed command whose key/value fields borrow straight from the
/// request frame. Shard workers parse and execute this form — no
/// per-request key/value allocation, only the reply itself. [`Command`]
/// is the owned mirror; convert with [`CommandRef::to_owned`] and
/// [`Command::as_ref`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandRef<'a> {
    /// `PING` → `+PONG`.
    Ping,
    /// `SET key value` → `+OK`.
    Set {
        /// Key bytes.
        key: &'a [u8],
        /// Value bytes (remainder of the line).
        value: &'a [u8],
    },
    /// `GET key` → `$value` or `$-1` (miss).
    Get {
        /// Key bytes.
        key: &'a [u8],
    },
    /// `DEL key` → `:1`/`:0`.
    Del {
        /// Key bytes.
        key: &'a [u8],
    },
    /// `EXISTS key` → `:1`/`:0`.
    Exists {
        /// Key bytes.
        key: &'a [u8],
    },
    /// `DBSIZE` → `:n`.
    DbSize,
    /// `FLUSHALL` → `+OK`.
    FlushAll,
    /// `KEYS prefix` (empty prefix lists all) → `*n` + keys.
    Keys {
        /// Required key prefix.
        prefix: &'a [u8],
    },
    /// `INFO` → `$<multi-line stats>`.
    Info,
    /// `SHED bytes` → `:freed`.
    Shed {
        /// Bytes to give up.
        bytes: usize,
    },
    /// `INCR key` / `INCRBY key n` → `:new-value`.
    IncrBy {
        /// Key bytes.
        key: &'a [u8],
        /// Signed delta.
        delta: i64,
    },
    /// `APPEND key value` → `:new-length`.
    Append {
        /// Key bytes.
        key: &'a [u8],
        /// Bytes to append.
        value: &'a [u8],
    },
    /// `PEXPIRE key ms` → `:1`/`:0`.
    PExpire {
        /// Key bytes.
        key: &'a [u8],
        /// Time to live in milliseconds.
        ms: u64,
    },
    /// `PTTL key` → remaining ms, `:-1` or `:-2`.
    PTtl {
        /// Key bytes.
        key: &'a [u8],
    },
    /// `PERSIST key` → `:1`/`:0`.
    Persist {
        /// Key bytes.
        key: &'a [u8],
    },
    /// `SETNX key value` → `:1`/`:0`.
    SetNx {
        /// Key bytes.
        key: &'a [u8],
        /// Value bytes.
        value: &'a [u8],
    },
    /// `MGET key…` → `*n` elements (`(nil)` for a miss).
    MGet {
        /// Keys, position-matched in the reply.
        keys: Vec<&'a [u8]>,
    },
    /// `STATS` → `$<telemetry JSON snapshot>`.
    Stats,
    /// `SHUTDOWN` → `+OK` and the server exits.
    Shutdown,
}

impl<'a> CommandRef<'a> {
    /// Parses one request line without copying key or value bytes.
    pub fn parse(line: &'a str) -> Result<CommandRef<'a>, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        let mut parts = line.splitn(2, ' ');
        let verb = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("");
        // Uppercase the verb on the stack; every real verb fits, and
        // anything longer is by construction an unknown command.
        let mut up = [0u8; 12];
        let verb_up: &str = if verb.len() <= up.len() {
            for (dst, src) in up.iter_mut().zip(verb.bytes()) {
                *dst = src.to_ascii_uppercase();
            }
            std::str::from_utf8(&up[..verb.len()]).unwrap_or("")
        } else {
            "\u{0}" // sentinel: cannot match any verb, falls through to unknown
        };
        let one_arg = |rest: &'a str, verb: &str| -> Result<&'a [u8], String> {
            if rest.is_empty() {
                Err(format!("wrong number of arguments for '{verb}'"))
            } else {
                Ok(rest.as_bytes())
            }
        };
        match verb_up {
            "PING" => Ok(CommandRef::Ping),
            "SET" => {
                let mut kv = rest.splitn(2, ' ');
                let key = kv.next().unwrap_or("");
                let value = kv.next();
                match (key.is_empty(), value) {
                    (false, Some(v)) => Ok(CommandRef::Set {
                        key: key.as_bytes(),
                        value: v.as_bytes(),
                    }),
                    _ => Err("wrong number of arguments for 'SET'".into()),
                }
            }
            "GET" => Ok(CommandRef::Get {
                key: one_arg(rest, "GET")?,
            }),
            "DEL" => Ok(CommandRef::Del {
                key: one_arg(rest, "DEL")?,
            }),
            "EXISTS" => Ok(CommandRef::Exists {
                key: one_arg(rest, "EXISTS")?,
            }),
            "DBSIZE" => Ok(CommandRef::DbSize),
            "FLUSHALL" => Ok(CommandRef::FlushAll),
            "KEYS" => Ok(CommandRef::Keys {
                prefix: rest.as_bytes(),
            }),
            "INFO" => Ok(CommandRef::Info),
            "SHED" => rest
                .trim()
                .parse::<usize>()
                .map(|bytes| CommandRef::Shed { bytes })
                .map_err(|_| "SHED requires a byte count".into()),
            "INCR" => Ok(CommandRef::IncrBy {
                key: one_arg(rest, "INCR")?,
                delta: 1,
            }),
            "INCRBY" => {
                let mut kv = rest.splitn(2, ' ');
                let key = kv.next().unwrap_or("");
                let delta = kv.next().and_then(|s| s.trim().parse::<i64>().ok());
                match (key.is_empty(), delta) {
                    (false, Some(delta)) => Ok(CommandRef::IncrBy {
                        key: key.as_bytes(),
                        delta,
                    }),
                    _ => Err("INCRBY requires a key and an integer".into()),
                }
            }
            "APPEND" => {
                let mut kv = rest.splitn(2, ' ');
                let key = kv.next().unwrap_or("");
                let value = kv.next();
                match (key.is_empty(), value) {
                    (false, Some(v)) => Ok(CommandRef::Append {
                        key: key.as_bytes(),
                        value: v.as_bytes(),
                    }),
                    _ => Err("wrong number of arguments for 'APPEND'".into()),
                }
            }
            "PEXPIRE" => {
                let mut kv = rest.splitn(2, ' ');
                let key = kv.next().unwrap_or("");
                let ms = kv.next().and_then(|s| s.trim().parse::<u64>().ok());
                match (key.is_empty(), ms) {
                    (false, Some(ms)) => Ok(CommandRef::PExpire {
                        key: key.as_bytes(),
                        ms,
                    }),
                    _ => Err("PEXPIRE requires a key and milliseconds".into()),
                }
            }
            "PTTL" => Ok(CommandRef::PTtl {
                key: one_arg(rest, "PTTL")?,
            }),
            "PERSIST" => Ok(CommandRef::Persist {
                key: one_arg(rest, "PERSIST")?,
            }),
            "SETNX" => {
                let mut kv = rest.splitn(2, ' ');
                let key = kv.next().unwrap_or("");
                let value = kv.next();
                match (key.is_empty(), value) {
                    (false, Some(v)) => Ok(CommandRef::SetNx {
                        key: key.as_bytes(),
                        value: v.as_bytes(),
                    }),
                    _ => Err("wrong number of arguments for 'SETNX'".into()),
                }
            }
            "MGET" => {
                let keys: Vec<&[u8]> = rest.split_whitespace().map(|k| k.as_bytes()).collect();
                if keys.is_empty() {
                    Err("wrong number of arguments for 'MGET'".into())
                } else {
                    Ok(CommandRef::MGet { keys })
                }
            }
            "STATS" => Ok(CommandRef::Stats),
            "SHUTDOWN" => Ok(CommandRef::Shutdown),
            "" => Err("empty command".into()),
            _ => Err(format!("unknown command '{}'", verb.to_ascii_uppercase())),
        }
    }

    /// The shard-routing key: `Some` for single-key commands, `None`
    /// for global / multi-key / connection-control commands (which the
    /// dispatcher handles specially).
    pub fn routing_key(&self) -> Option<&'a [u8]> {
        match self {
            CommandRef::Set { key, .. }
            | CommandRef::Get { key }
            | CommandRef::Del { key }
            | CommandRef::Exists { key }
            | CommandRef::IncrBy { key, .. }
            | CommandRef::Append { key, .. }
            | CommandRef::PExpire { key, .. }
            | CommandRef::PTtl { key }
            | CommandRef::Persist { key }
            | CommandRef::SetNx { key, .. } => Some(key),
            _ => None,
        }
    }

    /// Deep-copies into the owned mirror.
    pub fn to_owned(&self) -> Command {
        match self {
            CommandRef::Ping => Command::Ping,
            CommandRef::Set { key, value } => Command::Set {
                key: key.to_vec(),
                value: value.to_vec(),
            },
            CommandRef::Get { key } => Command::Get { key: key.to_vec() },
            CommandRef::Del { key } => Command::Del { key: key.to_vec() },
            CommandRef::Exists { key } => Command::Exists { key: key.to_vec() },
            CommandRef::DbSize => Command::DbSize,
            CommandRef::FlushAll => Command::FlushAll,
            CommandRef::Keys { prefix } => Command::Keys {
                prefix: prefix.to_vec(),
            },
            CommandRef::Info => Command::Info,
            CommandRef::Shed { bytes } => Command::Shed { bytes: *bytes },
            CommandRef::IncrBy { key, delta } => Command::IncrBy {
                key: key.to_vec(),
                delta: *delta,
            },
            CommandRef::Append { key, value } => Command::Append {
                key: key.to_vec(),
                value: value.to_vec(),
            },
            CommandRef::PExpire { key, ms } => Command::PExpire {
                key: key.to_vec(),
                ms: *ms,
            },
            CommandRef::PTtl { key } => Command::PTtl { key: key.to_vec() },
            CommandRef::Persist { key } => Command::Persist { key: key.to_vec() },
            CommandRef::SetNx { key, value } => Command::SetNx {
                key: key.to_vec(),
                value: value.to_vec(),
            },
            CommandRef::MGet { keys } => Command::MGet {
                keys: keys.iter().map(|k| k.to_vec()).collect(),
            },
            CommandRef::Stats => Command::Stats,
            CommandRef::Shutdown => Command::Shutdown,
        }
    }

    /// Executes against a store. (`Shutdown` is handled by the server
    /// loop; here it just acknowledges.)
    pub fn execute(&self, store: &Store) -> Response {
        let timer = softmem_telemetry::Timer::start();
        let response = self.execute_inner(store);
        timer.observe(&store.metrics().op_ns);
        response
    }

    fn execute_inner(&self, store: &Store) -> Response {
        match self {
            CommandRef::Ping => Response::Ok("PONG".into()),
            CommandRef::Set { key, value } => match store.set(key, value) {
                Ok(()) => Response::Ok("OK".into()),
                Err(e) => Response::Error(format!("OOM {e}")),
            },
            CommandRef::Get { key } => {
                // Borrowed-bytes reply: the value lands in the reply
                // buffer in one copy, straight from the guarded read.
                let mut buf = Vec::new();
                Response::Bulk(store.get_into(key, &mut buf).then_some(buf))
            }
            CommandRef::Del { key } => Response::Int(store.del(key) as i64),
            CommandRef::Exists { key } => Response::Int(store.exists(key) as i64),
            CommandRef::DbSize => Response::Int(store.dbsize() as i64),
            CommandRef::FlushAll => {
                store.flushall();
                Response::Ok("OK".into())
            }
            CommandRef::Keys { prefix } => Response::Array(store.keys_with_prefix(prefix)),
            CommandRef::Info => Response::Bulk(Some(render_info(store).into_bytes())),
            CommandRef::Shed { bytes } => Response::Int(store.shed(*bytes) as i64),
            CommandRef::IncrBy { key, delta } => match store.incr_by(key, *delta) {
                Ok(n) => Response::Int(n),
                Err(msg) => Response::Error(msg),
            },
            CommandRef::Append { key, value } => match store.append(key, value) {
                Ok(len) => Response::Int(len as i64),
                Err(e) => Response::Error(format!("OOM {e}")),
            },
            CommandRef::PExpire { key, ms } => {
                Response::Int(store.expire(key, std::time::Duration::from_millis(*ms)) as i64)
            }
            CommandRef::PTtl { key } => Response::Int(match store.ttl(key) {
                crate::store::Ttl::NoKey => -2,
                crate::store::Ttl::NoExpiry => -1,
                crate::store::Ttl::Remaining(d) => d.as_millis() as i64,
            }),
            CommandRef::Persist { key } => Response::Int(store.persist(key) as i64),
            CommandRef::SetNx { key, value } => match store.setnx(key, value) {
                Ok(stored) => Response::Int(stored as i64),
                Err(e) => Response::Error(format!("OOM {e}")),
            },
            CommandRef::MGet { keys } => Response::Array(
                keys.iter()
                    .map(|k| {
                        // Each reply element is filled straight from
                        // the guarded borrow (no Option layer, no
                        // intermediate clone).
                        let mut buf = Vec::new();
                        if !store.get_into(k, &mut buf) {
                            buf.extend_from_slice(b"(nil)");
                        }
                        buf
                    })
                    .collect(),
            ),
            CommandRef::Stats => Response::Bulk(Some(render_stats(store).into_bytes())),
            CommandRef::Shutdown => Response::Ok("OK".into()),
        }
    }
}

impl Command {
    /// Parses one request line (owned form; delegates to
    /// [`CommandRef::parse`]).
    pub fn parse(line: &str) -> Result<Command, String> {
        CommandRef::parse(line).map(|c| c.to_owned())
    }

    /// Borrows this command as a [`CommandRef`].
    pub fn as_ref(&self) -> CommandRef<'_> {
        match self {
            Command::Ping => CommandRef::Ping,
            Command::Set { key, value } => CommandRef::Set { key, value },
            Command::Get { key } => CommandRef::Get { key },
            Command::Del { key } => CommandRef::Del { key },
            Command::Exists { key } => CommandRef::Exists { key },
            Command::DbSize => CommandRef::DbSize,
            Command::FlushAll => CommandRef::FlushAll,
            Command::Keys { prefix } => CommandRef::Keys { prefix },
            Command::Info => CommandRef::Info,
            Command::Shed { bytes } => CommandRef::Shed { bytes: *bytes },
            Command::IncrBy { key, delta } => CommandRef::IncrBy { key, delta: *delta },
            Command::Append { key, value } => CommandRef::Append { key, value },
            Command::PExpire { key, ms } => CommandRef::PExpire { key, ms: *ms },
            Command::PTtl { key } => CommandRef::PTtl { key },
            Command::Persist { key } => CommandRef::Persist { key },
            Command::SetNx { key, value } => CommandRef::SetNx { key, value },
            Command::MGet { keys } => CommandRef::MGet {
                keys: keys.iter().map(|k| k.as_slice()).collect(),
            },
            Command::Stats => CommandRef::Stats,
            Command::Shutdown => CommandRef::Shutdown,
        }
    }

    /// Executes against a store. (`Shutdown` is handled by the server
    /// loop; here it just acknowledges.)
    pub fn execute(&self, store: &Store) -> Response {
        self.as_ref().execute(store)
    }
}

/// Finds the next complete request line in `buf`: returns the frame
/// (trailing `\r` stripped, `\n` excluded) and the total bytes
/// consumed including the terminator, or `None` if no full line has
/// arrived yet. Pure framing — the frame is not interpreted, so this
/// is safe to run on a reactor thread.
pub fn next_frame(buf: &[u8]) -> Option<(&[u8], usize)> {
    let nl = buf.iter().position(|&b| b == b'\n')?;
    let mut frame = &buf[..nl];
    if frame.last() == Some(&b'\r') {
        frame = &frame[..frame.len() - 1];
    }
    Some((frame, nl + 1))
}

/// Extracts the shard-routing key from a raw request frame without a
/// full parse, mirroring [`CommandRef::parse`]'s `splitn(2, ' ')`
/// semantics exactly: for `SET`/`APPEND`/`SETNX`/`INCRBY`/`PEXPIRE`
/// the key is the first token after the verb; for
/// `GET`/`DEL`/`EXISTS`/`PTTL`/`PERSIST`/`INCR` the key is the
/// *entire* remainder of the line (keys may contain spaces). Returns
/// `None` for global, multi-key, keyless, or unknown commands — those
/// take the dispatcher's slow path. Frames that *look* single-key but
/// fail the full parse (e.g. `SET k` with no value) may still return
/// a key: they route deterministically to that key's shard, whose
/// worker then reports the parse error. Whenever the full parse
/// succeeds with a routing key, this returns the identical bytes.
pub fn routing_key_of(frame: &[u8]) -> Option<&[u8]> {
    let mut frame = frame;
    while let Some((&last, head)) = frame.split_last() {
        if last == b'\r' || last == b'\n' {
            frame = head;
        } else {
            break;
        }
    }
    let (verb, rest) = match frame.iter().position(|&b| b == b' ') {
        Some(i) => (&frame[..i], &frame[i + 1..]),
        None => (frame, &frame[frame.len()..]),
    };
    // Commands whose key stops at the next space…
    const KEY_IS_FIRST_TOKEN: [&[u8]; 5] = [b"SET", b"APPEND", b"SETNX", b"INCRBY", b"PEXPIRE"];
    // …and commands whose key is everything after the verb.
    const KEY_IS_REST: [&[u8]; 6] = [b"GET", b"DEL", b"EXISTS", b"PTTL", b"PERSIST", b"INCR"];
    let matches = |v: &&[u8]| verb.eq_ignore_ascii_case(v);
    let key = if KEY_IS_FIRST_TOKEN.iter().any(matches) {
        match rest.iter().position(|&b| b == b' ') {
            Some(i) => &rest[..i],
            None => rest,
        }
    } else if KEY_IS_REST.iter().any(matches) {
        rest
    } else {
        return None;
    };
    if key.is_empty() {
        None
    } else {
        Some(key)
    }
}

pub(crate) fn render_info(store: &Store) -> String {
    // Single line: the protocol frames replies by lines, so INFO packs
    // its fields with `;` separators — exactly the telemetry
    // registry's flat rendering, so there is no bespoke formatting to
    // drift out of sync with the metric set.
    if softmem_telemetry::ENABLED {
        store.refresh_gauges();
        store.metrics().snapshot().render_flat()
    } else {
        // Telemetry compiled out: INFO still reports the ground-truth
        // statistics, in the registry's field order.
        let s = store.stats();
        format!(
            "keys:{};soft_bytes:{};soft_pages:{};hits:{};misses:{};sets:{};\
             reclaimed_entries:{};reclaimed_bytes:{};degraded_denies:{};\
             cold_demotions:{};cold_hits:{};spill_hits:{};spill_writes:{};\
             cold_corruptions:{}",
            store.dbsize(),
            store.soft_bytes(),
            store.soft_pages(),
            s.hits,
            s.misses,
            s.sets,
            s.reclaimed_entries,
            s.reclaimed_bytes,
            s.degraded_denies,
            s.cold_demotions,
            s.cold_hits,
            s.spill_hits,
            s.spill_writes,
            s.cold_corruptions,
        )
    }
}

pub(crate) fn render_stats(store: &Store) -> String {
    // Single line of whitespace-free JSON, safe under line framing.
    store.refresh_gauges();
    softmem_telemetry::combined_json(&[store.metrics().snapshot()])
}

impl Response {
    /// Encodes the reply as protocol text (always ends with `\n`).
    pub fn encode(&self) -> String {
        match self {
            Response::Ok(s) => format!("+{s}\n"),
            Response::Bulk(None) => "$-1\n".into(),
            Response::Bulk(Some(v)) => format!("${}\n", String::from_utf8_lossy(v)),
            Response::Int(n) => format!(":{n}\n"),
            Response::Array(items) => {
                let mut out = format!("*{}\n", items.len());
                for item in items {
                    out.push_str(&String::from_utf8_lossy(item));
                    out.push('\n');
                }
                out
            }
            Response::Error(msg) => format!("-ERR {msg}\n"),
        }
    }

    /// Encodes the reply directly into `out` as raw bytes (always
    /// ends with `\n`). Unlike [`encode`](Self::encode) this never
    /// routes bulk payloads through lossy UTF-8 conversion, so
    /// binary-safe values survive; for valid-UTF-8 payloads the two
    /// encodings are byte-identical.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use std::io::Write as _;
        match self {
            Response::Ok(s) => {
                out.push(b'+');
                out.extend_from_slice(s.as_bytes());
                out.push(b'\n');
            }
            Response::Bulk(None) => out.extend_from_slice(b"$-1\n"),
            Response::Bulk(Some(v)) => {
                out.push(b'$');
                out.extend_from_slice(v);
                out.push(b'\n');
            }
            Response::Int(n) => {
                let _ = write!(out, ":{n}");
                out.push(b'\n');
            }
            Response::Array(items) => {
                let _ = write!(out, "*{}", items.len());
                out.push(b'\n');
                for item in items {
                    out.extend_from_slice(item);
                    out.push(b'\n');
                }
            }
            Response::Error(msg) => {
                out.extend_from_slice(b"-ERR ");
                out.extend_from_slice(msg.as_bytes());
                out.push(b'\n');
            }
        }
    }

    /// Decodes a reply from protocol text (the first line, plus array
    /// elements where applicable).
    pub fn decode(text: &str) -> Result<Response, String> {
        let mut lines = text.lines();
        let first = lines.next().ok_or("empty response")?;
        match first.as_bytes().first() {
            Some(b'+') => Ok(Response::Ok(first[1..].to_string())),
            Some(b':') => first[1..]
                .parse::<i64>()
                .map(Response::Int)
                .map_err(|e| e.to_string()),
            Some(b'$') => {
                if first == "$-1" {
                    Ok(Response::Bulk(None))
                } else {
                    // Bulk payload = rest of first line + any
                    // remaining lines (INFO is multi-line).
                    let mut payload = first[1..].to_string();
                    for line in lines {
                        payload.push('\n');
                        payload.push_str(line);
                    }
                    Ok(Response::Bulk(Some(payload.into_bytes())))
                }
            }
            Some(b'*') => {
                let n: usize = first[1..].parse().map_err(|_| "bad array length")?;
                let items: Vec<Vec<u8>> = lines.take(n).map(|l| l.as_bytes().to_vec()).collect();
                if items.len() != n {
                    return Err("truncated array".into());
                }
                Ok(Response::Array(items))
            }
            Some(b'-') => Ok(Response::Error(
                first.trim_start_matches("-ERR ").to_string(),
            )),
            _ => Err(format!("unparseable response: {first}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmem_core::{Priority, Sma};

    #[test]
    fn parse_basic_commands() {
        assert_eq!(Command::parse("PING").unwrap(), Command::Ping);
        assert_eq!(
            Command::parse("SET k hello world").unwrap(),
            Command::Set {
                key: b"k".to_vec(),
                value: b"hello world".to_vec()
            }
        );
        assert_eq!(
            Command::parse("get k\r\n").unwrap(),
            Command::Get { key: b"k".to_vec() }
        );
        assert_eq!(Command::parse("DBSIZE").unwrap(), Command::DbSize);
        assert_eq!(
            Command::parse("KEYS user:").unwrap(),
            Command::Keys {
                prefix: b"user:".to_vec()
            }
        );
        assert_eq!(
            Command::parse("SHED 4096").unwrap(),
            Command::Shed { bytes: 4096 }
        );
    }

    #[test]
    fn parse_new_commands() {
        assert_eq!(
            Command::parse("INCR n").unwrap(),
            Command::IncrBy {
                key: b"n".to_vec(),
                delta: 1
            }
        );
        assert_eq!(
            Command::parse("INCRBY n -5").unwrap(),
            Command::IncrBy {
                key: b"n".to_vec(),
                delta: -5
            }
        );
        assert_eq!(
            Command::parse("APPEND k tail text").unwrap(),
            Command::Append {
                key: b"k".to_vec(),
                value: b"tail text".to_vec()
            }
        );
        assert_eq!(
            Command::parse("PEXPIRE k 1500").unwrap(),
            Command::PExpire {
                key: b"k".to_vec(),
                ms: 1500
            }
        );
        assert_eq!(
            Command::parse("PTTL k").unwrap(),
            Command::PTtl { key: b"k".to_vec() }
        );
        assert_eq!(
            Command::parse("PERSIST k").unwrap(),
            Command::Persist { key: b"k".to_vec() }
        );
        assert!(Command::parse("INCRBY n lots").is_err());
        assert!(Command::parse("PEXPIRE k").is_err());
    }

    #[test]
    fn execute_new_commands() {
        let sma = Sma::standalone(64);
        let store = Store::new(&sma, "kv", Priority::default());
        assert_eq!(
            Command::parse("INCR hits").unwrap().execute(&store),
            Response::Int(1)
        );
        assert_eq!(
            Command::parse("INCRBY hits 9").unwrap().execute(&store),
            Response::Int(10)
        );
        assert_eq!(
            Command::parse("APPEND log a").unwrap().execute(&store),
            Response::Int(1)
        );
        assert_eq!(
            Command::parse("PTTL log").unwrap().execute(&store),
            Response::Int(-1)
        );
        assert_eq!(
            Command::parse("PEXPIRE log 60000").unwrap().execute(&store),
            Response::Int(1)
        );
        match Command::parse("PTTL log").unwrap().execute(&store) {
            Response::Int(ms) => assert!((0..=60_000).contains(&ms)),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(
            Command::parse("PERSIST log").unwrap().execute(&store),
            Response::Int(1)
        );
        assert_eq!(
            Command::parse("PTTL missing").unwrap().execute(&store),
            Response::Int(-2)
        );
    }

    #[test]
    fn setnx_and_mget_protocol() {
        let sma = Sma::standalone(64);
        let store = Store::new(&sma, "kv", Priority::default());
        assert_eq!(
            Command::parse("SETNX lock holder-1")
                .unwrap()
                .execute(&store),
            Response::Int(1)
        );
        assert_eq!(
            Command::parse("SETNX lock holder-2")
                .unwrap()
                .execute(&store),
            Response::Int(0)
        );
        store.set(b"a", b"1").unwrap();
        assert_eq!(
            Command::parse("MGET a nope lock").unwrap().execute(&store),
            Response::Array(vec![b"1".to_vec(), b"(nil)".to_vec(), b"holder-1".to_vec()])
        );
        assert!(Command::parse("MGET").is_err());
        assert!(Command::parse("SETNX k").is_err());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Command::parse("").is_err());
        assert!(Command::parse("SET k").is_err());
        assert!(Command::parse("GET").is_err());
        assert!(Command::parse("SHED lots").is_err());
        assert!(Command::parse("BANANA").is_err());
    }

    #[test]
    fn framing_finds_lines_and_strips_cr() {
        assert_eq!(next_frame(b""), None);
        assert_eq!(next_frame(b"GET k"), None, "no terminator yet");
        assert_eq!(next_frame(b"GET k\n"), Some((&b"GET k"[..], 6)));
        assert_eq!(next_frame(b"GET k\r\nrest"), Some((&b"GET k"[..], 7)));
        assert_eq!(next_frame(b"\n"), Some((&b""[..], 1)), "empty line");
        // Consuming repeatedly walks a pipelined buffer.
        let mut buf: &[u8] = b"PING\nGET a\r\nSET b 1\n";
        let mut frames = Vec::new();
        while let Some((frame, used)) = next_frame(buf) {
            frames.push(frame.to_vec());
            buf = &buf[used..];
        }
        assert_eq!(
            frames,
            vec![b"PING".to_vec(), b"GET a".to_vec(), b"SET b 1".to_vec()]
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn routing_key_of_matches_full_parse() {
        // The fast-path extractor must agree with the real parser on
        // every frame: same Some/None shape, same key bytes.
        let corpus: &[&str] = &[
            "PING",
            "SET k v",
            "set k v with spaces",
            "SET k",
            "GET k",
            "get spaced key name",
            "GET ",
            "DEL k",
            "EXISTS k",
            "DBSIZE",
            "FLUSHALL",
            "KEYS pre",
            "KEYS",
            "INFO",
            "SHED 4096",
            "SHED",
            "INCR counter with spaces",
            "INCRBY n 5",
            "INCRBY n",
            "APPEND k tail text",
            "PEXPIRE k 100",
            "PTTL k",
            "PERSIST spaced key",
            "SETNX lock holder",
            "MGET a b c",
            "MGET",
            "STATS",
            "SHUTDOWN",
            "BANANA k",
            "",
            "   ",
            "GET\r",
        ];
        for line in corpus {
            let fast = routing_key_of(line.as_bytes()).map(|k| k.to_vec());
            match CommandRef::parse(line) {
                // Parse succeeded: the fast path must agree exactly.
                Ok(cmd) => {
                    let parsed = cmd.routing_key().map(|k| k.to_vec());
                    assert_eq!(fast, parsed, "disagreement on {line:?}");
                }
                // Parse failed: any answer routes deterministically;
                // just require the extractor not to panic (already
                // exercised above) and, for non-single-key shapes, to
                // stay None.
                Err(_) => {
                    if let Some(key) = &fast {
                        assert!(!key.is_empty(), "empty key routed on {line:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn command_ref_parse_borrows_and_converts() {
        let line = "SET user:1 alice in wonderland".to_string();
        let cref = CommandRef::parse(&line).unwrap();
        assert_eq!(
            cref,
            CommandRef::Set {
                key: b"user:1",
                value: b"alice in wonderland"
            }
        );
        let owned = cref.to_owned();
        assert_eq!(owned, Command::parse(&line).unwrap());
        assert_eq!(owned.as_ref(), cref);
        // Routing key of a multi-key command is None.
        assert_eq!(CommandRef::parse("MGET a b").unwrap().routing_key(), None);
        assert_eq!(
            CommandRef::parse("GET spaced key").unwrap().routing_key(),
            Some(&b"spaced key"[..])
        );
    }

    #[test]
    fn encode_into_matches_encode_for_text() {
        for resp in [
            Response::Ok("OK".into()),
            Response::Bulk(None),
            Response::Bulk(Some(b"value".to_vec())),
            Response::Int(-3),
            Response::Array(vec![b"a".to_vec(), b"b".to_vec()]),
            Response::Error("boom".into()),
        ] {
            let mut raw = Vec::new();
            resp.encode_into(&mut raw);
            assert_eq!(raw, resp.encode().into_bytes(), "{resp:?}");
        }
        // Binary payloads pass through encode_into untouched.
        let mut raw = Vec::new();
        Response::Bulk(Some(vec![0xff, 0x00, 0x7f])).encode_into(&mut raw);
        assert_eq!(raw, [b'$', 0xff, 0x00, 0x7f, b'\n']);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for resp in [
            Response::Ok("OK".into()),
            Response::Bulk(None),
            Response::Bulk(Some(b"value".to_vec())),
            Response::Int(-3),
            Response::Array(vec![b"a".to_vec(), b"b".to_vec()]),
            Response::Error("boom".into()),
        ] {
            let decoded = Response::decode(&resp.encode()).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn execute_against_store() {
        let sma = Sma::standalone(256);
        let store = Store::new(&sma, "kv", Priority::default());
        assert_eq!(
            Command::parse("SET a 1").unwrap().execute(&store),
            Response::Ok("OK".into())
        );
        assert_eq!(
            Command::parse("GET a").unwrap().execute(&store),
            Response::Bulk(Some(b"1".to_vec()))
        );
        assert_eq!(
            Command::parse("GET b").unwrap().execute(&store),
            Response::Bulk(None)
        );
        assert_eq!(
            Command::parse("EXISTS a").unwrap().execute(&store),
            Response::Int(1)
        );
        assert_eq!(
            Command::parse("DEL a").unwrap().execute(&store),
            Response::Int(1)
        );
        assert_eq!(
            Command::parse("DBSIZE").unwrap().execute(&store),
            Response::Int(0)
        );
        if let Response::Bulk(Some(info)) = Command::Info.execute(&store) {
            let text = String::from_utf8(info).unwrap();
            assert!(text.contains("keys:0"), "{text}");
            if softmem_telemetry::ENABLED {
                assert!(text.contains("hits:1"), "{text}");
            }
        } else {
            panic!("INFO must return bulk");
        }
    }

    #[test]
    fn stats_returns_json_snapshot() {
        let sma = Sma::standalone(64);
        let store = Store::new(&sma, "kv", Priority::default());
        store.set(b"a", b"1").unwrap();
        store.get(b"a");
        assert_eq!(Command::parse("stats").unwrap(), Command::Stats);
        let reply = Command::Stats.execute(&store);
        let Response::Bulk(Some(json)) = reply else {
            panic!("STATS must return bulk, got {reply:?}");
        };
        let text = String::from_utf8(json).unwrap();
        assert!(text.starts_with("{\"kv\":{"), "{text}");
        assert!(!text.contains('\n'), "STATS must be one line: {text}");
        assert!(text.contains("\"hits\":"), "{text}");
        assert!(text.contains("\"op_ns\":"), "{text}");
        if softmem_telemetry::ENABLED {
            assert!(text.contains("\"hits\":1"), "{text}");
            assert!(text.contains("\"keys\":1"), "{text}");
        }
        // The reply survives an encode/decode round trip intact.
        let decoded = Response::decode(&Command::Stats.execute(&store).encode()).unwrap();
        let Response::Bulk(Some(raw)) = decoded else {
            panic!("decode changed shape");
        };
        assert!(String::from_utf8(raw).unwrap().starts_with("{\"kv\":{"));
    }
}
