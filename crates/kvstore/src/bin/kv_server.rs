//! A standalone soft-memory KV server over TCP.
//!
//! Runs the Redis-like store on its own soft-memory allocator with a
//! fixed budget, so the cache degrades (sheds entries) instead of
//! growing without bound — `maxmemory` semantics out of the box.
//! `--shards N` splits the keyspace over N independent engine threads
//! (one SDS and one worker each), the shard-per-core deployment shape.
//!
//! Two network frontends (DESIGN.md §network-plane):
//!
//! * `--frontend reactor` (default on Linux) — the event-driven plane:
//!   a small pool of epoll reactors multiplexes every client socket,
//!   frames and hash-routes requests to per-shard SPSC rings, and shard
//!   workers execute them in batches. Scales to thousands of idle or
//!   slow connections without a thread each. `--reactors N` sizes the
//!   pool (0 = auto).
//! * `--frontend threads` — the legacy thread-per-connection loop,
//!   kept as a baseline and for non-Linux builds.
//!
//! ```sh
//! cargo run --release -p softmem-kv --bin kv_server -- --budget-mib 64 --shards 4
//! # in another terminal:
//! cargo run --release -p softmem-kv --bin kv_cli -- 127.0.0.1:<port>
//! ```

use std::sync::Arc;

use softmem_core::{bytes_to_pages, Priority, Sma, SmaConfig};
use softmem_daemon::uds::UdsProcess;
use softmem_kv::ShardedStore;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let budget_mib: usize = arg("--budget-mib")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let shards: usize = arg("--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let addr = arg("--listen").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let frontend = arg("--frontend").unwrap_or_else(|| {
        if cfg!(target_os = "linux") {
            "reactor".to_string()
        } else {
            "threads".to_string()
        }
    });
    let reactors: usize = arg("--reactors").and_then(|v| v.parse().ok()).unwrap_or(0);
    let net = NetOpts {
        idle_timeout_ms: arg("--idle-timeout-ms").and_then(|v| v.parse().ok()),
        write_stall_timeout_ms: arg("--write-stall-timeout-ms").and_then(|v| v.parse().ok()),
        shed_inflight: arg("--shed-inflight").and_then(|v| v.parse().ok()),
        accept_pause_inflight: arg("--accept-pause-inflight").and_then(|v| v.parse().ok()),
    };

    // Two modes: a fixed standalone budget, or membership of a
    // machine-wide daemon (multiple kv_server processes then share
    // soft memory, reclaiming from each other under pressure).
    let (_daemon_membership, sma) = match arg("--smd-socket") {
        Some(socket) => {
            let proc = UdsProcess::connect(&socket, "kv-server", SmaConfig::for_testing(0))
                .expect("connect to the soft memory daemon");
            println!("joined soft memory daemon at {socket}");
            let sma = Arc::clone(proc.sma());
            (Some(proc), sma)
        }
        None => (
            None,
            Sma::with_config(SmaConfig::for_testing(bytes_to_pages(
                budget_mib * 1024 * 1024,
            ))),
        ),
    };
    let engine = ShardedStore::new(&sma, "keyspace", Priority::new(4), shards);

    match frontend.as_str() {
        "reactor" => run_reactor(&addr, engine, reactors, budget_mib, shards, net),
        "threads" => run_threads(&addr, engine, budget_mib, shards, net),
        other => {
            eprintln!("unknown --frontend {other:?} (expected 'reactor' or 'threads')");
            std::process::exit(2);
        }
    }
}

/// Fault-plane knobs shared by both frontends (all off by default):
/// connection deadlines and overload admission control.
#[derive(Clone, Copy, Default)]
struct NetOpts {
    idle_timeout_ms: Option<u64>,
    write_stall_timeout_ms: Option<u64>,
    shed_inflight: Option<u64>,
    accept_pause_inflight: Option<u64>,
}

fn banner(local: std::net::SocketAddr, frontend: &str, budget_mib: usize, shards: usize) {
    println!(
        "softmem-kv listening on {local} ({frontend} frontend, soft budget {budget_mib} MiB, {shards} shard{})",
        if shards == 1 { "" } else { "s" }
    );
    println!("commands: GET SET DEL EXISTS DBSIZE KEYS MGET INCR INCRBY APPEND PEXPIRE PTTL PERSIST INFO STATS SHED FLUSHALL SHUTDOWN");
}

#[cfg(target_os = "linux")]
fn run_reactor(
    addr: &str,
    engine: ShardedStore,
    reactors: usize,
    budget_mib: usize,
    shards: usize,
    net: NetOpts,
) {
    use softmem_kv::{ReactorConfig, ReactorFrontend};
    use std::time::Duration;

    let cfg = ReactorConfig {
        reactors,
        idle_timeout: net.idle_timeout_ms.map(Duration::from_millis),
        write_stall_timeout: net.write_stall_timeout_ms.map(Duration::from_millis),
        overload_shed_inflight: net.shed_inflight,
        overload_accept_inflight: net.accept_pause_inflight,
        ..ReactorConfig::default()
    };
    let frontend = ReactorFrontend::bind(addr, Arc::new(engine), cfg).expect("bind listen address");
    banner(frontend.addr(), "reactor", budget_mib, shards);

    // The reactors and shard workers do all the work; the main thread
    // just waits for a client to issue SHUTDOWN.
    let stats = frontend.stats();
    while !stats
        .shutdown_requested
        .load(std::sync::atomic::Ordering::Acquire)
    {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    drop(frontend); // flush + join reactors and workers before exiting
}

#[cfg(not(target_os = "linux"))]
fn run_reactor(
    addr: &str,
    engine: ShardedStore,
    _reactors: usize,
    budget_mib: usize,
    shards: usize,
    net: NetOpts,
) {
    eprintln!("reactor frontend requires Linux epoll; falling back to threads");
    run_threads(addr, engine, budget_mib, shards, net);
}

fn run_threads(addr: &str, engine: ShardedStore, budget_mib: usize, shards: usize, net: NetOpts) {
    use softmem_kv::{FrontendOpts, KvServer, TcpFrontend};
    use std::time::Duration;

    let server = KvServer::start_sharded(engine);
    let handle = server.handle();
    let opts = FrontendOpts {
        idle_timeout: net.idle_timeout_ms.map(Duration::from_millis),
        ..FrontendOpts::default()
    };
    let frontend = TcpFrontend::bind_with(addr, handle.clone(), opts).expect("bind listen address");
    banner(frontend.addr(), "threads", budget_mib, shards);

    // The frontend's accept loop and connection threads do the work;
    // the main thread just waits for SHUTDOWN to stop the engine.
    while handle.request("PING").is_ok() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    drop(frontend); // hang up on in-flight connections and join them
}
