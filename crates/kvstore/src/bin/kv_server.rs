//! A standalone soft-memory KV server over TCP.
//!
//! Runs the Redis-like store on its own soft-memory allocator with a
//! fixed budget, so the cache degrades (sheds entries) instead of
//! growing without bound — `maxmemory` semantics out of the box.
//! `--shards N` splits the keyspace over N independent engine threads
//! (one SDS and one worker each), the shard-per-core deployment shape.
//!
//! ```sh
//! cargo run --release -p softmem-kv --bin kv_server -- --budget-mib 64 --shards 4
//! # in another terminal:
//! cargo run --release -p softmem-kv --bin kv_cli -- 127.0.0.1:<port>
//! ```

use std::net::TcpListener;
use std::sync::Arc;

use softmem_core::{bytes_to_pages, Priority, Sma, SmaConfig};
use softmem_daemon::uds::UdsProcess;
use softmem_kv::server::{KvHandle, KvServer};
use softmem_kv::{Response, ShardedStore};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let budget_mib: usize = arg("--budget-mib")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let shards: usize = arg("--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let addr = arg("--listen").unwrap_or_else(|| "127.0.0.1:0".to_string());

    // Two modes: a fixed standalone budget, or membership of a
    // machine-wide daemon (multiple kv_server processes then share
    // soft memory, reclaiming from each other under pressure).
    let (_daemon_membership, sma) = match arg("--smd-socket") {
        Some(socket) => {
            let proc = UdsProcess::connect(&socket, "kv-server", SmaConfig::for_testing(0))
                .expect("connect to the soft memory daemon");
            println!("joined soft memory daemon at {socket}");
            let sma = Arc::clone(proc.sma());
            (Some(proc), sma)
        }
        None => (
            None,
            Sma::with_config(SmaConfig::for_testing(bytes_to_pages(
                budget_mib * 1024 * 1024,
            ))),
        ),
    };
    let engine = ShardedStore::new(&sma, "keyspace", Priority::new(4), shards);
    let server = KvServer::start_sharded(engine);
    let handle = server.handle();

    let listener = TcpListener::bind(&addr).expect("bind listen address");
    let local = listener.local_addr().expect("bound address");
    println!(
        "softmem-kv listening on {local} (soft budget {budget_mib} MiB, {shards} shard{})",
        if shards == 1 { "" } else { "s" }
    );
    println!("commands: GET SET DEL EXISTS DBSIZE KEYS INCR INCRBY APPEND PEXPIRE PTTL PERSIST INFO SHED FLUSHALL SHUTDOWN");

    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let handle: KvHandle = handle.clone();
        std::thread::spawn(move || {
            use std::io::{BufReader, Write};
            let _ = stream.set_nodelay(true);
            let mut writer = match stream.try_clone() {
                Ok(w) => w,
                Err(_) => return,
            };
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            while softmem_kv::server::read_frame(&mut reader, &mut line) {
                if line.is_empty() {
                    continue;
                }
                let reply = match handle.request(&line) {
                    Ok(resp) => resp.encode(),
                    Err(msg) => Response::Error(msg).encode(),
                };
                if writer.write_all(reply.as_bytes()).is_err() {
                    break;
                }
                if line.eq_ignore_ascii_case("shutdown") {
                    std::process::exit(0);
                }
            }
        });
    }
}
