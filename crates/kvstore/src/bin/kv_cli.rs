//! A minimal interactive client for `kv_server`.
//!
//! ```sh
//! cargo run --release -p softmem-kv --bin kv_cli -- 127.0.0.1:PORT
//! # batch stdin through the pipelined path, 64 commands per write:
//! cat workload.txt | cargo run --release -p softmem-kv --bin kv_cli -- 127.0.0.1:PORT --pipeline 64
//! ```

use std::io::{BufRead, Write};

use softmem_kv::server::TcpKvClient;
use softmem_kv::Response;

fn print_reply(reply: &Response) {
    match reply {
        Response::Ok(s) => println!("{s}"),
        Response::Bulk(None) => println!("(nil)"),
        Response::Bulk(Some(v)) => println!("\"{}\"", String::from_utf8_lossy(v)),
        Response::Int(n) => println!("(integer) {n}"),
        Response::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                println!("{}) {}", i + 1, String::from_utf8_lossy(item));
            }
            if items.is_empty() {
                println!("(empty)");
            }
        }
        Response::Error(msg) => println!("(error) {msg}"),
    }
}

/// Reads commands from stdin and ships them in batches of `batch`
/// per write, printing the replies in order — the way to drive a bulk
/// load or benchmark without paying one round trip per command.
fn run_pipeline(mut client: TcpKvClient, batch: usize) {
    let stdin = std::io::stdin();
    let mut pending: Vec<String> = Vec::with_capacity(batch);
    let flush = |pending: &mut Vec<String>, client: &mut TcpKvClient| -> bool {
        if pending.is_empty() {
            return true;
        }
        match client.request_pipeline(pending) {
            Ok(replies) => {
                for reply in &replies {
                    print_reply(reply);
                }
                pending.clear();
                true
            }
            Err(e) => {
                eprintln!("connection error: {e}");
                false
            }
        }
    };
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim().to_string();
        if line.is_empty() {
            continue;
        }
        let stop = line.eq_ignore_ascii_case("shutdown");
        pending.push(line);
        if pending.len() >= batch || stop {
            if !flush(&mut pending, &mut client) {
                return;
            }
            if stop {
                return;
            }
        }
    }
    flush(&mut pending, &mut client);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = args
        .get(1)
        .expect("usage: kv_cli <host:port> [--pipeline N]")
        .parse()
        .expect("valid socket address");
    let pipeline: Option<usize> = args
        .iter()
        .position(|a| a == "--pipeline")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--pipeline takes a batch size >= 1"));
    let mut client = TcpKvClient::connect(addr).expect("connect");

    if let Some(batch) = pipeline {
        run_pipeline(client, batch.max(1));
        return;
    }

    println!("connected to {addr}; type commands (Ctrl-D to quit)");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("softmem-kv> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match client.request(line) {
            Ok(reply) => print_reply(&reply),
            Err(e) => {
                println!("connection error: {e}");
                break;
            }
        }
        if line.eq_ignore_ascii_case("shutdown") {
            break;
        }
    }
}
