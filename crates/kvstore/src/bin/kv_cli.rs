//! A minimal interactive client for `kv_server`.
//!
//! ```sh
//! cargo run --release -p softmem-kv --bin kv_cli -- 127.0.0.1:PORT
//! ```

use std::io::{BufRead, Write};

use softmem_kv::server::TcpKvClient;
use softmem_kv::Response;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .expect("usage: kv_cli <host:port>")
        .parse()
        .expect("valid socket address");
    let mut client = TcpKvClient::connect(addr).expect("connect");
    println!("connected to {addr}; type commands (Ctrl-D to quit)");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("softmem-kv> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match client.request(line) {
            Ok(Response::Ok(s)) => println!("{s}"),
            Ok(Response::Bulk(None)) => println!("(nil)"),
            Ok(Response::Bulk(Some(v))) => println!("\"{}\"", String::from_utf8_lossy(&v)),
            Ok(Response::Int(n)) => println!("(integer) {n}"),
            Ok(Response::Array(items)) => {
                for (i, item) in items.iter().enumerate() {
                    println!("{}) {}", i + 1, String::from_utf8_lossy(item));
                }
                if items.is_empty() {
                    println!("(empty)");
                }
            }
            Ok(Response::Error(msg)) => println!("(error) {msg}"),
            Err(e) => {
                println!("connection error: {e}");
                break;
            }
        }
        if line.eq_ignore_ascii_case("shutdown") {
            break;
        }
    }
}
