//! A multiplexed load-generation client for the line protocol.
//!
//! [`crate::TcpKvClient`] is one blocking socket — fine for tests,
//! useless for driving thousands of concurrent connections from one
//! thread. `Swarm` holds N nonblocking connections behind its own
//! epoll [`Poller`](crate::reactor) and pipelines requests over all of
//! them at a configurable depth, which is how both the `conn_scaling`
//! bench (64→8192 clients) and the testkit's network scenarios
//! (slow-reader backpressure, mass disconnect) generate traffic
//! without a thread per simulated client.
//!
//! Misbehaving-client controls are first-class because the testkit
//! needs them: [`Swarm::stall`] turns a client into a slow reader
//! (it keeps *sending* but never reads a reply — its kernel receive
//! buffer fills, and the server's backpressure machinery is on the
//! hook for bounding memory), and [`Swarm::disconnect`] drops a
//! connection on the floor mid-pipeline.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use crate::reactor::{Event, Poller};

/// Parameters for one [`Swarm::run`] call.
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// Requests each live client issues (use `u64::MAX` with a
    /// `deadline` for time-boxed runs).
    pub per_client: u64,
    /// Max outstanding (sent, unanswered) requests per client.
    /// Stalled clients ignore this — they never ack, so the cap
    /// would freeze them after one window.
    pub pipeline: usize,
    /// Stop issuing and return once this much time has elapsed.
    pub deadline: Option<Duration>,
    /// Record a latency sample every Nth request (`0` = none).
    pub latency_sample_every: u64,
}

/// What a [`Swarm::run`] (or [`Swarm::drain`]) observed.
#[derive(Clone, Debug, Default)]
pub struct SwarmReport {
    /// Requests generated (and queued for write).
    pub sent: u64,
    /// Complete replies received.
    pub received: u64,
    /// Replies that were protocol errors (`-ERR …`).
    pub error_replies: u64,
    /// Connections that hit an I/O error.
    pub io_errors: u64,
    /// Connections the server closed mid-run (EOF).
    pub disconnects: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Sampled request→reply latencies.
    pub latencies_ns: Vec<u64>,
}

struct ClientConn {
    stream: TcpStream,
    /// Generated requests not yet written; `out_pos` is flushed.
    out: Vec<u8>,
    out_pos: usize,
    /// Reply bytes not yet framed; `in_pos` is consumed.
    in_buf: Vec<u8>,
    in_pos: usize,
    /// Remaining element lines of a partially-read `*n` array reply.
    array_extra: usize,
    /// Requests issued / replies received in the current run.
    sent: u64,
    acked: u64,
    /// Send-timestamps for latency sampling (one slot per request;
    /// `None` for unsampled requests).
    lat: VecDeque<Option<Instant>>,
    /// Slow reader: keeps sending, never reads.
    stalled: bool,
    want_read: bool,
    want_write: bool,
}

impl ClientConn {
    fn outstanding(&self) -> u64 {
        self.sent - self.acked
    }
}

/// N multiplexed pipelined connections driven from the calling
/// thread. Indexes are stable: disconnecting client `i` leaves a
/// tombstone, it does not shift the others.
pub struct Swarm {
    poller: Poller,
    conns: Vec<Option<ClientConn>>,
}

impl Swarm {
    /// Opens `clients` connections to `addr` (serially; localhost
    /// connects are microseconds, and a serial dial keeps the
    /// server's accept backlog shallow).
    pub fn connect(addr: SocketAddr, clients: usize) -> io::Result<Swarm> {
        let poller = Poller::new()?;
        let mut conns = Vec::with_capacity(clients);
        for idx in 0..clients {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_nonblocking(true)?;
            poller.add(stream.as_raw_fd(), idx as u64, true, false)?;
            conns.push(Some(ClientConn {
                stream,
                out: Vec::new(),
                out_pos: 0,
                in_buf: Vec::new(),
                in_pos: 0,
                array_extra: 0,
                sent: 0,
                acked: 0,
                lat: VecDeque::new(),
                stalled: false,
                want_read: true,
                want_write: false,
            }));
        }
        Ok(Swarm { poller, conns })
    }

    /// Connections still open.
    pub fn live_clients(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Shrinks client `idx`'s kernel receive buffer (`SO_RCVBUF`).
    /// A stalled client with the default multi-megabyte buffer can
    /// absorb an entire test workload's replies without the server
    /// ever feeling backpressure; shrinking it moves the pressure to
    /// where the scenario wants it — the server's write path.
    pub fn shrink_recv_buf(&mut self, idx: usize, bytes: usize) {
        if let Some(conn) = self.conns.get(idx).and_then(Option::as_ref) {
            let _ = crate::reactor::set_sock_buf(
                conn.stream.as_raw_fd(),
                crate::reactor::sys::SO_RCVBUF,
                bytes,
            );
        }
    }

    /// Marks client `idx` as a slow reader: it continues to send but
    /// never reads another reply.
    pub fn stall(&mut self, idx: usize) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
            conn.stalled = true;
            conn.want_read = false;
            let _ = self
                .poller
                .modify(conn.stream.as_raw_fd(), idx as u64, false, conn.want_write);
        }
    }

    /// Drops client `idx`'s connection immediately (mid-pipeline —
    /// outstanding requests are abandoned).
    pub fn disconnect(&mut self, idx: usize) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
        }
    }

    /// Issues `opts.per_client` requests per live client at the given
    /// pipeline depth, generating each request with `gen(client,
    /// request_index, out)` (which must append exactly one
    /// `\n`-terminated line). Returns when every live, non-stalled
    /// client has its replies (or the deadline passes).
    pub fn run(
        &mut self,
        opts: &RunOpts,
        mut gen: impl FnMut(usize, u64, &mut Vec<u8>),
    ) -> SwarmReport {
        let start = Instant::now();
        let mut report = SwarmReport::default();
        for conn in self.conns.iter_mut().flatten() {
            conn.sent = 0;
            conn.acked = 0;
        }
        // Prime every pipeline, then settle into the event loop.
        for idx in 0..self.conns.len() {
            self.top_up(idx, opts, &mut gen, &mut report);
            self.flush_out(idx, &mut report);
        }
        let mut events = Vec::with_capacity(256);
        loop {
            if self.finished(opts) {
                break;
            }
            let timeout = match opts.deadline {
                Some(d) => {
                    let elapsed = start.elapsed();
                    if elapsed >= d {
                        break;
                    }
                    ((d - elapsed).as_millis() as i32).clamp(1, 50)
                }
                None => 50,
            };
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            let round: Vec<Event> = events.clone();
            for ev in round {
                let idx = ev.token as usize;
                if ev.hangup && !ev.readable {
                    report.disconnects += 1;
                    self.disconnect(idx);
                    continue;
                }
                if ev.readable {
                    self.handle_read(idx, opts, &mut gen, &mut report);
                }
                if ev.writable {
                    self.flush_out(idx, &mut report);
                    // A drained out-buffer may free pipeline slots.
                    self.top_up(idx, opts, &mut gen, &mut report);
                    self.flush_out(idx, &mut report);
                }
            }
            self.sync_interest();
        }
        report.elapsed = start.elapsed();
        report
    }

    /// Reads until every live, non-stalled client has no outstanding
    /// requests (flushing any still-queued writes), or `timeout`
    /// passes. Returns the replies received while draining.
    pub fn drain(&mut self, timeout: Duration) -> SwarmReport {
        let opts = RunOpts {
            per_client: 0,
            pipeline: 0,
            deadline: Some(timeout),
            latency_sample_every: 0,
        };
        // per_client = 0 means top_up never generates anything; the
        // loop just flushes and reads until outstanding hits zero.
        let mut gen = |_: usize, _: u64, _: &mut Vec<u8>| {};
        let start = Instant::now();
        let mut report = SwarmReport::default();
        let mut events = Vec::with_capacity(256);
        loop {
            if self.quiet() {
                break;
            }
            let elapsed = start.elapsed();
            if elapsed >= timeout {
                break;
            }
            let ms = ((timeout - elapsed).as_millis() as i32).clamp(1, 50);
            if self.poller.wait(&mut events, ms).is_err() {
                break;
            }
            let round: Vec<Event> = events.clone();
            for ev in round {
                let idx = ev.token as usize;
                if ev.hangup && !ev.readable {
                    report.disconnects += 1;
                    self.disconnect(idx);
                    continue;
                }
                if ev.readable {
                    self.handle_read(idx, &opts, &mut gen, &mut report);
                }
                if ev.writable {
                    self.flush_out(idx, &mut report);
                }
            }
            self.sync_interest();
        }
        report.elapsed = start.elapsed();
        report
    }

    /// Whether every live, non-stalled client is idle (nothing
    /// outstanding, nothing left to write).
    pub fn quiet(&self) -> bool {
        self.conns
            .iter()
            .flatten()
            .all(|c| c.stalled || (c.outstanding() == 0 && c.out_pos == c.out.len()))
    }

    fn finished(&self, opts: &RunOpts) -> bool {
        self.conns.iter().flatten().all(|c| {
            if c.stalled {
                // Slow readers only need to have *issued* their load.
                c.sent >= opts.per_client
            } else {
                c.sent >= opts.per_client && c.outstanding() == 0
            }
        })
    }

    fn top_up(
        &mut self,
        idx: usize,
        opts: &RunOpts,
        gen: &mut impl FnMut(usize, u64, &mut Vec<u8>),
        report: &mut SwarmReport,
    ) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let cap = if conn.stalled {
            u64::MAX
        } else {
            opts.pipeline as u64
        };
        // Don't let a stalled client's write queue grow without
        // bound either — it only needs enough to keep the socket
        // saturated.
        while conn.sent < opts.per_client && conn.outstanding() < cap && conn.out.len() < 1 << 20 {
            let req = conn.sent;
            gen(idx, req, &mut conn.out);
            let sample = opts.latency_sample_every > 0
                && !conn.stalled
                && req % opts.latency_sample_every == 0;
            conn.lat.push_back(sample.then(Instant::now));
            conn.sent += 1;
            report.sent += 1;
        }
    }

    fn flush_out(&mut self, idx: usize, report: &mut SwarmReport) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    report.io_errors += 1;
                    self.disconnect(idx);
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    report.io_errors += 1;
                    self.disconnect(idx);
                    return;
                }
            }
        }
        if conn.out_pos == conn.out.len() && conn.out_pos > 0 {
            conn.out.clear();
            conn.out_pos = 0;
        }
    }

    fn handle_read(
        &mut self,
        idx: usize,
        opts: &RunOpts,
        gen: &mut impl FnMut(usize, u64, &mut Vec<u8>),
        report: &mut SwarmReport,
    ) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if conn.stalled {
            return;
        }
        loop {
            let old = conn.in_buf.len();
            conn.in_buf.resize(old + 16 * 1024, 0);
            match conn.stream.read(&mut conn.in_buf[old..]) {
                Ok(0) => {
                    conn.in_buf.truncate(old);
                    report.disconnects += 1;
                    self.disconnect(idx);
                    return;
                }
                Ok(n) => {
                    conn.in_buf.truncate(old + n);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.in_buf.truncate(old);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    conn.in_buf.truncate(old);
                    continue;
                }
                Err(_) => {
                    conn.in_buf.truncate(old);
                    report.io_errors += 1;
                    self.disconnect(idx);
                    return;
                }
            }
        }
        // Frame replies: one line each, except `*n` headers which
        // announce n element lines.
        while let Some(nl) = conn.in_buf[conn.in_pos..].iter().position(|&b| b == b'\n') {
            let line = &conn.in_buf[conn.in_pos..conn.in_pos + nl];
            let line = line.strip_suffix(b"\r").unwrap_or(line);
            if conn.array_extra > 0 {
                conn.array_extra -= 1;
                if conn.array_extra == 0 {
                    complete_reply(conn, report);
                }
            } else if let Some(rest) = line.strip_prefix(b"*") {
                let n: usize = std::str::from_utf8(rest)
                    .ok()
                    .and_then(|s| s.trim().parse().ok())
                    .unwrap_or(0);
                if n == 0 {
                    complete_reply(conn, report);
                } else {
                    conn.array_extra = n;
                }
            } else {
                if line.first() == Some(&b'-') {
                    report.error_replies += 1;
                }
                complete_reply(conn, report);
            }
            conn.in_pos += nl + 1;
        }
        if conn.in_pos > 0 {
            conn.in_buf.drain(..conn.in_pos);
            conn.in_pos = 0;
        }
        // Freed pipeline slots: issue more load.
        self.top_up(idx, opts, gen, report);
        self.flush_out(idx, report);
    }

    fn sync_interest(&mut self) {
        for (idx, conn) in self.conns.iter_mut().enumerate() {
            let Some(conn) = conn else { continue };
            let want_read = !conn.stalled;
            let want_write = conn.out_pos < conn.out.len();
            if want_read != conn.want_read || want_write != conn.want_write {
                conn.want_read = want_read;
                conn.want_write = want_write;
                let _ =
                    self.poller
                        .modify(conn.stream.as_raw_fd(), idx as u64, want_read, want_write);
            }
        }
    }
}

fn complete_reply(conn: &mut ClientConn, report: &mut SwarmReport) {
    conn.acked += 1;
    report.received += 1;
    if let Some(Some(sent_at)) = conn.lat.pop_front() {
        report
            .latencies_ns
            .push(sent_at.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::{ReactorConfig, ReactorFrontend};
    use crate::sharded::ShardedStore;
    use softmem_core::{Priority, Sma};
    use std::sync::Arc;

    #[test]
    fn swarm_drives_reactor_pipelined() {
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 2));
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, ReactorConfig::default()).unwrap();
        let mut swarm = Swarm::connect(fe.addr(), 16).unwrap();
        let opts = RunOpts {
            per_client: 50,
            pipeline: 8,
            deadline: Some(Duration::from_secs(10)),
            latency_sample_every: 4,
        };
        let report = swarm.run(&opts, |client, req, out| {
            out.extend_from_slice(format!("SET k-{client}-{req} v{req}\n").as_bytes());
        });
        assert_eq!(report.sent, 16 * 50);
        assert_eq!(report.received, 16 * 50, "{report:?}");
        assert_eq!(report.error_replies, 0);
        assert_eq!(report.io_errors, 0);
        assert!(!report.latencies_ns.is_empty());
        assert_eq!(fe.engine().dbsize(), 16 * 50);
        // Reads mixed with MGET (array replies) frame correctly too.
        let report = swarm.run(&opts, |client, req, out| {
            if req % 5 == 0 {
                out.extend_from_slice(
                    format!("MGET k-{client}-{req} nope k-{client}-1\n").as_bytes(),
                );
            } else {
                out.extend_from_slice(format!("GET k-{client}-{req}\n").as_bytes());
            }
        });
        assert_eq!(report.received, 16 * 50, "{report:?}");
        assert_eq!(report.error_replies, 0);
        assert!(swarm.quiet());
        assert!(fe.stats().quiesced());
    }

    #[test]
    fn swarm_disconnect_and_stall_bookkeeping() {
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 1));
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, ReactorConfig::default()).unwrap();
        let mut swarm = Swarm::connect(fe.addr(), 8).unwrap();
        swarm.disconnect(0);
        swarm.disconnect(3);
        assert_eq!(swarm.live_clients(), 6);
        swarm.stall(1);
        let opts = RunOpts {
            per_client: 20,
            pipeline: 4,
            deadline: Some(Duration::from_secs(10)),
            latency_sample_every: 0,
        };
        let report = swarm.run(&opts, |client, req, out| {
            out.extend_from_slice(format!("SET s-{client}-{req} v\n").as_bytes());
        });
        // 6 live clients issued their quota; the stalled one read
        // nothing, so only 5 clients' replies came back.
        assert_eq!(report.sent, 6 * 20);
        assert_eq!(report.received, 5 * 20, "{report:?}");
    }
}
