//! # softmem-kv — a Redis-like in-memory key-value store on soft memory
//!
//! The paper evaluates soft memory by patching Redis so that its hash
//! table stores "the elements of its buckets in soft memory, turning it
//! into an SDS", while keys and values point to traditional heap memory
//! that the reclamation callback cleans up (§5). This crate is the
//! from-scratch substitute for that patched Redis (DESIGN.md §2):
//!
//! * [`Store`] — the single-threaded command engine: a soft-memory hash
//!   table of entries whose key/value buffers live on the traditional
//!   heap and are released when an entry is reclaimed. A reclaimed key
//!   simply reads as *not found*, and "in a caching setup, the client
//!   would re-fetch these entries from a database".
//! * [`protocol`] — a line-oriented command protocol (`SET`/`GET`/…)
//!   with Redis-flavoured replies.
//! * [`server`] — an in-process server (command channel + worker
//!   thread, mirroring Redis's single-threaded event loop) and a TCP
//!   front-end over the same engine.
//! * [`crash`] — the no-soft-memory baseline: a store that is killed
//!   under memory pressure and restarts cold (≥ 12 ms downtime plus a
//!   refill period of elevated misses, §5).
//!
//! # Examples
//!
//! ```
//! use softmem_core::{Priority, Sma};
//! use softmem_kv::Store;
//!
//! let sma = Sma::standalone(1024);
//! let store = Store::new(&sma, "cache", Priority::new(4));
//! store.set(b"user:1", b"alice").unwrap();
//! assert_eq!(store.get(b"user:1"), Some(b"alice".to_vec()));
//! assert_eq!(store.dbsize(), 1);
//!
//! // Under pressure the SMA reclaims entries; lookups turn into
//! // cache misses instead of crashes.
//! sma.reclaim(usize::MAX / 4096);
//! assert_eq!(store.get(b"user:1"), None);
//! ```

pub mod crash;
mod metrics;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
mod sharded;
mod store;
#[cfg(target_os = "linux")]
pub mod swarm;

pub use metrics::StoreMetrics;
pub use protocol::{Command, CommandRef, Response};
#[cfg(target_os = "linux")]
pub use reactor::{
    NetMetrics, NetStats, ReactorConfig, ReactorFrontend, RealSysIo, SysIo, WorkerHook,
};
pub use server::{FrontendOpts, KvHandle, KvServer, TcpFrontend, TcpKvClient};
pub use sharded::ShardedStore;
pub use store::{ReclaimCostModel, Store, StoreStats, Ttl};
#[cfg(target_os = "linux")]
pub use swarm::{RunOpts, Swarm, SwarmReport};
