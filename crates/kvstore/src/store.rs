//! The command engine: a soft hash table of KV entries.
//!
//! Faithful to the paper's 25-line Redis patch: the hash-table *entry*
//! (our `Entry { key, value }`) lives in soft memory, while the actual
//! key/value byte buffers live on the traditional heap (`Vec<u8>`'s
//! backing store). When an entry is reclaimed, dropping it releases
//! those traditional buffers — the cleanup work the paper measured
//! dominating the 3.75 s reclamation (§5) — and the callback hook
//! lets the application observe each loss.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use softmem_core::tier::{ColdTier, TierHit};
use softmem_core::{Priority, Sma, SoftError, SoftResult};
use softmem_sds::{EvictionOrder, SoftContainer, SoftHashMap};

use crate::metrics::StoreMetrics;

/// Result of a TTL query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ttl {
    /// The key does not exist (Redis: `-2`).
    NoKey,
    /// The key exists but has no expiry (Redis: `-1`).
    NoExpiry,
    /// Time until the key expires.
    Remaining(Duration),
}

/// Counters describing a store's behaviour over time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// GETs that found a live entry.
    pub hits: u64,
    /// GETs that found nothing (never set, deleted, or reclaimed).
    pub misses: u64,
    /// SETs served.
    pub sets: u64,
    /// Entries lost to soft-memory reclamation.
    pub reclaimed_entries: u64,
    /// Bytes of key+value payload lost to reclamation.
    pub reclaimed_bytes: u64,
    /// SETs whose insert was denied because the daemon connection was
    /// down (fail-local degraded mode). Each one was served anyway by
    /// the local shed-and-retry path; the counter records that the
    /// store rode out an outage, not that a client saw an error.
    pub degraded_denies: u64,
    /// Evictions demoted into the cold tier instead of destroyed
    /// (0 unless the store was built with [`Store::with_tier`]).
    pub cold_demotions: u64,
    /// GETs served by promoting a value out of the cold arena.
    pub cold_hits: u64,
    /// GETs served by promoting a value off the spill log.
    pub spill_hits: u64,
    /// Arena-overflow records written to the spill log.
    pub spill_writes: u64,
    /// Cold entries discarded because their bytes failed the
    /// checksum/decode — each surfaced as a clean miss.
    pub cold_corruptions: u64,
}

impl StoreStats {
    /// Hit rate in `[0, 1]` (0 with no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// How the simulated per-entry cleanup cost is charged inside the
/// reclamation callback (see [`Store::set_reclaim_cost`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReclaimCostModel {
    /// Busy-spin for the configured duration (default): the cleanup is
    /// CPU work executing on the reclaiming core.
    #[default]
    Spin,
    /// Sleep for the configured duration: the cleanup's cost is
    /// off-CPU (I/O, unmapping syscalls, work handed to another core).
    /// On single-vCPU machines this is the model that lets benchmarks
    /// observe *stall* behaviour — a spinning callback would make every
    /// engine configuration equally CPU-bound.
    Sleep,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    sets: AtomicU64,
    reclaimed_entries: AtomicU64,
    reclaimed_bytes: AtomicU64,
    degraded_denies: AtomicU64,
    /// Simulated per-entry cleanup cost (ns busy-work in the callback).
    reclaim_cost_ns: AtomicU64,
    /// Whether the cleanup cost sleeps instead of spinning
    /// ([`ReclaimCostModel::Sleep`]).
    reclaim_cost_sleeps: std::sync::atomic::AtomicBool,
    /// Total ns spent inside the reclamation callback.
    callback_ns: AtomicU64,
}

/// A Redis-like keyspace whose entries live in soft memory.
///
/// Thread-safe, but intended to be driven by a single command loop
/// (like Redis); see [`crate::server`].
///
/// # Examples
///
/// ```
/// use softmem_core::{Priority, Sma};
/// use softmem_kv::{Store, Ttl};
///
/// let sma = Sma::standalone(128);
/// let store = Store::new(&sma, "db0", Priority::new(4));
/// store.set(b"user:1", b"alice").unwrap();
/// assert_eq!(store.incr_by(b"visits", 1).unwrap(), 1);
/// store.expire(b"user:1", std::time::Duration::from_secs(60));
/// assert!(matches!(store.ttl(b"user:1"), Ttl::Remaining(_)));
/// ```
pub struct Store {
    sma: Arc<Sma>,
    table: SoftHashMap<Vec<u8>, Vec<u8>>,
    counters: Arc<Counters>,
    metrics: Arc<StoreMetrics>,
    /// Expiry deadlines, in traditional memory (like Redis's separate
    /// expires dict). Entries are removed lazily on access.
    expiries: Mutex<HashMap<Vec<u8>, Instant>>,
    /// The second-chance cold tier ([`Store::with_tier`]). When
    /// present, evictions demote into it and reads fall through
    /// hot → arena → disk, promoting on access.
    tier: Option<Arc<ColdTier>>,
    /// Per-key stripes serializing every mutation of a key's
    /// *placement* (SET/DEL/expiry and cold-tier promotion). The hot
    /// table's own lock makes each operation atomic, but promotion is
    /// two operations — `tier.take` then `table.insert` — and a SET or
    /// DEL landing in between would be silently overwritten by the
    /// stale promoted value. Holding the key's stripe across both
    /// halves (and across every write) closes that window.
    stripes: Vec<Mutex<()>>,
}

/// Number of key stripes. Power of two, sized so 64 concurrent
/// connections rarely collide on unrelated keys.
const STRIPES: usize = 64;

impl Store {
    /// Creates a store whose table is registered with `sma` as an SDS
    /// named `name` at the given reclamation priority. Reclamation
    /// evicts entries oldest-first (see [`Store::with_eviction`] for
    /// the alternative).
    pub fn new(sma: &Arc<Sma>, name: &str, priority: Priority) -> Self {
        Self::with_eviction(sma, name, priority, EvictionOrder::InsertionOrder)
    }

    /// Creates a store with an explicit reclamation-eviction order
    /// (`Random` approximates the paper's Redis, whose per-bucket
    /// eviction is effectively hash-random with respect to popularity).
    pub fn with_eviction(
        sma: &Arc<Sma>,
        name: &str,
        priority: Priority,
        eviction: EvictionOrder,
    ) -> Self {
        Self::with_eviction_labeled(sma, name, priority, eviction, "kv")
    }

    /// Like [`Store::with_eviction`], but with an explicit telemetry
    /// registry label. A sharded engine gives each shard its own label
    /// (`kv0`, `kv1`, …) so per-shard registries stay distinguishable
    /// in aggregated `STATS` output.
    pub fn with_eviction_labeled(
        sma: &Arc<Sma>,
        name: &str,
        priority: Priority,
        eviction: EvictionOrder,
        metrics_label: &str,
    ) -> Self {
        Self::build(sma, name, priority, eviction, metrics_label, None)
    }

    /// Like [`Store::with_eviction_labeled`], but with a second-chance
    /// cold tier: the eviction callback *demotes* each reclaimed entry
    /// into `tier` (compressed arena, spilling to disk under deeper
    /// pressure) instead of letting it vanish, and reads fall through
    /// hot → arena → disk, transparently promoting back on access.
    ///
    /// The store's SDS is marked demotable
    /// ([`Sma::set_demotable`]), so machine-wide reclamation prefers
    /// it within its priority class — squeezing it destroys no data.
    pub fn with_tier(
        sma: &Arc<Sma>,
        name: &str,
        priority: Priority,
        eviction: EvictionOrder,
        metrics_label: &str,
        tier: Arc<ColdTier>,
    ) -> Self {
        Self::build(sma, name, priority, eviction, metrics_label, Some(tier))
    }

    fn build(
        sma: &Arc<Sma>,
        name: &str,
        priority: Priority,
        eviction: EvictionOrder,
        metrics_label: &str,
        tier: Option<Arc<ColdTier>>,
    ) -> Self {
        let table = SoftHashMap::with_eviction(sma, name, priority, eviction);
        let counters = Arc::new(Counters::default());
        let metrics = Arc::new(StoreMetrics::new(metrics_label));
        let c = Arc::clone(&counters);
        let m = Arc::clone(&metrics);
        let t = tier.clone();
        table.set_reclaim_callback(move |k: &Vec<u8>, v: &Vec<u8>| {
            // The paper's reclamation callback: this is where Redis
            // "cleans up associated traditional memory for the
            // reclaimed entries" (the buffers are freed when the entry
            // drops, right after this hook). A configurable busy-work
            // cost stands in for that cleanup, so the Figure-2 harness
            // can reproduce the paper's callback-dominated reclamation
            // time (§5: 3.75 s "spent almost exclusively in Redis
            // code, invoked via the callback").
            let start = std::time::Instant::now();
            let cost = c.reclaim_cost_ns.load(Ordering::Relaxed);
            if c.reclaim_cost_sleeps.load(Ordering::Relaxed) {
                if cost > 0 {
                    std::thread::sleep(Duration::from_nanos(cost));
                }
            } else {
                while (start.elapsed().as_nanos() as u64) < cost {
                    std::hint::spin_loop();
                }
            }
            let elapsed_ns = start.elapsed().as_nanos() as u64;
            c.callback_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
            c.reclaimed_entries.fetch_add(1, Ordering::Relaxed);
            c.reclaimed_bytes
                .fetch_add((k.len() + v.len()) as u64, Ordering::Relaxed);
            m.callback_ns.record(elapsed_ns);
            m.reclaimed_entries.add(1);
            m.reclaimed_bytes.add((k.len() + v.len()) as u64);
            // Second chance: demote into the cold tier instead of
            // letting the bytes vanish. The tier lock is a leaf, so
            // this is safe under the map's inner lock.
            if let Some(tier) = t.as_ref() {
                tier.demote(k, v);
                m.cold_demotions.add(1);
            }
        });
        let store = Store {
            sma: Arc::clone(sma),
            table,
            counters,
            metrics,
            expiries: Mutex::new(HashMap::new()),
            tier,
            stripes: (0..STRIPES).map(|_| Mutex::new(())).collect(),
        };
        if store.tier.is_some() {
            // Evicting from this SDS loses no data (the value survives
            // compressed), so reclamation should prefer it within its
            // priority class.
            let _ = store.sma.set_demotable(store.table.sds_id(), true);
        }
        store
    }

    /// The stripe guarding `key`'s placement (FNV-1a over the key).
    /// Callers hold it across any take/insert or remove/invalidate
    /// pair; it is never held while acquiring another stripe (except
    /// [`Store::flushall`], which takes all of them in index order).
    fn stripe(&self, key: &[u8]) -> &Mutex<()> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.stripes[(h as usize) % STRIPES]
    }

    /// Removes `key` if its deadline has passed; returns whether it
    /// was expired (lazy expiry, as in Redis).
    fn expire_if_due(&self, key: &[u8]) -> bool {
        let due = {
            let expiries = self.expiries.lock();
            matches!(expiries.get(key), Some(&deadline) if deadline <= Instant::now())
        };
        if due {
            let _placement = self.stripe(key).lock();
            self.expiries.lock().remove(key);
            self.table.remove(&key.to_vec());
            // An expired key's cold copy is stale too — a later GET
            // must not resurrect it from the tier.
            if let Some(tier) = &self.tier {
                tier.invalidate(key);
            }
        }
        due
    }

    /// The store's cold tier, when built with [`Store::with_tier`].
    pub fn tier(&self) -> Option<&Arc<ColdTier>> {
        self.tier.as_ref()
    }

    /// The allocator this store draws soft memory from.
    pub fn sma(&self) -> &Arc<Sma> {
        &self.sma
    }

    /// The store's telemetry registry (label `kv` unless the store was
    /// built with [`Store::with_eviction_labeled`]).
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Re-syncs the occupancy gauges (`keys`, `soft_bytes`,
    /// `soft_pages`) from the table. Reclamation changes the keyspace
    /// behind the store's back, so gauges are refreshed on demand —
    /// call this before snapshotting if point-in-time accuracy
    /// matters (`INFO`/`STATS` do it automatically).
    pub fn refresh_gauges(&self) {
        self.metrics.keys.set(self.table.len() as i64);
        self.metrics.soft_bytes.set(self.table.soft_bytes() as i64);
        self.metrics.soft_pages.set(self.table.soft_pages() as i64);
        if let Some(tier) = &self.tier {
            let t = tier.stats();
            self.metrics.cold_entries.set(t.arena_entries as i64);
            self.metrics.cold_bytes.set(t.arena_bytes as i64);
            self.metrics.spill_entries.set(t.disk_entries as i64);
            self.metrics.spill_bytes.set(t.disk_live_bytes as i64);
            self.metrics.spill_writes.set(t.spill_writes as i64);
            self.metrics.cold_corruptions.set(t.corruptions as i64);
            self.metrics
                .spill_compactions
                .set(t.spill_compactions as i64);
        }
    }

    /// Stores `value` under `key` (overwrites).
    ///
    /// When the soft budget is exhausted (the machine lent the memory
    /// elsewhere), the store behaves like Redis at `maxmemory`: it
    /// evicts a few entries (per its eviction order) to make room and
    /// retries, failing only if even that cannot free a slot.
    pub fn set(&self, key: &[u8], value: &[u8]) -> SoftResult<()> {
        self.counters.sets.fetch_add(1, Ordering::Relaxed);
        self.metrics.sets.add(1);
        let _placement = self.stripe(key).lock();
        self.expiries.lock().remove(key);
        let result = match self.table.insert(key.to_vec(), value.to_vec()) {
            Ok(_) => Ok(()),
            Err(err @ (SoftError::BudgetExceeded { .. } | SoftError::Denied { .. })) => {
                if matches!(
                    err,
                    SoftError::Denied {
                        reason: softmem_core::error::DenyReason::Degraded
                    }
                ) {
                    self.counters
                        .degraded_denies
                        .fetch_add(1, Ordering::Relaxed);
                    self.metrics.degraded_denies.add(1);
                }
                // Make room: shed one page's worth of entries (the
                // granularity at which the allocator can actually
                // return memory).
                if self.table.reclaim_now(4096) == 0 {
                    Err(SoftError::BudgetExceeded {
                        requested_pages: 1,
                        available_pages: 0,
                    })
                } else {
                    self.table.insert(key.to_vec(), value.to_vec()).map(|_| ())
                }
            }
            Err(e) => Err(e),
        };
        if let Some(tier) = &self.tier {
            // Drop the superseded cold copy only once the hot write
            // actually holds the key: a failed SET must leave the
            // previously readable cold value readable, not turn a cold
            // hit into a permanent miss.
            if result.is_ok() {
                tier.invalidate(key);
            }
            // The shed-and-retry path above may have demoted a page of
            // entries; their deferred spill writes happen here, outside
            // the map lock.
            tier.flush();
        }
        result
    }

    /// Fetches the value under `key`; `None` is a miss (absent or
    /// reclaimed).
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let mut buf = Vec::new();
        self.get_into(key, &mut buf).then_some(buf)
    }

    /// Fetches the value under `key` directly into `buf` (appended);
    /// returns whether it was a hit. On a miss `buf` is untouched.
    ///
    /// This is the borrowed-bytes read path: the value is copied
    /// exactly once, from the guarded soft-memory borrow straight into
    /// the caller's buffer — there is no intermediate owned `Vec`, so
    /// reply loops can reuse one buffer across requests. `GET`/`MGET`
    /// rendering routes through here.
    pub fn get_into(&self, key: &[u8], buf: &mut Vec<u8>) -> bool {
        self.expire_if_due(key);
        if self.read_hot(key, buf) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            self.metrics.hits.add(1);
            return true;
        }
        // Second chance: fall through hot → arena → disk. A cold hit
        // serves the caller *and* promotes the value back into the hot
        // table (best-effort — under budget pressure the value is
        // re-demoted rather than lost).
        if let Some(tier) = &self.tier {
            // The stripe makes take→insert atomic with respect to
            // SET/DEL on the same key: without it, a write landing
            // between the two would be overwritten by the stale
            // promoted value (lost update / deleted-key resurrection).
            let _placement = self.stripe(key).lock();
            // Re-check hot under the stripe — a racing promotion or
            // SET may have landed while we waited for it.
            if self.read_hot(key, buf) {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                self.metrics.hits.add(1);
                return true;
            }
            if let Some((value, source)) = tier.take(key) {
                buf.reserve(value.len());
                buf.extend_from_slice(&value);
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                self.metrics.hits.add(1);
                match source {
                    TierHit::Arena => self.metrics.cold_hits.add(1),
                    TierHit::Disk => self.metrics.spill_hits.add(1),
                }
                self.promote(key, value);
                return true;
            }
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        self.metrics.misses.add(1);
        false
    }

    /// Copies the hot value for `key` into `buf`; returns whether it
    /// was there. On a miss `buf` is untouched.
    fn read_hot(&self, key: &[u8], buf: &mut Vec<u8>) -> bool {
        self.table
            .get_with(&key.to_vec(), |v| {
                buf.reserve(v.len());
                buf.extend_from_slice(v);
            })
            .is_some()
    }

    /// Reinserts a promoted value into the hot table, shedding a page
    /// of colder entries and retrying once when the budget is tight.
    /// If even that fails the value goes back to the cold tier — a
    /// promotion may be deferred, but it is never silently dropped.
    /// Runs with the key's stripe held (see [`Store::get_into`]).
    fn promote(&self, key: &[u8], value: Vec<u8>) {
        let tier = self.tier.as_ref().expect("promote requires a tier");
        match self.table.insert(key.to_vec(), value.clone()) {
            Ok(_) => {}
            Err(SoftError::BudgetExceeded { .. } | SoftError::Denied { .. }) => {
                let ok = self.table.reclaim_now(4096) > 0
                    && self.table.insert(key.to_vec(), value.clone()).is_ok();
                if !ok {
                    tier.demote(key, &value);
                    self.metrics.cold_demotions.add(1);
                }
                // The shed (and a failed promotion's re-demotion) may
                // have queued spill work; write it out here, outside
                // the map lock.
                tier.flush();
            }
            Err(_) => {
                tier.demote(key, &value);
                self.metrics.cold_demotions.add(1);
                tier.flush();
            }
        }
    }

    /// Deletes `key`; returns whether it existed (in either tier).
    pub fn del(&self, key: &[u8]) -> bool {
        let _placement = self.stripe(key).lock();
        self.expiries.lock().remove(key);
        let hot = self.table.remove(&key.to_vec()).is_some();
        let cold = match &self.tier {
            Some(tier) => tier.invalidate(key),
            None => false,
        };
        hot || cold
    }

    /// Whether `key` is present (hot or cold — checking the cold tier
    /// does not promote).
    pub fn exists(&self, key: &[u8]) -> bool {
        !self.expire_if_due(key)
            && (self.table.contains_key(&key.to_vec())
                || self.tier.as_ref().is_some_and(|t| t.contains(key)))
    }

    /// Sets a time-to-live on `key`; returns whether the key exists.
    pub fn expire(&self, key: &[u8], ttl: Duration) -> bool {
        if self.expire_if_due(key) || !self.table.contains_key(&key.to_vec()) {
            return false;
        }
        self.expiries
            .lock()
            .insert(key.to_vec(), Instant::now() + ttl);
        true
    }

    /// Clears any expiry on `key`; returns whether one was cleared.
    pub fn persist(&self, key: &[u8]) -> bool {
        !self.expire_if_due(key) && self.expiries.lock().remove(key).is_some()
    }

    /// Queries the remaining time-to-live of `key`.
    pub fn ttl(&self, key: &[u8]) -> Ttl {
        if self.expire_if_due(key) || !self.table.contains_key(&key.to_vec()) {
            return Ttl::NoKey;
        }
        match self.expiries.lock().get(key) {
            Some(&deadline) => Ttl::Remaining(deadline.saturating_duration_since(Instant::now())),
            None => Ttl::NoExpiry,
        }
    }

    /// Atomically increments the integer stored at `key` by `delta`
    /// (missing keys count as 0). Fails if the value is not an
    /// integer.
    pub fn incr_by(&self, key: &[u8], delta: i64) -> Result<i64, String> {
        self.expire_if_due(key);
        let current = match self.table.get_with(&key.to_vec(), |v| v.clone()) {
            Some(v) => std::str::from_utf8(&v)
                .ok()
                .and_then(|s| s.parse::<i64>().ok())
                .ok_or_else(|| "value is not an integer".to_string())?,
            None => 0,
        };
        let next = current
            .checked_add(delta)
            .ok_or_else(|| "increment would overflow".to_string())?;
        self.set(key, next.to_string().as_bytes())
            .map_err(|e| format!("OOM {e}"))?;
        Ok(next)
    }

    /// Stores `value` under `key` only if the key is absent; returns
    /// whether it was stored.
    pub fn setnx(&self, key: &[u8], value: &[u8]) -> SoftResult<bool> {
        self.expire_if_due(key);
        if self.table.contains_key(&key.to_vec()) {
            return Ok(false);
        }
        self.set(key, value)?;
        Ok(true)
    }

    /// Fetches several keys at once (position-matched; `None` = miss).
    pub fn mget<'k>(&self, keys: impl IntoIterator<Item = &'k [u8]>) -> Vec<Option<Vec<u8>>> {
        keys.into_iter().map(|k| self.get(k)).collect()
    }

    /// Appends `suffix` to the value at `key` (creating it if absent);
    /// returns the new length.
    pub fn append(&self, key: &[u8], suffix: &[u8]) -> SoftResult<usize> {
        self.expire_if_due(key);
        let mut value = self
            .table
            .get_with(&key.to_vec(), |v| v.clone())
            .unwrap_or_default();
        value.extend_from_slice(suffix);
        let len = value.len();
        self.set(key, &value)?;
        Ok(len)
    }

    /// Number of live keys.
    pub fn dbsize(&self) -> usize {
        self.table.len()
    }

    /// Drops every key (both tiers).
    pub fn flushall(&self) {
        // Take every stripe (in index order, so concurrent flushes
        // cannot deadlock) so no promotion or write straddles the wipe.
        let _placement: Vec<_> = self.stripes.iter().map(|s| s.lock()).collect();
        self.expiries.lock().clear();
        self.table.clear();
        if let Some(tier) = &self.tier {
            tier.clear();
        }
    }

    /// Collects the keys with the given prefix (empty prefix = all).
    pub fn keys_with_prefix(&self, prefix: &[u8]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        self.table.for_each(|k, _| {
            if k.starts_with(prefix) {
                out.push(k.clone());
            }
        });
        out.sort();
        out
    }

    /// Bytes of soft memory the table holds (entry structs; the
    /// traditional key/value buffers are separate).
    pub fn soft_bytes(&self) -> usize {
        self.table.soft_bytes()
    }

    /// Pages of soft memory attached to the table's heap.
    pub fn soft_pages(&self) -> usize {
        self.table.soft_pages()
    }

    /// Changes the table's reclamation priority.
    pub fn set_priority(&self, priority: Priority) {
        self.table.set_priority(priority);
    }

    /// Manually gives up about `bytes` of soft memory (e.g. a nightly
    /// scale-down), exactly as daemon-driven reclamation would.
    pub fn shed(&self, bytes: usize) -> usize {
        let freed = self.table.reclaim_now(bytes);
        // Demotions queued by the eviction callback get their disk
        // writes now, outside the map lock.
        if let Some(tier) = &self.tier {
            tier.flush();
        }
        freed
    }

    /// Sets the simulated per-entry cleanup cost charged inside the
    /// reclamation callback (models the Redis-side traditional-memory
    /// cleanup that dominated the paper's reclamation time).
    pub fn set_reclaim_cost(&self, per_entry: std::time::Duration) {
        self.counters
            .reclaim_cost_ns
            .store(per_entry.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Chooses how the simulated cleanup cost is charged — CPU
    /// busy-work (default) or an off-CPU sleep (see
    /// [`ReclaimCostModel`]).
    pub fn set_reclaim_cost_model(&self, model: ReclaimCostModel) {
        self.counters
            .reclaim_cost_sleeps
            .store(model == ReclaimCostModel::Sleep, Ordering::Relaxed);
    }

    /// Total time spent inside the reclamation callback so far.
    pub fn callback_time(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.counters.callback_ns.load(Ordering::Relaxed))
    }

    /// Behaviour counters. The `cold_*`/`spill_*` fields read the cold
    /// tier's own counters (ground truth), so the telemetry mirrors
    /// can be certified against them.
    pub fn stats(&self) -> StoreStats {
        let tier = self.tier.as_ref().map(|t| t.stats()).unwrap_or_default();
        StoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            sets: self.counters.sets.load(Ordering::Relaxed),
            reclaimed_entries: self.counters.reclaimed_entries.load(Ordering::Relaxed),
            reclaimed_bytes: self.counters.reclaimed_bytes.load(Ordering::Relaxed),
            degraded_denies: self.counters.degraded_denies.load(Ordering::Relaxed),
            cold_demotions: tier.demotions,
            cold_hits: tier.arena_hits,
            spill_hits: tier.disk_hits,
            spill_writes: tier.spill_writes,
            cold_corruptions: tier.corruptions,
        }
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("keys", &self.dbsize())
            .field("soft_pages", &self.soft_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(budget_pages: usize) -> (Arc<Sma>, Store) {
        let sma = Sma::with_config(
            softmem_core::SmaConfig::for_testing(budget_pages)
                .free_pool_retain(0)
                .sds_retain(0),
        );
        let s = Store::new(&sma, "kv", Priority::new(4));
        (sma, s)
    }

    #[test]
    fn set_get_del_exists() {
        let (_sma, s) = store(256);
        s.set(b"a", b"1").unwrap();
        s.set(b"b", b"2").unwrap();
        assert_eq!(s.get(b"a"), Some(b"1".to_vec()));
        assert!(s.exists(b"b"));
        assert!(!s.exists(b"c"));
        assert!(s.del(b"a"));
        assert!(!s.del(b"a"));
        assert_eq!(s.get(b"a"), None);
        assert_eq!(s.dbsize(), 1);
    }

    #[test]
    fn degraded_denials_are_counted_and_served_locally() {
        // The budget source behaves like a UdsProcess whose daemon is
        // down: every growth attempt fails local with Degraded. The
        // store must keep serving writes from its existing budget by
        // shedding, and the outage must be visible in the counters.
        struct DegradedSource;
        impl softmem_core::BudgetSource for DegradedSource {
            fn grant_more(
                &self,
                _need: usize,
                _want: usize,
            ) -> SoftResult<softmem_core::budget::Grant> {
                Err(SoftError::Denied {
                    reason: softmem_core::error::DenyReason::Degraded,
                })
            }
        }
        let (sma, s) = store(8);
        sma.set_budget_source(Arc::new(DegradedSource));
        // Far more entries than 8 pages can hold: growth is needed,
        // denied as Degraded, and shedding makes the room instead.
        for i in 0..2000u32 {
            s.set(format!("key-{i:06}").as_bytes(), &[7u8; 32])
                .expect("in-budget writes keep working while degraded");
        }
        let stats = s.stats();
        assert!(stats.degraded_denies > 0, "outage was counted");
        assert!(stats.reclaimed_entries > 0, "room came from shedding");
        if softmem_telemetry::ENABLED {
            assert_eq!(s.metrics().degraded_denies.get(), stats.degraded_denies);
        }
        assert!(sma.budget_pages() <= 8, "no growth happened");
    }

    #[test]
    fn get_into_reuses_caller_buffer_and_counts() {
        let (_sma, s) = store(256);
        s.set(b"a", b"alpha").unwrap();
        s.set(b"b", b"beta").unwrap();
        let mut buf = Vec::new();
        assert!(s.get_into(b"a", &mut buf));
        assert_eq!(buf, b"alpha");
        // A miss leaves the buffer untouched (so reply loops can reuse
        // it without clearing on the miss path).
        assert!(!s.get_into(b"missing", &mut buf));
        assert_eq!(buf, b"alpha");
        // Appends — one buffer serves a whole MGET-style reply.
        assert!(s.get_into(b"b", &mut buf));
        assert_eq!(buf, b"alphabeta");
        let st = s.stats();
        assert_eq!((st.hits, st.misses), (2, 1));
    }

    #[test]
    fn overwrite_replaces_value() {
        let (_sma, s) = store(256);
        s.set(b"k", b"old").unwrap();
        s.set(b"k", b"new").unwrap();
        assert_eq!(s.get(b"k"), Some(b"new".to_vec()));
        assert_eq!(s.dbsize(), 1);
    }

    #[test]
    fn keys_with_prefix_sorted() {
        let (_sma, s) = store(256);
        for k in ["user:2", "user:1", "item:9"] {
            s.set(k.as_bytes(), b"x").unwrap();
        }
        assert_eq!(
            s.keys_with_prefix(b"user:"),
            vec![b"user:1".to_vec(), b"user:2".to_vec()]
        );
        assert_eq!(s.keys_with_prefix(b"").len(), 3);
    }

    #[test]
    fn flushall_empties() {
        let (sma, s) = store(256);
        for i in 0..100 {
            s.set(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        s.flushall();
        assert_eq!(s.dbsize(), 0);
        assert_eq!(sma.stats().live_allocs, 0);
    }

    #[test]
    fn reclamation_turns_hits_into_misses() {
        let (sma, s) = store(64);
        // ~1000 small entries.
        for i in 0..1000 {
            s.set(format!("key-{i}").as_bytes(), &[7u8; 32]).unwrap();
        }
        let before = s.dbsize();
        // Demand more than the budget slack so live entries must go.
        let demand = sma.stats().slack_pages() + sma.held_pages() / 2;
        let report = sma.reclaim(demand);
        assert!(report.pages_released() > 0);
        let after = s.dbsize();
        assert!(after < before, "entries were reclaimed");
        let stats = s.stats();
        assert_eq!(stats.reclaimed_entries, (before - after) as u64);
        assert!(stats.reclaimed_bytes > 0);
        // Oldest keys were evicted first (insertion order policy).
        assert_eq!(s.get(b"key-0"), None);
        assert!(s.get(format!("key-{}", before - 1).as_bytes()).is_some());
    }

    #[test]
    fn hit_miss_accounting() {
        let (_sma, s) = store(256);
        s.set(b"a", b"1").unwrap();
        s.get(b"a");
        s.get(b"a");
        s.get(b"nope");
        let st = s.stats();
        assert_eq!(st.hits, 2);
        assert_eq!(st.misses, 1);
        assert_eq!(st.sets, 1);
        assert!((st.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn shed_shrinks_footprint() {
        let (_sma, s) = store(4096);
        for i in 0..5000 {
            s.set(format!("key-{i:05}").as_bytes(), &[1u8; 40]).unwrap();
        }
        let pages_before = s.soft_pages();
        s.shed(s.soft_bytes() / 2);
        assert!(s.soft_pages() < pages_before);
        assert!(s.dbsize() < 5000 && s.dbsize() > 0);
    }

    #[test]
    fn ttl_lazy_expiry() {
        let (_sma, s) = store(64);
        s.set(b"k", b"v").unwrap();
        assert_eq!(s.ttl(b"k"), Ttl::NoExpiry);
        assert!(s.expire(b"k", Duration::from_millis(15)));
        assert!(matches!(s.ttl(b"k"), Ttl::Remaining(_)));
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(s.get(b"k"), None, "lazily expired on access");
        assert_eq!(s.ttl(b"k"), Ttl::NoKey);
        assert!(!s.expire(b"missing", Duration::from_millis(5)));
    }

    #[test]
    fn persist_cancels_expiry_and_set_resets_it() {
        let (_sma, s) = store(64);
        s.set(b"k", b"v").unwrap();
        s.expire(b"k", Duration::from_millis(15));
        assert!(s.persist(b"k"));
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(s.get(b"k"), Some(b"v".to_vec()), "persisted");
        // Overwriting clears a pending expiry too.
        s.expire(b"k", Duration::from_millis(15));
        s.set(b"k", b"v2").unwrap();
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(s.get(b"k"), Some(b"v2".to_vec()));
        assert!(!s.persist(b"k"), "no expiry left to cancel");
    }

    #[test]
    fn incr_semantics() {
        let (_sma, s) = store(64);
        assert_eq!(s.incr_by(b"n", 1).unwrap(), 1, "missing key counts as 0");
        assert_eq!(s.incr_by(b"n", 41).unwrap(), 42);
        assert_eq!(s.incr_by(b"n", -2).unwrap(), 40);
        assert_eq!(s.get(b"n"), Some(b"40".to_vec()));
        s.set(b"text", b"abc").unwrap();
        assert!(s.incr_by(b"text", 1).is_err());
        s.set(b"max", i64::MAX.to_string().as_bytes()).unwrap();
        assert!(s.incr_by(b"max", 1).is_err(), "overflow rejected");
    }

    #[test]
    fn setnx_and_mget() {
        let (_sma, s) = store(64);
        assert!(s.setnx(b"k", b"first").unwrap());
        assert!(!s.setnx(b"k", b"second").unwrap());
        assert_eq!(s.get(b"k"), Some(b"first".to_vec()));
        s.set(b"other", b"x").unwrap();
        let got = s.mget([b"k".as_slice(), b"missing", b"other"]);
        assert_eq!(
            got,
            vec![Some(b"first".to_vec()), None, Some(b"x".to_vec())]
        );
        // SETNX respects expiry: an expired key counts as absent.
        s.expire(b"k", Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(20));
        assert!(s.setnx(b"k", b"reborn").unwrap());
    }

    #[test]
    fn append_semantics() {
        let (_sma, s) = store(64);
        assert_eq!(s.append(b"k", b"hello").unwrap(), 5);
        assert_eq!(s.append(b"k", b" world").unwrap(), 11);
        assert_eq!(s.get(b"k"), Some(b"hello world".to_vec()));
    }

    fn tiered_store(
        budget_pages: usize,
        spill: Option<std::path::PathBuf>,
        arena_cap: usize,
    ) -> (Arc<Sma>, Store) {
        let sma = Sma::with_config(
            softmem_core::SmaConfig::for_testing(budget_pages)
                .free_pool_retain(0)
                .sds_retain(0),
        );
        let tier = Arc::new(
            ColdTier::new(softmem_core::TierConfig {
                arena_cap_bytes: arena_cap,
                segment_bytes: 4096,
                spill_path: spill,
            })
            .unwrap(),
        );
        let s = Store::with_tier(
            &sma,
            "kv",
            Priority::new(4),
            EvictionOrder::InsertionOrder,
            "kv",
            tier,
        );
        (sma, s)
    }

    fn temp_spill(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("softmem-store-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn tiered_store_turns_reclaimed_keys_into_cold_hits() {
        let (sma, s) = tiered_store(64, None, 1 << 20);
        for i in 0..1000 {
            s.set(format!("key-{i}").as_bytes(), &[7u8; 32]).unwrap();
        }
        let before = s.dbsize();
        let demand = sma.stats().slack_pages() + sma.held_pages() / 2;
        sma.reclaim(demand);
        let after = s.dbsize();
        assert!(after < before, "reclamation evicted entries");
        let st = s.stats();
        assert_eq!(
            st.cold_demotions, st.reclaimed_entries,
            "every eviction must demote"
        );
        // The oldest key was evicted — with a plain store this is a
        // miss (reclamation_turns_hits_into_misses); with the tier it
        // is a hit served from the arena and promoted back hot.
        assert_eq!(s.get(b"key-0"), Some(vec![7u8; 32]));
        let st = s.stats();
        assert!(st.cold_hits >= 1, "{st:?}");
        assert!(s.soft_bytes() > 0);
        // Promotion moved it hot: a second GET is a plain hot hit.
        let cold_hits_before = st.cold_hits;
        assert_eq!(s.get(b"key-0"), Some(vec![7u8; 32]));
        assert_eq!(s.stats().cold_hits, cold_hits_before);
        assert!(s.tier().unwrap().audit().is_empty());
    }

    #[test]
    fn tiered_store_spills_under_arena_pressure() {
        let path = temp_spill("spill");
        // Tiny arena cap so demotions overflow to disk quickly.
        let (sma, s) = tiered_store(48, Some(path.clone()), 8192);
        // Values must be incompressible-ish so the arena cap bites:
        // use the key index to vary bytes.
        for i in 0..1500u32 {
            let val: Vec<u8> = (0..48u32).map(|j| (i * 131 + j * 29) as u8).collect();
            s.set(format!("key-{i}").as_bytes(), &val).unwrap();
        }
        let demand = sma.stats().slack_pages() + sma.held_pages() / 2;
        sma.reclaim(demand);
        let st = s.stats();
        assert!(st.cold_demotions > 0);
        assert!(st.spill_writes > 0, "arena never overflowed: {st:?}");
        assert!(path.exists(), "spill log on disk");
        // Find a key that is actually on disk and promote it.
        let tier_stats = s.tier().unwrap().stats();
        assert!(tier_stats.disk_entries > 0);
        let mut disk_promotions = 0;
        for i in 0..1500u32 {
            let key = format!("key-{i}");
            if s.get(key.as_bytes()).is_some() {
                let now = s.stats();
                if now.spill_hits > disk_promotions {
                    disk_promotions = now.spill_hits;
                    let expect: Vec<u8> = (0..48u32).map(|j| (i * 131 + j * 29) as u8).collect();
                    assert_eq!(s.get(key.as_bytes()), Some(expect), "byte-identical");
                }
            }
            if disk_promotions > 4 {
                break;
            }
        }
        assert!(disk_promotions > 0, "no spill hit observed");
        assert!(s.tier().unwrap().audit().is_empty());
        drop(s);
        assert!(!path.exists(), "spill log removed on drop");
    }

    #[test]
    fn tiered_store_set_del_expire_invalidate_cold_copies() {
        let (sma, s) = tiered_store(64, None, 1 << 20);
        for i in 0..1000 {
            s.set(format!("key-{i}").as_bytes(), &[7u8; 32]).unwrap();
        }
        let demand = sma.stats().slack_pages() + sma.held_pages() / 2;
        sma.reclaim(demand);
        let tier = Arc::clone(s.tier().unwrap());
        assert!(tier.contains(b"key-0"), "oldest key demoted");
        // SET supersedes the cold copy.
        s.set(b"key-0", b"fresh").unwrap();
        assert!(!tier.contains(b"key-0"));
        assert_eq!(s.get(b"key-0"), Some(b"fresh".to_vec()));
        // DEL removes a cold-only key.
        assert!(tier.contains(b"key-1"));
        assert!(s.del(b"key-1"), "cold-only key still deletable");
        assert!(!tier.contains(b"key-1"));
        assert_eq!(s.get(b"key-1"), None);
        // EXISTS sees cold keys without promoting them.
        assert!(tier.contains(b"key-2"));
        let hits_before = s.stats().cold_hits;
        assert!(s.exists(b"key-2"));
        assert_eq!(s.stats().cold_hits, hits_before, "EXISTS must not promote");
        assert!(tier.contains(b"key-2"));
        // FLUSHALL empties both tiers.
        s.flushall();
        assert_eq!(s.dbsize(), 0);
        assert_eq!(tier.stats().arena_entries + tier.stats().disk_entries, 0);
        assert!(tier.audit().is_empty(), "{:?}", tier.audit());
    }

    #[test]
    fn tiered_store_corruption_is_a_clean_miss() {
        let (sma, s) = tiered_store(64, None, 1 << 20);
        for i in 0..1000 {
            s.set(format!("key-{i}").as_bytes(), &[0x5A; 32]).unwrap();
        }
        let demand = sma.stats().slack_pages() + sma.held_pages() / 2;
        sma.reclaim(demand);
        let tier = Arc::clone(s.tier().unwrap());
        assert!(tier.stats().arena_entries > 0);
        assert!(tier.corrupt_arena(0xBAD_5EED, 512) > 0);
        let mut misses = 0;
        for i in 0..1000 {
            match s.get(format!("key-{i}").as_bytes()) {
                None => misses += 1,
                Some(v) => assert!(
                    v.iter().all(|&b| b == 0x5A),
                    "torn data served from corrupt tier"
                ),
            }
        }
        assert!(misses > 0, "corruption never surfaced");
        let st = s.stats();
        assert!(st.cold_corruptions > 0, "{st:?}");
        assert!(tier.audit().is_empty(), "{:?}", tier.audit());
        if softmem_telemetry::ENABLED {
            s.refresh_gauges();
            assert_eq!(
                s.metrics().cold_corruptions.get(),
                st.cold_corruptions as i64
            );
            assert_eq!(s.metrics().cold_demotions.get(), st.cold_demotions);
            assert_eq!(s.metrics().cold_hits.get(), st.cold_hits);
        }
    }

    #[test]
    fn deleted_key_is_never_resurrected_by_promotion() {
        // The promotion race the key stripes close: a GET finds the key
        // cold, takes it from the tier, and a DEL lands before the hot
        // reinsert. Unserialized, the promote would overwrite the
        // delete and the key would live forever. Run the pair under a
        // barrier many times — the key must be gone every time.
        let (_sma, s) = tiered_store(64, None, 1 << 20);
        for round in 0..50u32 {
            let key = format!("race-{round}");
            s.set(key.as_bytes(), &[9u8; 64]).unwrap();
            // Push it cold so the GET goes down the promotion path.
            s.shed(s.soft_bytes() + 4096);
            assert!(
                s.tier().unwrap().contains(key.as_bytes()),
                "key never went cold"
            );
            let barrier = std::sync::Barrier::new(2);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    barrier.wait();
                    let _ = s.get(key.as_bytes());
                });
                scope.spawn(|| {
                    barrier.wait();
                    s.del(key.as_bytes());
                });
            });
            assert_eq!(
                s.get(key.as_bytes()),
                None,
                "deleted key resurrected by a racing promotion"
            );
            assert!(!s.exists(key.as_bytes()));
        }
        assert!(s.tier().unwrap().audit().is_empty());
    }

    #[test]
    fn failed_set_keeps_cold_copy_readable() {
        // A SET that cannot get a hot slot must not destroy the cold
        // copy it meant to supersede: invalidation happens only after
        // the hot insert succeeds.
        struct DegradedSource;
        impl softmem_core::BudgetSource for DegradedSource {
            fn grant_more(
                &self,
                _need: usize,
                _want: usize,
            ) -> SoftResult<softmem_core::budget::Grant> {
                Err(SoftError::Denied {
                    reason: softmem_core::error::DenyReason::Degraded,
                })
            }
        }
        let sma = Sma::with_config(
            softmem_core::SmaConfig::for_testing(8)
                .free_pool_retain(0)
                .sds_retain(0),
        );
        sma.set_budget_source(Arc::new(DegradedSource));
        let tier = Arc::new(
            ColdTier::new(softmem_core::TierConfig {
                arena_cap_bytes: 1 << 20,
                segment_bytes: 4096,
                spill_path: None,
            })
            .unwrap(),
        );
        let s = Store::with_tier(
            &sma,
            "kv",
            Priority::new(4),
            EvictionOrder::InsertionOrder,
            "kv",
            Arc::clone(&tier),
        );
        s.set(b"victim", b"precious cold bytes").unwrap();
        // Demote everything, then let a sibling store starve the pool
        // so the next insert has nowhere to get a slot from.
        s.shed(s.soft_bytes() + 4096);
        assert!(tier.contains(b"victim"), "value never went cold");
        let hog = Store::new(&sma, "hog", Priority::new(4));
        for i in 0..2000u32 {
            hog.set(format!("hog-{i:06}").as_bytes(), &[7u8; 32])
                .expect("hog rides out the degraded budget by shedding");
        }
        let err = s
            .set(b"victim", b"replacement")
            .expect_err("no free page, no grant, nothing of its own to shed — this SET must fail");
        assert!(matches!(err, SoftError::BudgetExceeded { .. }), "{err:?}");
        // The failed SET left the old cold value untouched and readable.
        assert!(
            tier.contains(b"victim"),
            "failed SET destroyed the cold copy"
        );
        assert_eq!(
            s.get(b"victim"),
            Some(b"precious cold bytes".to_vec()),
            "cold value must survive a failed overwrite"
        );
    }

    #[test]
    fn paper_scale_130k_pairs_roughly_10mib() {
        // §5: "130K key-value pairs all allocated in soft memory
        // (10 MiB total)". Our entries are Vec-header structs in soft
        // memory (64 B class): 130 K × 64 B ≈ 8 MiB of slots plus the
        // order index — same order of magnitude; the bench harness
        // sizes values so the *total* footprint matches 10 MiB.
        let (sma, s) = store(1 << 16);
        for i in 0..13_000 {
            // scaled 10× down for test speed
            s.set(format!("key-{i:06}").as_bytes(), &[0u8; 16]).unwrap();
        }
        assert_eq!(s.dbsize(), 13_000);
        assert!(sma.held_pages() > 0);
    }
}
