//! Servers: a shard-routing command engine and a TCP front-end.
//!
//! Redis is single-threaded per engine; we mirror that *per shard*.
//! Each shard of the [`ShardedStore`] gets one worker thread that owns
//! command execution for its slice of the keyspace, fed by its own
//! channel. A thin router ([`KvHandle`]) parses each request line,
//! hash-routes single-key commands to the owning shard, and fans out /
//! merges cross-shard ones (`MGET`, `KEYS`, `DBSIZE`, `FLUSHALL`,
//! `SHED`). `INFO` and `STATS` are answered router-side from the
//! engine's aggregated view. A one-shard server is exactly the old
//! single-worker server: every command short-circuits to shard 0, so
//! protocol semantics are unchanged.
//!
//! TCP connection threads call straight into the router — there is no
//! global submission queue to serialize behind, so two connections
//! touching different shards proceed concurrently even while a third
//! shard is being squeezed by the reclamation daemon.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;

use crate::protocol::{Command, Response};
use crate::sharded::ShardedStore;
use crate::store::Store;

enum ShardReq {
    Exec(Command, Sender<Response>),
    Stop,
}

/// The routing core shared by every [`KvHandle`]: the engine plus one
/// submission queue per shard worker.
struct RouterInner {
    engine: Arc<ShardedStore>,
    shards: Vec<Sender<ShardReq>>,
}

/// The key a command routes by, when it has exactly one (the single
/// source of truth is [`crate::protocol::CommandRef::routing_key`],
/// which the reactor's frame-level fast path mirrors).
fn routing_key(cmd: &Command) -> Option<&[u8]> {
    cmd.as_ref().routing_key()
}

impl RouterInner {
    /// Runs `cmd` on one shard's worker and waits for the reply.
    fn exec_on(&self, shard: usize, cmd: Command) -> Result<Response, String> {
        let (tx, rx) = bounded(1);
        self.shards[shard]
            .send(ShardReq::Exec(cmd, tx))
            .map_err(|_| "server stopped".to_string())?;
        rx.recv().map_err(|_| "server stopped".to_string())
    }

    /// Submits every `(shard, cmd)` pair before collecting any reply,
    /// so shard workers execute their slices concurrently; replies
    /// come back in submission order.
    fn fan_out(&self, cmds: Vec<(usize, Command)>) -> Result<Vec<Response>, String> {
        let mut pending = Vec::with_capacity(cmds.len());
        for (shard, cmd) in cmds {
            let (tx, rx) = bounded(1);
            self.shards[shard]
                .send(ShardReq::Exec(cmd, tx))
                .map_err(|_| "server stopped".to_string())?;
            pending.push(rx);
        }
        pending
            .into_iter()
            .map(|rx| rx.recv().map_err(|_| "server stopped".to_string()))
            .collect()
    }

    fn dispatch(&self, cmd: Command) -> Result<Response, String> {
        let n = self.shards.len();
        if n == 1 {
            // The unsharded fast path: one worker owns everything, and
            // every command — including cross-shard verbs — executes
            // exactly as the pre-sharding server did.
            return self.exec_on(0, cmd);
        }
        match cmd {
            c @ (Command::Set { .. }
            | Command::Get { .. }
            | Command::Del { .. }
            | Command::Exists { .. }
            | Command::IncrBy { .. }
            | Command::Append { .. }
            | Command::PExpire { .. }
            | Command::PTtl { .. }
            | Command::Persist { .. }
            | Command::SetNx { .. }) => {
                let shard = self
                    .engine
                    .shard_of(routing_key(&c).expect("single-key command"));
                self.exec_on(shard, c)
            }
            // PING measures one engine round trip, not a fan-out.
            Command::Ping => self.exec_on(0, Command::Ping),
            Command::DbSize => {
                let replies = self.fan_out((0..n).map(|i| (i, Command::DbSize)).collect())?;
                let mut total = 0i64;
                for r in replies {
                    match r {
                        Response::Int(k) => total += k,
                        other => return Ok(other),
                    }
                }
                Ok(Response::Int(total))
            }
            Command::FlushAll => {
                for r in self.fan_out((0..n).map(|i| (i, Command::FlushAll)).collect())? {
                    if let Response::Error(_) = r {
                        return Ok(r);
                    }
                }
                Ok(Response::Ok("OK".into()))
            }
            Command::Keys { prefix } => {
                let replies = self.fan_out(
                    (0..n)
                        .map(|i| {
                            (
                                i,
                                Command::Keys {
                                    prefix: prefix.clone(),
                                },
                            )
                        })
                        .collect(),
                )?;
                let mut keys = Vec::new();
                for r in replies {
                    match r {
                        Response::Array(mut ks) => keys.append(&mut ks),
                        other => return Ok(other),
                    }
                }
                // Globally sorted so the reply is shard-count
                // independent (each shard already returns sorted).
                keys.sort();
                Ok(Response::Array(keys))
            }
            Command::Shed { bytes } => {
                let per = bytes.div_ceil(n);
                let replies =
                    self.fan_out((0..n).map(|i| (i, Command::Shed { bytes: per })).collect())?;
                let mut freed = 0i64;
                for r in replies {
                    match r {
                        Response::Int(k) => freed += k,
                        other => return Ok(other),
                    }
                }
                Ok(Response::Int(freed))
            }
            Command::MGet { keys } => {
                // Split the key list per shard (each shard visited
                // once), then stitch replies back into request order.
                let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
                for (i, k) in keys.iter().enumerate() {
                    per_shard[self.engine.shard_of(k)].push(i);
                }
                let mut cmds = Vec::new();
                let mut groups = Vec::new();
                for (shard, idxs) in per_shard.into_iter().enumerate() {
                    if idxs.is_empty() {
                        continue;
                    }
                    cmds.push((
                        shard,
                        Command::MGet {
                            keys: idxs.iter().map(|&i| keys[i].clone()).collect(),
                        },
                    ));
                    groups.push(idxs);
                }
                let replies = self.fan_out(cmds)?;
                let mut out = vec![b"(nil)".to_vec(); keys.len()];
                for (idxs, reply) in groups.into_iter().zip(replies) {
                    match reply {
                        Response::Array(vals) => {
                            for (i, v) in idxs.into_iter().zip(vals) {
                                out[i] = v;
                            }
                        }
                        other => return Ok(other),
                    }
                }
                Ok(Response::Array(out))
            }
            // Aggregated machine view, rendered router-side.
            Command::Info => Ok(Response::Bulk(Some(self.engine.info_string().into_bytes()))),
            Command::Stats => Ok(Response::Bulk(Some(self.engine.stats_json().into_bytes()))),
            Command::Shutdown => {
                // Every worker acknowledges and exits; later requests
                // fail with "server stopped".
                let _ = self.fan_out((0..n).map(|i| (i, Command::Shutdown)).collect())?;
                Ok(Response::Ok("OK".into()))
            }
        }
    }
}

/// An in-process KV server: one worker thread per shard, each
/// executing commands sequentially against its own [`Store`].
pub struct KvServer {
    inner: Arc<RouterInner>,
    workers: Vec<JoinHandle<()>>,
}

impl KvServer {
    /// Starts a one-shard server over `store` — the classic
    /// single-threaded engine, protocol-identical to the pre-sharding
    /// stack.
    pub fn start(store: Store) -> Self {
        Self::start_sharded(ShardedStore::from_single(store))
    }

    /// Starts one worker per shard of `engine`.
    pub fn start_sharded(engine: ShardedStore) -> Self {
        let engine = Arc::new(engine);
        let mut shards = Vec::with_capacity(engine.shard_count());
        let mut workers = Vec::with_capacity(engine.shard_count());
        for (i, store) in engine.shards().iter().enumerate() {
            let (tx, rx) = unbounded::<ShardReq>();
            let store = Arc::clone(store);
            let worker = std::thread::Builder::new()
                .name(format!("softmem-kv-{i}"))
                .spawn(move || {
                    while let Ok(req) = rx.recv() {
                        match req {
                            ShardReq::Exec(cmd, reply) => {
                                let stop = matches!(cmd, Command::Shutdown);
                                let resp = if stop {
                                    Response::Ok("OK".into())
                                } else {
                                    cmd.execute(&store)
                                };
                                let _ = reply.send(resp);
                                if stop {
                                    break;
                                }
                            }
                            ShardReq::Stop => break,
                        }
                    }
                })
                .expect("spawn kv shard worker");
            shards.push(tx);
            workers.push(worker);
        }
        KvServer {
            inner: Arc::new(RouterInner { engine, shards }),
            workers,
        }
    }

    /// A client handle to this server.
    pub fn handle(&self) -> KvHandle {
        KvHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Shard 0's store — the whole keyspace for an unsharded server
    /// (metrics sampling; what the Figure-2 timeline recorder uses).
    pub fn store(&self) -> &Arc<Store> {
        self.inner.engine.shard(0)
    }

    /// The sharded engine behind this server.
    pub fn engine(&self) -> &Arc<ShardedStore> {
        &self.inner.engine
    }

    /// Stops every shard worker.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.inner.shards {
            let _ = tx.send(ShardReq::Stop);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// An in-process client handle: parses, routes, and merges.
#[derive(Clone)]
pub struct KvHandle {
    inner: Arc<RouterInner>,
}

impl KvHandle {
    /// Sends one raw protocol line; returns the reply. Parse failures
    /// come back as `Ok(Response::Error(..))` — the `Err` branch means
    /// the server itself has stopped.
    pub fn request(&self, line: &str) -> Result<Response, String> {
        match Command::parse(line) {
            Ok(cmd) => self.inner.dispatch(cmd),
            Err(msg) => Ok(Response::Error(msg)),
        }
    }

    /// `SET key value`.
    pub fn set(&self, key: &str, value: &str) -> Result<(), String> {
        match self.request(&format!("SET {key} {value}"))? {
            Response::Ok(_) => Ok(()),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }

    /// `GET key` (None = miss).
    pub fn get(&self, key: &str) -> Result<Option<Vec<u8>>, String> {
        match self.request(&format!("GET {key}"))? {
            Response::Bulk(v) => Ok(v),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }

    /// `DEL key`; whether the key existed.
    pub fn del(&self, key: &str) -> Result<bool, String> {
        match self.request(&format!("DEL {key}"))? {
            Response::Int(n) => Ok(n == 1),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }

    /// `DBSIZE`.
    pub fn dbsize(&self) -> Result<usize, String> {
        match self.request("DBSIZE")? {
            Response::Int(n) => Ok(n as usize),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }
}

/// Tuning knobs for a [`TcpFrontend`]. `Default` reproduces the
/// classic behaviour: block forever on a silent client, write straight
/// to the socket.
#[derive(Clone, Default)]
pub struct FrontendOpts {
    /// Close a connection that sends no complete request for this long
    /// (counted in [`thread_idle_closes_total`]). `None` blocks forever
    /// — the legacy shape, where one silent client pins one thread for
    /// the lifetime of the process.
    pub idle_timeout: Option<Duration>,
    /// Route reply writes through a [`crate::reactor::SysIo`] shim so
    /// the fault harness can inject short writes and transient errors
    /// on this frontend too.
    #[cfg(target_os = "linux")]
    pub io: Option<Arc<dyn crate::reactor::SysIo>>,
}

/// State shared between a [`TcpFrontend`] and its accept loop: the
/// stop flag plus one stream clone per live connection, so `Drop` can
/// unblock readers parked in `read_line`.
struct FrontendShared {
    stop: AtomicBool,
    conns: Mutex<HashMap<u64, TcpStream>>,
}

/// A TCP front-end whose connection threads call the router directly.
///
/// Dropping the front-end is a clean shutdown: in-flight connections
/// have their sockets shut down (unparking blocked reads), the accept
/// loop is woken and joins every connection thread, and `Drop` joins
/// the accept thread — no threads outlive the front-end.
pub struct TcpFrontend {
    addr: SocketAddr,
    shared: Arc<FrontendShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpFrontend {
    /// Binds `127.0.0.1:0` (ephemeral port) and serves `handle` with
    /// default options.
    pub fn bind(handle: KvHandle) -> std::io::Result<Self> {
        Self::bind_with("127.0.0.1:0", handle, FrontendOpts::default())
    }

    /// Binds `addr` and serves `handle` with explicit [`FrontendOpts`].
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        handle: KvHandle,
        opts: FrontendOpts,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(FrontendShared {
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("softmem-kv-tcp".into())
            .spawn(move || {
                let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
                for (id, stream) in (0u64..).zip(listener.incoming()) {
                    if accept_shared.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { break };
                    // Reap connection threads that already finished so
                    // a long-lived front-end doesn't accumulate them.
                    let (done, running): (Vec<_>, Vec<_>) =
                        conn_threads.drain(..).partition(|t| t.is_finished());
                    conn_threads = running;
                    for t in done {
                        let _ = t.join();
                    }
                    if let Ok(clone) = stream.try_clone() {
                        accept_shared.conns.lock().insert(id, clone);
                    }
                    let handle = handle.clone();
                    let opts = opts.clone();
                    let conn_shared = Arc::clone(&accept_shared);
                    let spawned = std::thread::Builder::new()
                        .name("softmem-kv-conn".into())
                        .spawn(move || {
                            serve_connection(stream, handle, opts);
                            conn_shared.conns.lock().remove(&id);
                        });
                    if let Ok(t) = spawned {
                        conn_threads.push(t);
                    }
                }
                // Drop's socket shutdowns have unparked any blocked
                // readers, so these joins are bounded.
                for t in conn_threads {
                    let _ = t.join();
                }
            })?;
        Ok(TcpFrontend {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for TcpFrontend {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Unblock every in-flight connection thread parked in a read.
        for (_, stream) in self.shared.conns.lock().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Wake the accept loop; it observes the flag, joins its
        // connection threads, and exits.
        drop(TcpStream::connect(self.addr));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Short (partial) writes observed on the thread-frontend reply path
/// — each one is a slow client whose socket buffer filled mid-reply.
static REPLY_SHORT_WRITES: AtomicU64 = AtomicU64::new(0);

/// How many reply writes on the thread-per-connection path returned
/// short and had to loop (backpressure accounting; process-wide).
pub fn reply_short_writes_total() -> u64 {
    REPLY_SHORT_WRITES.load(Ordering::Relaxed)
}

/// Idle-deadline evictions on the thread-per-connection frontend.
static THREAD_IDLE_CLOSES: AtomicU64 = AtomicU64::new(0);

/// How many thread-frontend connections were closed by the idle
/// deadline ([`FrontendOpts::idle_timeout`]; process-wide).
pub fn thread_idle_closes_total() -> u64 {
    THREAD_IDLE_CLOSES.load(Ordering::Relaxed)
}

/// Writes a complete reply frame, looping explicitly on short writes.
///
/// `write_all` also loops, but silently: a slow client backs the
/// writer up with no trace, and an `Ok(0)` from a half-dead socket
/// would spin forever upstreams that retry. This loop counts every
/// short write into [`reply_short_writes_total`] (the legacy
/// frontend's only backpressure signal — the reactor path has real
/// pause/resume machinery instead), treats `Ok(0)` as a dead peer,
/// and retries `Interrupted` and `WouldBlock`. Either the whole frame
/// is written or an error is returned — a truncated reply frame is
/// never left behind on a live socket.
///
/// The `WouldBlock` retry is safe here because this frontend's sockets
/// are blocking — a real `EAGAIN` cannot occur, only a transient one
/// injected by a fault-plane [`crate::reactor::SysIo`] shim.
pub fn write_reply(writer: &mut impl Write, frame: &[u8]) -> std::io::Result<()> {
    let mut written = 0usize;
    while written < frame.len() {
        match writer.write(&frame[written..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "peer stopped accepting reply bytes",
                ));
            }
            Ok(n) => {
                written += n;
                if written < frame.len() {
                    REPLY_SHORT_WRITES.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock
                ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads the next *complete* protocol frame into `buf` (terminator
/// stripped). Returns `false` on EOF, I/O error, or a truncated final
/// line: a frame is only complete once its newline arrives, and a peer
/// that died mid-write must not have its half frame interpreted —
/// executing `SET k 10` out of a truncated `SET k 1000` would silently
/// corrupt data.
pub fn read_frame(reader: &mut impl BufRead, buf: &mut String) -> bool {
    read_frame_io(reader, buf).unwrap_or(false)
}

/// [`read_frame`], but with the I/O error surfaced so callers with a
/// read deadline can tell *idle* (`WouldBlock`/`TimedOut`) apart from
/// a dead peer. `Ok(false)` is EOF or a truncated final line.
pub fn read_frame_io(reader: &mut impl BufRead, buf: &mut String) -> std::io::Result<bool> {
    buf.clear();
    if reader.read_line(buf)? == 0 {
        return Ok(false);
    }
    if !buf.ends_with('\n') {
        return Ok(false);
    }
    while buf.ends_with(['\r', '\n']) {
        buf.pop();
    }
    Ok(true)
}

/// Reply writes go through a [`crate::reactor::SysIo`] shim when the
/// frontend is configured with one, so chaos campaigns can storm this
/// path with short writes and transient errors too.
#[cfg(target_os = "linux")]
struct SysIoWriter {
    io: Arc<dyn crate::reactor::SysIo>,
    stream: TcpStream,
}

#[cfg(target_os = "linux")]
impl Write for SysIoWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.io.write(&self.stream, buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn serve_connection(stream: TcpStream, handle: KvHandle, opts: FrontendOpts) {
    // Request/response protocol: disable Nagle so replies are not
    // held back waiting for the client's delayed ACK.
    let _ = stream.set_nodelay(true);
    // The idle deadline rides on the socket read timeout: a connection
    // that produces no request for the bound is evicted instead of
    // pinning its thread forever.
    if let Some(t) = opts.idle_timeout {
        let _ = stream.set_read_timeout(Some(t));
    }
    let writer_stream = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    #[cfg(target_os = "linux")]
    let mut writer: Box<dyn Write> = match &opts.io {
        Some(io) => Box::new(SysIoWriter {
            io: Arc::clone(io),
            stream: writer_stream,
        }),
        None => Box::new(writer_stream),
    };
    #[cfg(not(target_os = "linux"))]
    let mut writer: Box<dyn Write> = Box::new(writer_stream);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_frame_io(&mut reader, &mut line) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                THREAD_IDLE_CLOSES.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(_) => break,
        }
        if line.is_empty() {
            continue;
        }
        let reply = match handle.request(&line) {
            Ok(resp) => resp.encode(),
            Err(msg) => Response::Error(msg).encode(),
        };
        if write_reply(&mut writer, reply.as_bytes()).is_err() {
            break;
        }
        if line.eq_ignore_ascii_case("shutdown") {
            break;
        }
    }
}

/// A blocking TCP client for the line protocol.
pub struct TcpKvClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpKvClient {
    /// Connects to a [`TcpFrontend`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(TcpKvClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one line, reads one reply (INFO and arrays read
    /// additional lines as indicated by the reply header).
    pub fn request(&mut self, line: &str) -> std::io::Result<Response> {
        // One write per request (line + terminator): with Nagle off
        // this is one packet, one reply.
        let mut msg = String::with_capacity(line.len() + 1);
        msg.push_str(line);
        msg.push('\n');
        self.writer.write_all(msg.as_bytes())?;
        self.read_reply()
    }

    /// Sends every non-empty line in one write, then reads the replies
    /// in order — the pipelining mode `kv_cli --pipeline` uses to
    /// amortize round trips. Empty lines are skipped (the server never
    /// answers them), so replies match the returned vector exactly.
    pub fn request_pipeline<S: AsRef<str>>(
        &mut self,
        lines: &[S],
    ) -> std::io::Result<Vec<Response>> {
        let mut batch = String::new();
        let mut expected = 0usize;
        for line in lines {
            let line = line.as_ref();
            if line.trim().is_empty() {
                continue;
            }
            batch.push_str(line);
            batch.push('\n');
            expected += 1;
        }
        if expected == 0 {
            return Ok(Vec::new());
        }
        self.writer.write_all(batch.as_bytes())?;
        (0..expected).map(|_| self.read_reply()).collect()
    }

    /// Reads one complete reply frame (header line plus any array
    /// elements it announces).
    fn read_reply(&mut self) -> std::io::Result<Response> {
        let mut first = String::new();
        self.reader.read_line(&mut first)?;
        let mut text = first.clone();
        if let Some(rest) = first.strip_prefix('*') {
            let n: usize = rest.trim().parse().unwrap_or(0);
            for _ in 0..n {
                let mut item = String::new();
                self.reader.read_line(&mut item)?;
                text.push_str(&item);
            }
        }
        Response::decode(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmem_core::{Priority, Sma};

    fn server() -> (Arc<Sma>, KvServer) {
        let sma = Sma::standalone(512);
        let store = Store::new(&sma, "kv", Priority::default());
        (sma, KvServer::start(store))
    }

    fn sharded_server(shards: usize) -> (Arc<Sma>, KvServer) {
        let sma = Sma::standalone(1024);
        let engine = ShardedStore::new(&sma, "kv", Priority::default(), shards);
        (sma, KvServer::start_sharded(engine))
    }

    #[test]
    fn inproc_roundtrip() {
        let (_sma, server) = server();
        let h = server.handle();
        h.set("a", "hello world").unwrap();
        assert_eq!(h.get("a").unwrap(), Some(b"hello world".to_vec()));
        assert_eq!(h.get("missing").unwrap(), None);
        assert!(h.del("a").unwrap());
        assert_eq!(h.dbsize().unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn protocol_errors_are_reported() {
        let (_sma, server) = server();
        let h = server.handle();
        match h.request("WAT").unwrap() {
            Response::Error(msg) => assert!(msg.contains("unknown command")),
            other => panic!("expected error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn store_metrics_visible_while_serving() {
        let (_sma, server) = server();
        let h = server.handle();
        for i in 0..50 {
            h.set(&format!("k{i}"), "v").unwrap();
        }
        assert_eq!(server.store().dbsize(), 50);
        assert!(server.store().soft_pages() > 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_command_stops_worker() {
        let (_sma, server) = server();
        let h = server.handle();
        assert_eq!(h.request("SHUTDOWN").unwrap(), Response::Ok("OK".into()));
        assert!(h.request("PING").is_err());
    }

    #[test]
    fn sharded_roundtrip_and_merges() {
        let (_sma, server) = sharded_server(4);
        let h = server.handle();
        for i in 0..40 {
            h.set(&format!("user:{i}"), &format!("u{i}")).unwrap();
        }
        assert_eq!(h.dbsize().unwrap(), 40);
        assert_eq!(h.get("user:7").unwrap(), Some(b"u7".to_vec()));
        // MGET spans shards and preserves request order.
        assert_eq!(
            h.request("MGET user:1 nope user:39").unwrap(),
            Response::Array(vec![b"u1".to_vec(), b"(nil)".to_vec(), b"u39".to_vec()])
        );
        // KEYS merges sorted across shards.
        match h.request("KEYS user:3").unwrap() {
            Response::Array(keys) => {
                let want: Vec<Vec<u8>> = [
                    "user:3", "user:30", "user:31", "user:32", "user:33", "user:34", "user:35",
                    "user:36", "user:37", "user:38", "user:39",
                ]
                .iter()
                .map(|s| s.as_bytes().to_vec())
                .collect();
                assert_eq!(keys, want);
            }
            other => panic!("expected array, got {other:?}"),
        }
        // INCR routes consistently: the counter lives on one shard.
        assert_eq!(h.request("INCR hits").unwrap(), Response::Int(1));
        assert_eq!(h.request("INCR hits").unwrap(), Response::Int(2));
        // INFO/STATS render the aggregated machine view.
        match h.request("INFO").unwrap() {
            Response::Bulk(Some(text)) => {
                let text = String::from_utf8(text).unwrap();
                assert!(text.starts_with("shards:4;"), "{text}");
                assert!(text.contains("keys:41"), "{text}");
            }
            other => panic!("expected bulk, got {other:?}"),
        }
        match h.request("STATS").unwrap() {
            Response::Bulk(Some(json)) => {
                let json = String::from_utf8(json).unwrap();
                for label in ["\"kv0\":{", "\"kv1\":{", "\"kv2\":{", "\"kv3\":{"] {
                    assert!(json.contains(label), "{json}");
                }
            }
            other => panic!("expected bulk, got {other:?}"),
        }
        match h.request("FLUSHALL").unwrap() {
            Response::Ok(_) => {}
            other => panic!("expected OK, got {other:?}"),
        }
        assert_eq!(h.dbsize().unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn sharded_shutdown_stops_every_worker() {
        let (_sma, server) = sharded_server(4);
        let h = server.handle();
        assert_eq!(h.request("SHUTDOWN").unwrap(), Response::Ok("OK".into()));
        assert!(h.request("PING").is_err());
        assert!(h.request("GET anything").is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let (_sma, server) = server();
        let frontend = TcpFrontend::bind(server.handle()).unwrap();
        let mut client = TcpKvClient::connect(frontend.addr()).unwrap();
        assert_eq!(
            client.request("SET k tcp value").unwrap(),
            Response::Ok("OK".into())
        );
        assert_eq!(
            client.request("GET k").unwrap(),
            Response::Bulk(Some(b"tcp value".to_vec()))
        );
        assert_eq!(client.request("DBSIZE").unwrap(), Response::Int(1));
        assert_eq!(
            client.request("KEYS ").unwrap(),
            Response::Array(vec![b"k".to_vec()])
        );
        server.shutdown();
    }

    #[test]
    fn tcp_pipeline_replies_in_order() {
        let (_sma, server) = sharded_server(2);
        let frontend = TcpFrontend::bind(server.handle()).unwrap();
        let mut client = TcpKvClient::connect(frontend.addr()).unwrap();
        let replies = client
            .request_pipeline(&["SET a 1", "SET b 2", "", "GET a", "GET b", "DBSIZE"])
            .unwrap();
        assert_eq!(
            replies,
            vec![
                Response::Ok("OK".into()),
                Response::Ok("OK".into()),
                Response::Bulk(Some(b"1".to_vec())),
                Response::Bulk(Some(b"2".to_vec())),
                Response::Int(2),
            ]
        );
        server.shutdown();
    }

    #[test]
    fn frontend_drop_reaps_threads_and_closes_connections() {
        let (_sma, server) = server();
        let frontend = TcpFrontend::bind(server.handle()).unwrap();
        let mut client = TcpKvClient::connect(frontend.addr()).unwrap();
        assert_eq!(client.request("PING").unwrap(), Response::Ok("PONG".into()));
        // Dropping the front-end must complete even though a client is
        // parked waiting for a next request, and must hang up on it.
        drop(frontend);
        assert!(client.request("PING").is_err());
        server.shutdown();
    }

    #[test]
    fn multiple_tcp_clients() {
        let (_sma, server) = server();
        let frontend = TcpFrontend::bind(server.handle()).unwrap();
        let addr = frontend.addr();
        let mut handles = Vec::new();
        for t in 0..4 {
            handles.push(std::thread::spawn(move || {
                let mut c = TcpKvClient::connect(addr).unwrap();
                for i in 0..50 {
                    assert_eq!(
                        c.request(&format!("SET t{t}-k{i} v{i}")).unwrap(),
                        Response::Ok("OK".into())
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.store().dbsize(), 200);
        server.shutdown();
    }

    /// A `Write` impl that accepts at most `chunk` bytes per call —
    /// the slow-client shape that produces short writes.
    struct Dribble {
        chunk: usize,
        sink: Vec<u8>,
        /// Error injected after this many bytes, if set.
        die_after: Option<usize>,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if let Some(limit) = self.die_after {
                if self.sink.len() >= limit {
                    return Ok(0);
                }
            }
            let n = buf.len().min(self.chunk);
            self.sink.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_reply_loops_on_short_writes_and_counts() {
        let frame = b"$a-moderately-long-reply-frame-for-the-dribble-test\n";
        let before = reply_short_writes_total();
        let mut w = Dribble {
            chunk: 7,
            sink: Vec::new(),
            die_after: None,
        };
        write_reply(&mut w, frame).unwrap();
        // The whole frame arrived, in order, despite 7-byte writes.
        assert_eq!(w.sink, frame);
        let shorts = reply_short_writes_total() - before;
        assert_eq!(shorts as usize, frame.len().div_ceil(7) - 1);
        // A peer that stops accepting bytes is an error, not a spin:
        // the frame must not be silently truncated on a "live" socket.
        let mut dead = Dribble {
            chunk: 7,
            sink: Vec::new(),
            die_after: Some(14),
        };
        let err = write_reply(&mut dead, frame).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
    }

    #[test]
    fn thread_frontend_idle_timeout_evicts_silent_client() {
        use std::io::Read;

        let (_sma, server) = server();
        let opts = FrontendOpts {
            idle_timeout: Some(Duration::from_millis(100)),
            ..FrontendOpts::default()
        };
        let frontend = TcpFrontend::bind_with("127.0.0.1:0", server.handle(), opts).unwrap();
        let before = thread_idle_closes_total();
        // A client that connects and says nothing is evicted...
        let mut silent = TcpStream::connect(frontend.addr()).unwrap();
        silent
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let mut eof = Vec::new();
        silent.read_to_end(&mut eof).expect("server-side close");
        assert!(eof.is_empty());
        assert!(thread_idle_closes_total() > before);
        // ...and the frontend still serves fresh connections.
        let mut client = TcpKvClient::connect(frontend.addr()).unwrap();
        assert_eq!(client.request("PING").unwrap(), Response::Ok("PONG".into()));
        server.shutdown();
    }

    /// The short-write storm, thread-frontend edition: every reply
    /// write is truncated by the shim, yet pipelined replies come back
    /// byte-identical and each short write is accounted.
    #[cfg(target_os = "linux")]
    #[test]
    fn thread_frontend_short_write_storm_keeps_replies_whole() {
        use crate::reactor::SysIo;

        /// Caps every reply write at 9 bytes; passes reads through.
        #[derive(Debug, Default)]
        struct ShortWriteIo;
        impl SysIo for ShortWriteIo {
            fn read(&self, stream: &TcpStream, buf: &mut [u8]) -> std::io::Result<usize> {
                use std::io::Read;
                (&mut &*stream).read(buf)
            }
            fn write(&self, stream: &TcpStream, buf: &[u8]) -> std::io::Result<usize> {
                let cap = buf.len().min(9);
                (&mut &*stream).write(&buf[..cap])
            }
            fn accept(&self, listener: &TcpListener) -> std::io::Result<(TcpStream, SocketAddr)> {
                listener.accept()
            }
            fn epoll_wait(
                &self,
                poller: &crate::reactor::Poller,
                out: &mut Vec<crate::reactor::Event>,
                timeout_ms: i32,
            ) -> std::io::Result<()> {
                poller.wait(out, timeout_ms)
            }
            fn wake(&self, efd: &std::fs::File) -> std::io::Result<()> {
                crate::reactor::RealSysIo.wake(efd)
            }
        }

        let (_sma, server) = sharded_server(2);
        let opts = FrontendOpts {
            io: Some(Arc::new(ShortWriteIo)),
            ..FrontendOpts::default()
        };
        let frontend = TcpFrontend::bind_with("127.0.0.1:0", server.handle(), opts).unwrap();
        let mut client = TcpKvClient::connect(frontend.addr()).unwrap();
        let before = reply_short_writes_total();
        let sets: Vec<String> = (0..32).map(|i| format!("SET k{i} value-{i}")).collect();
        for r in client.request_pipeline(&sets).unwrap() {
            assert_eq!(r, Response::Ok("OK".into()));
        }
        let gets: Vec<String> = (0..32).map(|i| format!("GET k{i}")).collect();
        for (i, r) in client
            .request_pipeline(&gets)
            .unwrap()
            .into_iter()
            .enumerate()
        {
            assert_eq!(
                r,
                Response::Bulk(Some(format!("value-{i}").into_bytes())),
                "reply {i} torn or reordered"
            );
        }
        // Replies longer than the 9-byte cap must have looped — the
        // storm provably exercised the short-write path.
        assert!(
            reply_short_writes_total() > before,
            "shim never produced a short write"
        );
        server.shutdown();
    }

    /// Differential test: the reactor frontend must be
    /// protocol-equivalent to the thread frontend — the same workload
    /// produces the same decoded reply sequence.
    ///
    /// Per-key commands are pipelined (same key → same shard ring →
    /// FIFO, so their results are order-deterministic even under
    /// concurrent shard execution). Global and multi-key commands
    /// (DBSIZE, KEYS, MGET, FLUSHALL) are issued as synchronous round
    /// trips: the reactor only orders them relative to other shards'
    /// work at reply boundaries, which is exactly what a synchronous
    /// client observes.
    #[cfg(target_os = "linux")]
    #[test]
    fn reactor_and_thread_frontends_agree() {
        use crate::reactor::{ReactorConfig, ReactorFrontend};

        let pipelined: Vec<String> = {
            let mut w = Vec::new();
            for i in 0..30 {
                w.push(format!("SET user:{i} value-{i}"));
            }
            w.push("GET user:7".into());
            w.push("GET missing".into());
            w.push("INCR counter".into());
            w.push("INCRBY counter 9".into());
            w.push("APPEND log hello world".into());
            w.push("PEXPIRE user:1 60000".into());
            w.push("PTTL user:1".into());
            w.push("PERSIST user:1".into());
            w.push("SETNX user:1 other".into());
            w.push("DEL user:3".into());
            w.push("EXISTS user:3".into());
            w.push("BANANA nope".into());
            w.push("SET incomplete".into());
            w
        };
        let serial: Vec<String> = vec![
            "MGET user:1 nope user:29".into(),
            "DBSIZE".into(),
            "KEYS user:2".into(),
            "FLUSHALL".into(),
            "DBSIZE".into(),
        ];

        let labels: Vec<&str> = pipelined
            .iter()
            .chain(serial.iter())
            .map(String::as_str)
            .collect();
        let run = |addr: SocketAddr| -> Vec<Response> {
            let mut c = TcpKvClient::connect(addr).unwrap();
            let mut replies = c.request_pipeline(&pipelined).unwrap();
            for line in &serial {
                replies.push(c.request(line).unwrap());
            }
            replies
        };

        let threads = {
            let (_sma, server) = sharded_server(4);
            let fe = TcpFrontend::bind(server.handle()).unwrap();
            let replies = run(fe.addr());
            drop(fe);
            server.shutdown();
            replies
        };
        let reactor = {
            let sma = Sma::standalone(1024);
            let engine = Arc::new(ShardedStore::new(
                &sma,
                "kv",
                softmem_core::Priority::new(4),
                4,
            ));
            let fe =
                ReactorFrontend::bind("127.0.0.1:0", engine, ReactorConfig::default()).unwrap();
            run(fe.addr())
        };
        assert_eq!(threads.len(), reactor.len());
        for (i, (t, r)) in threads.iter().zip(&reactor).enumerate() {
            assert_eq!(t, r, "reply {i} diverged ({:?})", labels[i]);
        }
    }
}
