//! Servers: an in-process command loop and a TCP front-end.
//!
//! Redis is single-threaded; we mirror that with one worker thread
//! that owns command execution, fed by a channel (in-process clients)
//! and/or TCP connection threads that forward lines to the same
//! worker.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Sender};

use crate::protocol::{Command, Response};
use crate::store::Store;

enum Req {
    Line(String, Sender<String>),
    Stop,
}

/// An in-process KV server: one worker thread executing commands
/// sequentially against its [`Store`].
pub struct KvServer {
    store: Arc<Store>,
    tx: Sender<Req>,
    worker: Option<JoinHandle<()>>,
}

impl KvServer {
    /// Starts the command loop over `store`.
    pub fn start(store: Store) -> Self {
        let store = Arc::new(store);
        let (tx, rx) = unbounded::<Req>();
        let worker_store = Arc::clone(&store);
        let worker = std::thread::Builder::new()
            .name("softmem-kv".into())
            .spawn(move || {
                while let Ok(req) = rx.recv() {
                    match req {
                        Req::Line(line, reply) => {
                            let (text, stop) = match Command::parse(&line) {
                                Ok(Command::Shutdown) => (Response::Ok("OK".into()).encode(), true),
                                Ok(cmd) => (cmd.execute(&worker_store).encode(), false),
                                Err(msg) => (Response::Error(msg).encode(), false),
                            };
                            let _ = reply.send(text);
                            if stop {
                                break;
                            }
                        }
                        Req::Stop => break,
                    }
                }
            })
            .expect("spawn kv worker");
        KvServer {
            store,
            tx,
            worker: Some(worker),
        }
    }

    /// A client handle to this server.
    pub fn handle(&self) -> KvHandle {
        KvHandle {
            tx: self.tx.clone(),
        }
    }

    /// Shared read access to the underlying store (metrics sampling —
    /// what the Figure-2 timeline recorder uses).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Stops the worker.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = self.tx.send(Req::Stop);
            let _ = worker.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// An in-process client handle.
#[derive(Clone)]
pub struct KvHandle {
    tx: Sender<Req>,
}

impl KvHandle {
    /// Sends one raw protocol line; returns the decoded reply.
    pub fn request(&self, line: &str) -> Result<Response, String> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Req::Line(line.to_string(), reply_tx))
            .map_err(|_| "server stopped".to_string())?;
        let text = reply_rx.recv().map_err(|_| "server stopped".to_string())?;
        Response::decode(&text)
    }

    /// `SET key value`.
    pub fn set(&self, key: &str, value: &str) -> Result<(), String> {
        match self.request(&format!("SET {key} {value}"))? {
            Response::Ok(_) => Ok(()),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }

    /// `GET key` (None = miss).
    pub fn get(&self, key: &str) -> Result<Option<Vec<u8>>, String> {
        match self.request(&format!("GET {key}"))? {
            Response::Bulk(v) => Ok(v),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }

    /// `DEL key`; whether the key existed.
    pub fn del(&self, key: &str) -> Result<bool, String> {
        match self.request(&format!("DEL {key}"))? {
            Response::Int(n) => Ok(n == 1),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }

    /// `DBSIZE`.
    pub fn dbsize(&self) -> Result<usize, String> {
        match self.request("DBSIZE")? {
            Response::Int(n) => Ok(n as usize),
            other => Err(format!("unexpected reply: {other:?}")),
        }
    }
}

/// A TCP front-end forwarding lines to an in-process server.
pub struct TcpFrontend {
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpFrontend {
    /// Binds `127.0.0.1:0` (ephemeral port) and serves `handle`.
    pub fn bind(handle: KvHandle) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let accept_thread = std::thread::Builder::new()
            .name("softmem-kv-tcp".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { break };
                    let handle = handle.clone();
                    let _ = std::thread::Builder::new()
                        .name("softmem-kv-conn".into())
                        .spawn(move || serve_connection(stream, handle));
                }
            })?;
        Ok(TcpFrontend {
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for TcpFrontend {
    fn drop(&mut self) {
        // Unblock the accept loop with a dummy connection, then join.
        if let Some(t) = self.accept_thread.take() {
            drop(TcpStream::connect(self.addr));
            drop(t); // listener thread exits when the process does; do
                     // not block shutdown on lingering connections.
        }
    }
}

/// Reads the next *complete* protocol frame into `buf` (terminator
/// stripped). Returns `false` on EOF, I/O error, or a truncated final
/// line: a frame is only complete once its newline arrives, and a peer
/// that died mid-write must not have its half frame interpreted —
/// executing `SET k 10` out of a truncated `SET k 1000` would silently
/// corrupt data.
pub fn read_frame(reader: &mut impl BufRead, buf: &mut String) -> bool {
    buf.clear();
    match reader.read_line(buf) {
        Ok(0) | Err(_) => return false,
        Ok(_) => {}
    }
    if !buf.ends_with('\n') {
        return false;
    }
    while buf.ends_with(['\r', '\n']) {
        buf.pop();
    }
    true
}

fn serve_connection(stream: TcpStream, handle: KvHandle) {
    // Request/response protocol: disable Nagle so replies are not
    // held back waiting for the client's delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while read_frame(&mut reader, &mut line) {
        if line.is_empty() {
            continue;
        }
        let reply = match handle.request(&line) {
            Ok(resp) => resp.encode(),
            Err(msg) => Response::Error(msg).encode(),
        };
        if writer.write_all(reply.as_bytes()).is_err() {
            break;
        }
        if line.eq_ignore_ascii_case("shutdown") {
            break;
        }
    }
}

/// A blocking TCP client for the line protocol.
pub struct TcpKvClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpKvClient {
    /// Connects to a [`TcpFrontend`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(TcpKvClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one line, reads one reply line (INFO and arrays read
    /// additional lines as indicated by the reply header).
    pub fn request(&mut self, line: &str) -> std::io::Result<Response> {
        // One write per request (line + terminator): with Nagle off
        // this is one packet, one reply.
        let mut msg = String::with_capacity(line.len() + 1);
        msg.push_str(line);
        msg.push('\n');
        self.writer.write_all(msg.as_bytes())?;
        let mut first = String::new();
        self.reader.read_line(&mut first)?;
        let mut text = first.clone();
        if let Some(rest) = first.strip_prefix('*') {
            let n: usize = rest.trim().parse().unwrap_or(0);
            for _ in 0..n {
                let mut item = String::new();
                self.reader.read_line(&mut item)?;
                text.push_str(&item);
            }
        }
        Response::decode(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmem_core::{Priority, Sma};

    fn server() -> (Arc<Sma>, KvServer) {
        let sma = Sma::standalone(512);
        let store = Store::new(&sma, "kv", Priority::default());
        (sma, KvServer::start(store))
    }

    #[test]
    fn inproc_roundtrip() {
        let (_sma, server) = server();
        let h = server.handle();
        h.set("a", "hello world").unwrap();
        assert_eq!(h.get("a").unwrap(), Some(b"hello world".to_vec()));
        assert_eq!(h.get("missing").unwrap(), None);
        assert!(h.del("a").unwrap());
        assert_eq!(h.dbsize().unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn protocol_errors_are_reported() {
        let (_sma, server) = server();
        let h = server.handle();
        match h.request("WAT").unwrap() {
            Response::Error(msg) => assert!(msg.contains("unknown command")),
            other => panic!("expected error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn store_metrics_visible_while_serving() {
        let (_sma, server) = server();
        let h = server.handle();
        for i in 0..50 {
            h.set(&format!("k{i}"), "v").unwrap();
        }
        assert_eq!(server.store().dbsize(), 50);
        assert!(server.store().soft_pages() > 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_command_stops_worker() {
        let (_sma, server) = server();
        let h = server.handle();
        assert_eq!(h.request("SHUTDOWN").unwrap(), Response::Ok("OK".into()));
        assert!(h.request("PING").is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let (_sma, server) = server();
        let frontend = TcpFrontend::bind(server.handle()).unwrap();
        let mut client = TcpKvClient::connect(frontend.addr()).unwrap();
        assert_eq!(
            client.request("SET k tcp value").unwrap(),
            Response::Ok("OK".into())
        );
        assert_eq!(
            client.request("GET k").unwrap(),
            Response::Bulk(Some(b"tcp value".to_vec()))
        );
        assert_eq!(client.request("DBSIZE").unwrap(), Response::Int(1));
        assert_eq!(
            client.request("KEYS ").unwrap(),
            Response::Array(vec![b"k".to_vec()])
        );
        server.shutdown();
    }

    #[test]
    fn multiple_tcp_clients() {
        let (_sma, server) = server();
        let frontend = TcpFrontend::bind(server.handle()).unwrap();
        let addr = frontend.addr();
        let mut handles = Vec::new();
        for t in 0..4 {
            handles.push(std::thread::spawn(move || {
                let mut c = TcpKvClient::connect(addr).unwrap();
                for i in 0..50 {
                    assert_eq!(
                        c.request(&format!("SET t{t}-k{i} v{i}")).unwrap(),
                        Response::Ok("OK".into())
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.store().dbsize(), 200);
        server.shutdown();
    }
}
