//! The event-driven network plane: epoll reactors + batched shard
//! execution.
//!
//! The thread-per-connection front-end ([`crate::TcpFrontend`]) burns
//! one OS thread per client, which caps the server at hundreds of
//! connections and puts request parsing on the connection thread —
//! the layer BENCH_shard.json fingered for the shard plateau. This
//! module replaces it with a small pool of **reactor** threads
//! multiplexing every client socket through `epoll`, and moves parsing
//! onto the **shard workers** so the event loop only does I/O:
//!
//! ```text
//!             ┌────────────────────────── reactor 0 ──┐
//!  clients ──▶│ epoll: accept / read / write          │
//!             │  frame (next_frame) → route            │──SPSC──▶ shard worker 0
//!             │  (routing_key_of + shard_of)           │──SPSC──▶ shard worker 1
//!             │  sequence replies → write bufs         │◀─inbox──  (batch: parse,
//!             └────────────────────────────────────────┘           execute_at,
//!             ┌────────────────────────── reactor 1 ──┐            encode_into)
//!  clients ──▶│            …same…                      │──SPSC──▶ …
//!             └────────────────────────────────────────┘
//! ```
//!
//! Division of labour:
//!
//! * **Reactors** own sockets. They accept (reactor 0 holds the
//!   listener and hands connections round-robin to its peers via each
//!   reactor's inbox + eventfd), read into per-connection buffers,
//!   *frame* requests with [`crate::protocol::next_frame`] (no
//!   parsing), hash-route each raw frame by
//!   [`crate::protocol::routing_key_of`] to the owning shard's SPSC
//!   ring, sequence completed replies back into per-connection write
//!   buffers, and flush them when the socket is writable.
//! * **Shard workers** (one per shard) drain their rings in batches,
//!   parse each frame with the borrowed-slice
//!   [`crate::protocol::CommandRef`] parser, execute directly against
//!   the engine ([`crate::ShardedStore::execute_at`] — no channel
//!   hop), encode replies, and post them to the owning reactor's inbox
//!   with one eventfd wake per reactor per batch.
//!
//! Backpressure is explicit and per-connection: when a connection's
//! write buffer crosses the high-water mark, its in-flight count hits
//! the cap, or its shard ring is full (the frame is *parked*), the
//! reactor drops `EPOLLIN` interest for that socket — the client's
//! sends back up into its own kernel buffers while every other
//! connection proceeds. Reads resume when the pressure clears. A
//! single slow reader therefore costs bounded server memory: one
//! read buffer, one capped write buffer, one capped in-flight window.
//!
//! Replies preserve per-connection order even though a pipelined
//! connection's frames may fan out to different shards: each frame
//! gets a per-connection sequence number at framing time, and the
//! reactor holds out-of-order completions in a per-connection reorder
//! buffer until the next expected sequence arrives.
//!
//! No external dependencies: `epoll`/`eventfd` are declared as raw
//! `extern "C"` syscalls (glibc is already linked by `std`), and the
//! SPSC rings are built here from atomics — consistent with the
//! repo's vendored-shim, zero-dep stance.

use std::cell::UnsafeCell;
use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{self, Read, Write};
use std::mem::MaybeUninit;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::protocol::{next_frame, routing_key_of, CommandRef, Response};
use crate::sharded::ShardedStore;

// ----------------------------------------------------------------------
// Raw syscall layer: epoll + eventfd.
// ----------------------------------------------------------------------

pub(crate) mod sys {
    //! Minimal `epoll`/`eventfd` declarations. `std` already links
    //! libc, so the symbols resolve without any crate dependency.

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_SNDBUF: i32 = 7;
    pub const SO_RCVBUF: i32 = 8;

    /// `struct epoll_event`. The kernel ABI packs this on x86-64
    /// (12 bytes); other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const i32,
            optlen: u32,
        ) -> i32;
    }
}

/// Sets a socket buffer size (`SO_SNDBUF`/`SO_RCVBUF`). The kernel
/// doubles the value for bookkeeping and clamps to its own minimum,
/// so small requests land around 4–8 KiB — which is the point: the
/// backpressure machinery is only observable at test scale when the
/// kernel isn't silently absorbing megabytes per connection.
pub(crate) fn set_sock_buf(fd: RawFd, opt: i32, bytes: usize) -> io::Result<()> {
    let val = bytes as i32;
    let rc = unsafe {
        sys::setsockopt(
            fd,
            sys::SOL_SOCKET,
            opt,
            &val,
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
}

/// A thin safe wrapper over one `epoll` instance (level-triggered).
pub(crate) struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(
        &self,
        op: i32,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        let mut events = sys::EPOLLRDHUP;
        if readable {
            events |= sys::EPOLLIN;
        }
        if writable {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL but must be non-null
        // on pre-2.6.9 kernels; pass a dummy for compatibility.
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        let rc = unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Waits up to `timeout_ms` and appends ready events to `out`
    /// (which is cleared first). `EINTR` returns an empty set.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = unsafe {
            sys::epoll_wait(
                self.epfd.as_raw_fd(),
                buf.as_mut_ptr(),
                buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in &buf[..n as usize] {
            // Copy fields out by value (the struct is packed on
            // x86-64, so references into it would be unaligned).
            let events = ev.events;
            let data = ev.data;
            out.push(Event {
                token: data,
                readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: events & sys::EPOLLOUT != 0,
                hangup: events & (sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

/// A nonblocking `eventfd` wrapped as a `File`: any thread can wake
/// the owning reactor by writing 8 bytes; the reactor drains it on
/// wakeup. (`&File` implements `Write`, so waking needs no lock.)
pub(crate) fn new_eventfd() -> io::Result<File> {
    let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(unsafe { File::from_raw_fd(fd) })
}

// ----------------------------------------------------------------------
// SPSC ring: reactor → shard-worker request queue.
// ----------------------------------------------------------------------

struct SpscInner<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer cursor: slots `[head, tail)` are initialised.
    head: AtomicUsize,
    /// Producer cursor.
    tail: AtomicUsize,
}

// One producer and one consumer touch disjoint slots, synchronised by
// the Release/Acquire pair on `tail` (push → pop) and `head` (pop →
// push reuse), so sharing the ring across the two threads is sound.
unsafe impl<T: Send> Sync for SpscInner<T> {}
unsafe impl<T: Send> Send for SpscInner<T> {}

impl<T> Drop for SpscInner<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drain any undelivered items.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut i = head;
        while i != tail {
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// The producer half (held by exactly one reactor thread).
pub(crate) struct SpscTx<T>(Arc<SpscInner<T>>);
/// The consumer half (held by exactly one shard worker).
pub(crate) struct SpscRx<T>(Arc<SpscInner<T>>);

/// A bounded single-producer/single-consumer ring of `capacity`
/// (rounded up to a power of two) slots.
pub(crate) fn spsc<T>(capacity: usize) -> (SpscTx<T>, SpscRx<T>) {
    let cap = capacity.next_power_of_two().max(2);
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(SpscInner {
        mask: cap - 1,
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (SpscTx(Arc::clone(&inner)), SpscRx(inner))
}

impl<T> SpscTx<T> {
    /// Pushes `v`, or returns it when the ring is full.
    pub fn push(&self, v: T) -> Result<(), T> {
        let tail = self.0.tail.load(Ordering::Relaxed);
        let head = self.0.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.0.mask {
            return Err(v);
        }
        unsafe { (*self.0.slots[tail & self.0.mask].get()).write(v) };
        self.0.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }
}

impl<T> SpscRx<T> {
    pub fn pop(&self) -> Option<T> {
        let head = self.0.head.load(Ordering::Relaxed);
        let tail = self.0.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let v = unsafe { (*self.0.slots[head & self.0.mask].get()).assume_init_read() };
        self.0.head.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }
}

// ----------------------------------------------------------------------
// Shared plumbing.
// ----------------------------------------------------------------------

/// One framed request in flight from a reactor to a shard worker.
struct ShardReq {
    /// Index of the reactor that owns the connection.
    reactor: u32,
    /// Connection id (epoll token; never reused within a frontend).
    conn: u64,
    /// Per-connection sequence number, assigned at framing time.
    seq: u64,
    /// The raw request line (terminator stripped).
    frame: Vec<u8>,
}

/// One completed reply on its way back to a reactor.
struct Reply {
    conn: u64,
    seq: u64,
    bytes: Vec<u8>,
    /// Close the connection once this reply (and everything before
    /// it) has been flushed — set for `SHUTDOWN` and protocol-fatal
    /// errors.
    close_after: bool,
}

/// Cross-thread mailbox for one reactor: workers post replies here,
/// and the accepting reactor posts handed-off connections.
struct Inbox {
    replies: Vec<Reply>,
    conns: Vec<TcpStream>,
}

struct ReactorShared {
    inbox: Mutex<Inbox>,
    wake: File,
}

impl ReactorShared {
    fn wake(&self) {
        let _ = (&self.wake).write_all(&1u64.to_ne_bytes());
    }
}

/// Shard-worker parking: reactors set the flag and notify after
/// pushing work; the worker re-checks with a timeout so a lost wake
/// can never wedge it.
struct Park {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Park {
    fn notify(&self) {
        *self.flag.lock().unwrap() = true;
        self.cv.notify_one();
    }
}

/// Frontend counters, all plain atomics (no telemetry dependency) so
/// the testkit can certify the network plane's conservation laws:
/// once traffic stops, `requests_total == replies_total` and
/// `parked_frames == 0` means the plane is quiescent, and
/// `accepted_total - closed_total == open_conns` at all times.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted_total: AtomicU64,
    /// Connections fully closed (fd released).
    pub closed_total: AtomicU64,
    /// Currently open connections (gauge).
    pub open_conns: AtomicU64,
    /// Frames assigned a sequence number (routed or parked).
    pub requests_total: AtomicU64,
    /// Replies accounted for: received from a worker, generated
    /// inline by a reactor, or discarded because their connection
    /// died first.
    pub replies_total: AtomicU64,
    /// Non-empty drain passes across all shard workers.
    pub batches_total: AtomicU64,
    /// Requests executed inside those passes (`/ batches_total` =
    /// mean batch size).
    pub batched_requests_total: AtomicU64,
    /// Transitions of a connection into the reads-paused state.
    pub paused_reads_total: AtomicU64,
    /// Frames that found their shard ring full and parked.
    pub route_stalls_total: AtomicU64,
    /// Currently parked frames (gauge; at most one per connection).
    pub parked_frames: AtomicU64,
    /// High-water mark of any single connection's write buffer.
    pub max_write_buf_bytes: AtomicU64,
    /// Set when a client issued `SHUTDOWN` (the binary watches this).
    pub shutdown_requested: AtomicBool,
}

impl NetStats {
    /// Whether the plane has no work in flight. Only meaningful once
    /// producers have stopped sending (counters are monotonic, so a
    /// quiescent reading cannot be a race once traffic has ceased).
    pub fn quiesced(&self) -> bool {
        self.parked_frames.load(Ordering::Acquire) == 0
            && self.requests_total.load(Ordering::Acquire)
                == self.replies_total.load(Ordering::Acquire)
    }
}

/// Tuning for a [`ReactorFrontend`].
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Reactor (event-loop) threads; `0` picks
    /// `available_parallelism / 2` clamped to `1..=4`.
    pub reactors: usize,
    /// Per-connection cap on frames routed but not yet sequenced into
    /// the write buffer; reads pause at the cap.
    pub max_inflight_per_conn: usize,
    /// Per-connection write-buffer high-water mark (bytes); reads
    /// pause above it until the client drains.
    pub write_highwater: usize,
    /// Capacity of each reactor→shard request ring.
    pub ring_capacity: usize,
    /// Max requests a shard worker takes from one ring per pass.
    pub batch_limit: usize,
    /// Max request-line length; longer frames are a protocol error
    /// and close the connection (bounds read-buffer growth).
    pub max_frame_len: usize,
    /// `SO_SNDBUF` applied to every accepted socket (`None` keeps the
    /// kernel default). Shrinking it makes write-side backpressure
    /// engage at small data volumes — the testkit's slow-reader
    /// scenario depends on this; production leaves it alone.
    pub so_sndbuf: Option<usize>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            reactors: 0,
            max_inflight_per_conn: 128,
            write_highwater: 256 << 10,
            ring_capacity: 4096,
            batch_limit: 256,
            max_frame_len: 1 << 20,
            so_sndbuf: None,
        }
    }
}

fn auto_reactors() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get() / 2)
        .unwrap_or(1)
        .clamp(1, 4)
}

// ----------------------------------------------------------------------
// Connection state machine.
// ----------------------------------------------------------------------

/// Per-connection state. Lifecycle:
///
/// ```text
/// Open ──read EOF/RDHUP──▶ Draining (answer what was pipelined)
///   │                         │ in-flight == 0 && write buf empty
///   │ write error / HUP /     ▼
///   └─────────────────────▶ Closed (fd deleted, counters settled)
/// ```
///
/// `close_after` (SHUTDOWN / protocol-fatal error) also enters
/// Draining: reads stop, queued replies flush, then the fd closes.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet framed; `read_pos` is the consumed
    /// prefix (compacted opportunistically).
    read_buf: Vec<u8>,
    read_pos: usize,
    /// A frame that found its shard ring full: retried every loop
    /// until it fits. At most one — framing stops while parked.
    parked: Option<(usize, ShardReq)>,
    /// Encoded replies awaiting the socket; `write_pos` is flushed.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Out-of-order completions held until `next_write` catches up.
    reorder: BTreeMap<u64, Reply>,
    /// Next sequence number to assign at framing.
    next_seq: u64,
    /// Next sequence number to append to `write_buf`.
    next_write: u64,
    /// Interest currently registered with epoll.
    want_read: bool,
    want_write: bool,
    /// Reads paused by backpressure (write buffer, in-flight cap, or
    /// a parked frame).
    paused: bool,
    /// Peer half-closed (EOF seen); drain and close.
    peer_closed: bool,
    /// Stop reading; close once fully flushed.
    close_after: bool,
    /// Pending re-examination by `update_conn`.
    dirty: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            read_pos: 0,
            parked: None,
            write_buf: Vec::new(),
            write_pos: 0,
            reorder: BTreeMap::new(),
            next_seq: 0,
            next_write: 0,
            want_read: true,
            want_write: false,
            paused: false,
            peer_closed: false,
            close_after: false,
            dirty: false,
        }
    }

    /// Frames routed (or parked) but not yet sequenced into the write
    /// buffer.
    fn inflight(&self) -> u64 {
        self.next_seq - self.next_write
    }

    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }
}

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

struct Reactor {
    idx: usize,
    poller: Poller,
    /// Every reactor's mailbox (for round-robin connection handoff);
    /// `shared[idx]` is ours.
    shared: Vec<Arc<ReactorShared>>,
    listener: Option<TcpListener>,
    engine: Arc<ShardedStore>,
    /// Request ring per shard (we are the single producer).
    rings: Vec<SpscTx<ShardReq>>,
    parks: Vec<Arc<Park>>,
    conns: HashMap<u64, Conn>,
    conn_ids: Arc<AtomicU64>,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    cfg: ReactorConfig,
    /// Shards with new work this poll round (notified once).
    notify: Vec<bool>,
    /// Connections to re-examine this round.
    dirty: Vec<u64>,
    /// Connections with a parked frame.
    stalled: Vec<u64>,
    next_rr: usize,
    /// Set after a fatal `accept` error (EMFILE/ENFILE): the listener
    /// is deregistered until this deadline so a level-triggered epoll
    /// doesn't busy-spin on the un-acceptable readiness condition.
    accept_backoff_until: Option<Instant>,
}

/// How long the listener stays deregistered after fd exhaustion
/// before retrying `accept`; closed connections free fds meanwhile.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(100);

impl Reactor {
    fn run(mut self) {
        let mut events = Vec::with_capacity(256);
        loop {
            if self.poller.wait(&mut events, 50).is_err() {
                break;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake(),
                    id => {
                        if ev.hangup && !ev.readable {
                            self.close_conn(id);
                            continue;
                        }
                        if ev.readable {
                            self.handle_read(id);
                        }
                        if ev.writable {
                            self.mark_dirty(id);
                        }
                    }
                }
            }
            self.drain_inbox();
            self.retry_parked();
            self.flush_updates();
            self.flush_notifications();
            self.maybe_resume_listener();
            if self.stop.load(Ordering::Acquire) {
                break;
            }
        }
        // Teardown: release every fd and settle the gauges.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close_conn(id);
        }
    }

    fn mark_dirty(&mut self, id: u64) {
        if let Some(conn) = self.conns.get_mut(&id) {
            if !conn.dirty {
                conn.dirty = true;
                self.dirty.push(id);
            }
        }
    }

    // -- accept / handoff ------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.as_ref().expect("listener event").accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    self.stats.accepted_total.fetch_add(1, Ordering::Relaxed);
                    let target = self.next_rr % self.shared.len();
                    self.next_rr += 1;
                    if target == self.idx {
                        self.register_conn(stream);
                    } else {
                        self.shared[target].inbox.lock().unwrap().conns.push(stream);
                        self.shared[target].wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EMFILE/ENFILE and friends: the pending
                    // connection stays in the accept queue, so a
                    // level-triggered listener would be re-reported
                    // readable on every `epoll_wait` and spin this
                    // reactor at 100% CPU. Stand the listener down
                    // and retry after a backoff — closing connections
                    // frees fds in the meantime.
                    self.pause_listener();
                    break;
                }
            }
        }
    }

    fn pause_listener(&mut self) {
        if self.accept_backoff_until.is_some() {
            return;
        }
        if let Some(listener) = &self.listener {
            let _ = self.poller.delete(listener.as_raw_fd());
        }
        self.accept_backoff_until = Some(Instant::now() + ACCEPT_BACKOFF);
    }

    /// Re-registers a backed-off listener once its deadline passes.
    /// Called every loop round; the 50 ms `epoll_wait` timeout bounds
    /// the extra latency. If registration itself fails the backoff is
    /// extended rather than spinning on `epoll_ctl`.
    fn maybe_resume_listener(&mut self) {
        let Some(deadline) = self.accept_backoff_until else {
            return;
        };
        if Instant::now() < deadline {
            return;
        }
        self.accept_backoff_until = None;
        if let Some(listener) = &self.listener {
            if self
                .poller
                .add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)
                .is_err()
            {
                self.accept_backoff_until = Some(Instant::now() + ACCEPT_BACKOFF);
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if let Some(bytes) = self.cfg.so_sndbuf {
            let _ = set_sock_buf(stream.as_raw_fd(), sys::SO_SNDBUF, bytes);
        }
        let id = self.conn_ids.fetch_add(1, Ordering::Relaxed);
        if self
            .poller
            .add(stream.as_raw_fd(), id, true, false)
            .is_err()
        {
            // Registration failure (fd exhaustion): account the
            // connection as opened-and-closed so the gauges balance.
            self.stats.closed_total.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.stats.open_conns.fetch_add(1, Ordering::Relaxed);
        self.conns.insert(id, Conn::new(stream));
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 8];
        while (&self.shared[self.idx].wake).read(&mut buf).is_ok() {}
    }

    fn drain_inbox(&mut self) {
        let (replies, new_conns) = {
            let mut inbox = self.shared[self.idx].inbox.lock().unwrap();
            (
                std::mem::take(&mut inbox.replies),
                std::mem::take(&mut inbox.conns),
            )
        };
        for stream in new_conns {
            self.register_conn(stream);
        }
        for reply in replies {
            self.sequence_reply(reply);
        }
    }

    // -- read / frame / route --------------------------------------------

    fn handle_read(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if !conn.want_read {
            // Stale readiness from before a pause; ignore.
            self.mark_dirty(id);
            return;
        }
        loop {
            let old = conn.read_buf.len();
            conn.read_buf.resize(old + 16 * 1024, 0);
            match conn.stream.read(&mut conn.read_buf[old..]) {
                Ok(0) => {
                    conn.read_buf.truncate(old);
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.truncate(old + n);
                    // Level-triggered: leave any remainder for the
                    // next wakeup so one chatty socket can't starve
                    // its siblings.
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.read_buf.truncate(old);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    conn.read_buf.truncate(old);
                    continue;
                }
                Err(_) => {
                    conn.read_buf.truncate(old);
                    self.close_conn(id);
                    return;
                }
            }
        }
        self.process_frames(id);
        self.mark_dirty(id);
    }

    /// Frames and routes everything complete in `read_buf`, stopping
    /// at backpressure (parked frame / in-flight cap / write-buffer
    /// high water).
    fn process_frames(&mut self, id: u64) {
        let nshards = self.rings.len() as u64;
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.parked.is_some()
                || conn.close_after
                || conn.inflight() >= self.cfg.max_inflight_per_conn as u64
                || conn.pending_write() >= self.cfg.write_highwater
            {
                break;
            }
            let Some((frame, used)) = next_frame(&conn.read_buf[conn.read_pos..]) else {
                // No complete line. An over-long partial line can
                // never become a valid frame — fail fast instead of
                // buffering without bound.
                if conn.read_buf.len() - conn.read_pos > self.cfg.max_frame_len {
                    self.protocol_fatal(id, "request line too long");
                }
                break;
            };
            if frame.is_empty() {
                // Blank line: skipped without a reply, matching the
                // thread frontend.
                conn.read_pos += used;
                continue;
            }
            if frame.len() > self.cfg.max_frame_len {
                self.protocol_fatal(id, "request line too long");
                break;
            }
            let shard = routing_key_of(frame)
                .map(|k| self.engine.shard_of(k))
                .unwrap_or((id % nshards) as usize);
            let seq = conn.next_seq;
            conn.next_seq += 1;
            self.stats.requests_total.fetch_add(1, Ordering::Relaxed);
            let req = ShardReq {
                reactor: self.idx as u32,
                conn: id,
                seq,
                frame: frame.to_vec(),
            };
            conn.read_pos += used;
            match self.rings[shard].push(req) {
                Ok(()) => self.notify[shard] = true,
                Err(req) => {
                    // Ring full: park and stop framing; retried every
                    // loop until the worker catches up.
                    conn.parked = Some((shard, req));
                    self.stats.parked_frames.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .route_stalls_total
                        .fetch_add(1, Ordering::Relaxed);
                    self.stalled.push(id);
                    break;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(&id) {
            // Compact the consumed prefix once it dominates the
            // buffer (or the buffer is fully consumed — the common
            // case — which makes this a free truncate).
            if conn.read_pos > 0
                && (conn.read_pos == conn.read_buf.len() || conn.read_pos >= 64 * 1024)
            {
                conn.read_buf.drain(..conn.read_pos);
                conn.read_pos = 0;
            }
        }
    }

    /// Emits an inline error reply for a malformed stream and flags
    /// the connection to close once it flushes.
    fn protocol_fatal(&mut self, id: u64, msg: &str) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        // Flag the connection fatal *now*, not when the error reply
        // sequences through the reorder buffer: the malformed bytes
        // are still in `read_buf`, so every later `process_frames`
        // pass would otherwise re-trip the same condition and emit a
        // duplicate error reply per reactor round until in-flight
        // replies land. The top-of-loop `close_after` check makes
        // this a one-shot.
        conn.close_after = true;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        self.stats.requests_total.fetch_add(1, Ordering::Relaxed);
        let mut bytes = Vec::new();
        Response::Error(msg.into()).encode_into(&mut bytes);
        self.sequence_reply(Reply {
            conn: id,
            seq,
            bytes,
            close_after: true,
        });
    }

    fn retry_parked(&mut self) {
        if self.stalled.is_empty() {
            return;
        }
        let stalled = std::mem::take(&mut self.stalled);
        for id in stalled {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            let Some((shard, req)) = conn.parked.take() else {
                continue;
            };
            match self.rings[shard].push(req) {
                Ok(()) => {
                    self.stats.parked_frames.fetch_sub(1, Ordering::Relaxed);
                    self.notify[shard] = true;
                    // Unblocked: resume framing whatever else queued
                    // up behind the parked frame.
                    self.process_frames(id);
                    self.mark_dirty(id);
                }
                Err(req) => {
                    let Some(conn) = self.conns.get_mut(&id) else {
                        continue;
                    };
                    conn.parked = Some((shard, req));
                    self.stalled.push(id);
                }
            }
        }
    }

    fn flush_notifications(&mut self) {
        for shard in 0..self.notify.len() {
            if self.notify[shard] {
                self.notify[shard] = false;
                self.parks[shard].notify();
            }
        }
    }

    // -- replies / writes ------------------------------------------------

    fn sequence_reply(&mut self, reply: Reply) {
        // Every reply is accounted even when its connection died
        // first — the quiescence invariant (`requests == replies`)
        // must converge through disconnects.
        self.stats.replies_total.fetch_add(1, Ordering::Relaxed);
        let id = reply.conn;
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        conn.reorder.insert(reply.seq, reply);
        while let Some(r) = conn.reorder.remove(&conn.next_write) {
            conn.write_buf.extend_from_slice(&r.bytes);
            conn.next_write += 1;
            if r.close_after {
                conn.close_after = true;
            }
        }
        self.stats
            .max_write_buf_bytes
            .fetch_max(conn.pending_write() as u64, Ordering::Relaxed);
        self.mark_dirty(id);
    }

    /// Re-examines every touched connection: flush, resume framing,
    /// settle pause state, sync epoll interest, close when drained.
    fn flush_updates(&mut self) {
        let dirty = std::mem::take(&mut self.dirty);
        for id in dirty {
            self.update_conn(id);
        }
    }

    fn update_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        conn.dirty = false;
        // Flush as much of the write buffer as the socket accepts.
        let mut broken = false;
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    broken = true;
                    break;
                }
                Ok(n) => conn.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    broken = true;
                    break;
                }
            }
        }
        if broken {
            self.close_conn(id);
            return;
        }
        if conn.write_pos == conn.write_buf.len() && conn.write_pos > 0 {
            conn.write_buf.clear();
            conn.write_pos = 0;
            // A burst against a slow reader can balloon the buffer;
            // give the excess back once drained.
            if conn.write_buf.capacity() > self.cfg.write_highwater * 2 {
                conn.write_buf.shrink_to(self.cfg.write_highwater);
            }
        }
        // Backpressure may have cleared (replies drained, frame
        // unparked): resume framing pipelined bytes already buffered.
        // No `paused` guard here — that flag is stale until recomputed
        // below, and gating on it can strand buffered frames forever
        // when a pause clears entirely within one pass (all in-flight
        // replies land and flush at once: no further epoll event will
        // fire for an idle, fully-drained socket). `process_frames`
        // re-checks every backpressure condition itself and returns
        // immediately if any still holds.
        if conn.read_pos < conn.read_buf.len() {
            self.process_frames(id);
        }
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        // Fully drained and told to finish → close.
        if (conn.peer_closed || conn.close_after)
            && conn.inflight() == 0
            && conn.parked.is_none()
            && conn.pending_write() == 0
        {
            self.close_conn(id);
            return;
        }
        // Settle the pause state and epoll interest.
        let paused = conn.parked.is_some()
            || conn.inflight() >= self.cfg.max_inflight_per_conn as u64
            || conn.pending_write() >= self.cfg.write_highwater;
        if paused && !conn.paused {
            self.stats
                .paused_reads_total
                .fetch_add(1, Ordering::Relaxed);
        }
        conn.paused = paused;
        let want_read = !paused && !conn.peer_closed && !conn.close_after;
        let want_write = conn.pending_write() > 0;
        if want_read != conn.want_read || want_write != conn.want_write {
            conn.want_read = want_read;
            conn.want_write = want_write;
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), id, want_read, want_write)
                .is_err()
            {
                self.close_conn(id);
            }
        }
    }

    fn close_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.remove(&id) else {
            return;
        };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        // A parked frame never reached its shard: account its "reply"
        // here so the quiescence counters still converge.
        if conn.parked.is_some() {
            self.stats.parked_frames.fetch_sub(1, Ordering::Relaxed);
            self.stats.replies_total.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.closed_total.fetch_add(1, Ordering::Relaxed);
        self.stats.open_conns.fetch_sub(1, Ordering::Relaxed);
        // Frames already at shards will come back as replies for a
        // dead conn id and be counted in `sequence_reply`; reorder
        // entries were counted when they arrived. Nothing else to do.
    }
}

// ----------------------------------------------------------------------
// Shard workers.
// ----------------------------------------------------------------------

struct WorkerCtx {
    shard: usize,
    engine: Arc<ShardedStore>,
    rings: Vec<SpscRx<ShardReq>>,
    park: Arc<Park>,
    reactors: Vec<Arc<ReactorShared>>,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    batch_limit: usize,
}

fn shard_worker(ctx: WorkerCtx) {
    let mut out: Vec<Vec<Reply>> = (0..ctx.reactors.len()).map(|_| Vec::new()).collect();
    loop {
        let mut drained = 0usize;
        for (r, ring) in ctx.rings.iter().enumerate() {
            let mut taken = 0usize;
            while taken < ctx.batch_limit {
                let Some(req) = ring.pop() else { break };
                debug_assert_eq!(req.reactor as usize, r);
                let (bytes, close_after) =
                    execute_frame(&ctx.engine, ctx.shard, &req.frame, &ctx.stats);
                out[r].push(Reply {
                    conn: req.conn,
                    seq: req.seq,
                    bytes,
                    close_after,
                });
                taken += 1;
            }
            drained += taken;
        }
        if drained > 0 {
            ctx.stats.batches_total.fetch_add(1, Ordering::Relaxed);
            ctx.stats
                .batched_requests_total
                .fetch_add(drained as u64, Ordering::Relaxed);
            // One lock + one wake per reactor per batch, however many
            // replies it carried.
            for (r, replies) in out.iter_mut().enumerate() {
                if replies.is_empty() {
                    continue;
                }
                ctx.reactors[r]
                    .inbox
                    .lock()
                    .unwrap()
                    .replies
                    .append(replies);
                ctx.reactors[r].wake();
            }
            continue;
        }
        if ctx.stop.load(Ordering::Acquire) {
            break;
        }
        // Idle: park until a reactor signals, with a timeout so a
        // missed notify (or shutdown) can't wedge the worker.
        let mut flag = ctx.park.flag.lock().unwrap();
        while !*flag {
            let (f, timeout) = ctx
                .park
                .cv
                .wait_timeout(flag, Duration::from_millis(25))
                .unwrap();
            flag = f;
            if timeout.timed_out() {
                break;
            }
        }
        *flag = false;
    }
}

/// Parses and executes one raw frame; returns the encoded reply and
/// whether the connection should close after it flushes.
fn execute_frame(
    engine: &ShardedStore,
    shard: usize,
    frame: &[u8],
    stats: &NetStats,
) -> (Vec<u8>, bool) {
    let mut close_after = false;
    let response = match std::str::from_utf8(frame) {
        Ok(line) => match CommandRef::parse(line) {
            Ok(cmd) => {
                if matches!(cmd, CommandRef::Shutdown) {
                    close_after = true;
                    stats.shutdown_requested.store(true, Ordering::Release);
                }
                engine.execute_at(shard, &cmd)
            }
            Err(msg) => Response::Error(msg),
        },
        Err(_) => Response::Error("invalid UTF-8 in request".into()),
    };
    let mut bytes = Vec::with_capacity(32);
    response.encode_into(&mut bytes);
    (bytes, close_after)
}

// ----------------------------------------------------------------------
// The frontend handle.
// ----------------------------------------------------------------------

/// The event-driven TCP front-end: a pool of epoll reactors feeding
/// per-shard batch workers. See the module docs for the architecture;
/// this type owns every thread and fd, and dropping it is a clean
/// shutdown (sockets closed, all threads joined).
pub struct ReactorFrontend {
    addr: SocketAddr,
    engine: Arc<ShardedStore>,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    shared: Vec<Arc<ReactorShared>>,
    parks: Vec<Arc<Park>>,
    reactor_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ReactorFrontend {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves `engine` with `cfg`.
    pub fn bind(addr: &str, engine: Arc<ShardedStore>, cfg: ReactorConfig) -> io::Result<Self> {
        let mut cfg = cfg;
        if cfg.reactors == 0 {
            cfg.reactors = auto_reactors();
        }
        let nreactors = cfg.reactors;
        let nshards = engine.shard_count();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;

        let stats = Arc::new(NetStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let conn_ids = Arc::new(AtomicU64::new(0));

        let shared: Vec<Arc<ReactorShared>> = (0..nreactors)
            .map(|_| {
                Ok(Arc::new(ReactorShared {
                    inbox: Mutex::new(Inbox {
                        replies: Vec::new(),
                        conns: Vec::new(),
                    }),
                    wake: new_eventfd()?,
                }))
            })
            .collect::<io::Result<_>>()?;
        let parks: Vec<Arc<Park>> = (0..nshards)
            .map(|_| {
                Arc::new(Park {
                    flag: Mutex::new(false),
                    cv: Condvar::new(),
                })
            })
            .collect();

        // Ring matrix: rings[reactor][shard] — each reactor the sole
        // producer, each shard worker the sole consumer.
        let mut tx_rings: Vec<Vec<SpscTx<ShardReq>>> = (0..nreactors).map(|_| Vec::new()).collect();
        let mut rx_rings: Vec<Vec<SpscRx<ShardReq>>> = (0..nshards).map(|_| Vec::new()).collect();
        for tx_row in tx_rings.iter_mut() {
            for rx_col in rx_rings.iter_mut() {
                let (tx, rx) = spsc(cfg.ring_capacity);
                tx_row.push(tx);
                rx_col.push(rx);
            }
        }

        let mut worker_threads = Vec::with_capacity(nshards);
        for (shard, rings) in rx_rings.into_iter().enumerate() {
            let ctx = WorkerCtx {
                shard,
                engine: Arc::clone(&engine),
                rings,
                park: Arc::clone(&parks[shard]),
                reactors: shared.clone(),
                stats: Arc::clone(&stats),
                stop: Arc::clone(&stop),
                batch_limit: cfg.batch_limit,
            };
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("softmem-kv-shard-{shard}"))
                    .spawn(move || shard_worker(ctx))?,
            );
        }

        let mut reactor_threads = Vec::with_capacity(nreactors);
        let mut listener = Some(listener);
        for (idx, rings) in tx_rings.into_iter().enumerate() {
            let poller = Poller::new()?;
            poller.add(shared[idx].wake.as_raw_fd(), TOKEN_WAKE, true, false)?;
            let own_listener = if idx == 0 { listener.take() } else { None };
            if let Some(l) = &own_listener {
                poller.add(l.as_raw_fd(), TOKEN_LISTENER, true, false)?;
            }
            let reactor = Reactor {
                idx,
                poller,
                shared: shared.clone(),
                listener: own_listener,
                engine: Arc::clone(&engine),
                rings,
                parks: parks.clone(),
                conns: HashMap::new(),
                conn_ids: Arc::clone(&conn_ids),
                stats: Arc::clone(&stats),
                stop: Arc::clone(&stop),
                cfg: cfg.clone(),
                notify: vec![false; nshards],
                dirty: Vec::new(),
                stalled: Vec::new(),
                next_rr: 0,
                accept_backoff_until: None,
            };
            reactor_threads.push(
                std::thread::Builder::new()
                    .name(format!("softmem-kv-reactor-{idx}"))
                    .spawn(move || reactor.run())?,
            );
        }

        Ok(ReactorFrontend {
            addr: local,
            engine,
            stats,
            stop,
            shared,
            parks,
            reactor_threads,
            worker_threads,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The frontend's counters.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// The engine being served.
    pub fn engine(&self) -> &Arc<ShardedStore> {
        &self.engine
    }
}

impl Drop for ReactorFrontend {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for s in &self.shared {
            s.wake();
        }
        for t in self.reactor_threads.drain(..) {
            let _ = t.join();
        }
        // Reactors are gone (their rings' producers dropped); workers
        // drain whatever remains, observe `stop`, and exit.
        for p in &self.parks {
            p.notify();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::TcpKvClient;
    use softmem_core::{Priority, Sma};

    fn frontend(shards: usize) -> (Arc<Sma>, ReactorFrontend) {
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), shards));
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, ReactorConfig::default()).unwrap();
        (sma, fe)
    }

    #[test]
    fn spsc_ring_roundtrip_and_drop_drains() {
        let (tx, rx) = spsc::<Vec<u8>>(4);
        assert!(rx.pop().is_none());
        for i in 0..4u8 {
            tx.push(vec![i]).unwrap();
        }
        assert!(tx.push(vec![9]).is_err(), "ring holds exactly capacity");
        assert_eq!(rx.pop(), Some(vec![0]));
        tx.push(vec![4]).unwrap();
        for want in 1..5u8 {
            assert_eq!(rx.pop(), Some(vec![want]));
        }
        // Items left in a dropped ring are freed (miri/asan clean).
        let (tx, rx) = spsc::<Vec<u8>>(8);
        tx.push(vec![1; 128]).unwrap();
        tx.push(vec![2; 128]).unwrap();
        drop(tx);
        drop(rx);
    }

    #[test]
    fn reactor_roundtrip_single_client() {
        let (_sma, fe) = frontend(4);
        let mut client = TcpKvClient::connect(fe.addr()).unwrap();
        assert_eq!(
            client.request("SET a hello world").unwrap(),
            Response::Ok("OK".into())
        );
        assert_eq!(
            client.request("GET a").unwrap(),
            Response::Bulk(Some(b"hello world".to_vec()))
        );
        assert_eq!(client.request("GET missing").unwrap(), Response::Bulk(None));
        assert_eq!(client.request("DBSIZE").unwrap(), Response::Int(1));
        assert_eq!(
            client.request("MGET a nope").unwrap(),
            Response::Array(vec![b"hello world".to_vec(), b"(nil)".to_vec()])
        );
        match client.request("BANANA").unwrap() {
            Response::Error(msg) => assert!(msg.contains("unknown command"), "{msg}"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn reactor_pipeline_preserves_order_across_shards() {
        let (_sma, fe) = frontend(4);
        let mut client = TcpKvClient::connect(fe.addr()).unwrap();
        // A pipelined burst whose keys scatter across shards: replies
        // must come back in request order regardless.
        let sets: Vec<String> = (0..64).map(|i| format!("SET key-{i} v{i}")).collect();
        for r in client.request_pipeline(&sets).unwrap() {
            assert_eq!(r, Response::Ok("OK".into()));
        }
        let gets: Vec<String> = (0..64).map(|i| format!("GET key-{i}")).collect();
        let replies = client.request_pipeline(&gets).unwrap();
        for (i, r) in replies.into_iter().enumerate() {
            assert_eq!(r, Response::Bulk(Some(format!("v{i}").into_bytes())), "{i}");
        }
        // The plane settles: all requests answered.
        let stats = fe.stats();
        assert!(stats.quiesced(), "{stats:?}");
    }

    #[test]
    fn reactor_many_clients_and_clean_teardown() {
        let (_sma, fe) = frontend(2);
        let addr = fe.addr();
        let mut clients: Vec<TcpKvClient> = (0..32)
            .map(|_| TcpKvClient::connect(addr).unwrap())
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            assert_eq!(
                c.request(&format!("SET c{i} val{i}")).unwrap(),
                Response::Ok("OK".into())
            );
        }
        for (i, c) in clients.iter_mut().enumerate() {
            assert_eq!(
                c.request(&format!("GET c{i}")).unwrap(),
                Response::Bulk(Some(format!("val{i}").into_bytes()))
            );
        }
        let stats = Arc::clone(fe.stats());
        assert_eq!(stats.accepted_total.load(Ordering::Acquire), 32);
        drop(clients);
        // Closes are asynchronous; wait for the gauges to settle.
        for _ in 0..200 {
            if stats.open_conns.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(stats.open_conns.load(Ordering::Acquire), 0);
        assert_eq!(stats.closed_total.load(Ordering::Acquire), 32);
        drop(fe); // must not hang
    }

    #[test]
    fn reactor_shutdown_verb_flags_and_closes() {
        let (_sma, fe) = frontend(1);
        let mut client = TcpKvClient::connect(fe.addr()).unwrap();
        assert_eq!(
            client.request("SHUTDOWN").unwrap(),
            Response::Ok("OK".into())
        );
        let stats = fe.stats();
        assert!(stats.shutdown_requested.load(Ordering::Acquire));
        // The server closes the connection after the reply flushes.
        for _ in 0..200 {
            if stats.open_conns.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(stats.open_conns.load(Ordering::Acquire), 0);
    }

    #[test]
    fn deep_pipeline_resumes_framing_after_pause_clears() {
        // Regression: a connection whose whole backpressure pause
        // clears within one reactor pass (all in-flight replies land
        // and flush together) must still frame the rest of the bytes
        // already sitting in its read buffer — there will be no
        // further epoll event to do it later. A tiny in-flight cap
        // forces many pause/resume cycles in a single burst.
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 2));
        let cfg = ReactorConfig {
            max_inflight_per_conn: 4,
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        let mut stream = TcpStream::connect(fe.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        const BURST: usize = 512;
        let mut req = Vec::new();
        for i in 0..BURST {
            req.extend_from_slice(format!("GET nope-{i}\n").as_bytes());
        }
        stream.write_all(&req).unwrap();
        // Each miss is exactly one line (`$-1\n`); count newlines.
        let mut got = 0usize;
        let mut buf = [0u8; 4096];
        while got < BURST {
            let n = stream.read(&mut buf).expect("reply stream stalled");
            assert_ne!(n, 0, "server closed early after {got} replies");
            got += buf[..n].iter().filter(|&&b| b == b'\n').count();
        }
        assert_eq!(got, BURST);
        // Nothing left unframed or unanswered.
        for _ in 0..200 {
            if fe.stats().quiesced() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(fe.stats().quiesced(), "{:?}", fe.stats());
    }

    #[test]
    fn protocol_fatal_replies_exactly_once() {
        // Regression: an over-long partial line arriving behind a
        // pipelined burst must produce exactly one error reply, not
        // one per reactor round while the burst's replies are still
        // in flight.
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 2));
        let cfg = ReactorConfig {
            max_frame_len: 256,
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        let mut stream = TcpStream::connect(fe.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut req = Vec::new();
        for i in 0..64 {
            req.extend_from_slice(format!("GET nope-{i}\n").as_bytes());
        }
        req.extend_from_slice(&vec![b'x'; 4096]); // no terminator
        stream.write_all(&req).unwrap();
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).unwrap();
        let text = String::from_utf8_lossy(&reply);
        assert_eq!(
            text.matches("-ERR").count(),
            1,
            "duplicate fatal replies: {text:?}"
        );
        assert_eq!(text.matches("$-1").count(), 64, "{text:?}");
    }

    #[test]
    fn oversize_frame_is_rejected_not_buffered() {
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 1));
        let cfg = ReactorConfig {
            max_frame_len: 1024,
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        let mut stream = TcpStream::connect(fe.addr()).unwrap();
        // 1 MiB of line with no terminator: the reactor must reply
        // with an error and close, not buffer it forever.
        let junk = vec![b'x'; 1 << 20];
        let _ = stream.write_all(&junk);
        let mut reply = Vec::new();
        let _ = stream.read_to_end(&mut reply);
        let text = String::from_utf8_lossy(&reply);
        assert!(text.contains("-ERR"), "got: {text:?}");
    }
}
