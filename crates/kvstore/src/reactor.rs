//! The event-driven network plane: epoll reactors + batched shard
//! execution.
//!
//! The thread-per-connection front-end ([`crate::TcpFrontend`]) burns
//! one OS thread per client, which caps the server at hundreds of
//! connections and puts request parsing on the connection thread —
//! the layer BENCH_shard.json fingered for the shard plateau. This
//! module replaces it with a small pool of **reactor** threads
//! multiplexing every client socket through `epoll`, and moves parsing
//! onto the **shard workers** so the event loop only does I/O:
//!
//! ```text
//!             ┌────────────────────────── reactor 0 ──┐
//!  clients ──▶│ epoll: accept / read / write          │
//!             │  frame (next_frame) → route            │──SPSC──▶ shard worker 0
//!             │  (routing_key_of + shard_of)           │──SPSC──▶ shard worker 1
//!             │  sequence replies → write bufs         │◀─inbox──  (batch: parse,
//!             └────────────────────────────────────────┘           execute_at,
//!             ┌────────────────────────── reactor 1 ──┐            encode_into)
//!  clients ──▶│            …same…                      │──SPSC──▶ …
//!             └────────────────────────────────────────┘
//! ```
//!
//! Division of labour:
//!
//! * **Reactors** own sockets. They accept (reactor 0 holds the
//!   listener and hands connections round-robin to its peers via each
//!   reactor's inbox + eventfd), read into per-connection buffers,
//!   *frame* requests with [`crate::protocol::next_frame`] (no
//!   parsing), hash-route each raw frame by
//!   [`crate::protocol::routing_key_of`] to the owning shard's SPSC
//!   ring, sequence completed replies back into per-connection write
//!   buffers, and flush them when the socket is writable.
//! * **Shard workers** (one per shard) drain their rings in batches,
//!   parse each frame with the borrowed-slice
//!   [`crate::protocol::CommandRef`] parser, execute directly against
//!   the engine ([`crate::ShardedStore::execute_at`] — no channel
//!   hop), encode replies, and post them to the owning reactor's inbox
//!   with one eventfd wake per reactor per batch.
//!
//! Backpressure is explicit and per-connection: when a connection's
//! write buffer crosses the high-water mark, its in-flight count hits
//! the cap, or its shard ring is full (the frame is *parked*), the
//! reactor drops `EPOLLIN` interest for that socket — the client's
//! sends back up into its own kernel buffers while every other
//! connection proceeds. Reads resume when the pressure clears. A
//! single slow reader therefore costs bounded server memory: one
//! read buffer, one capped write buffer, one capped in-flight window.
//!
//! Replies preserve per-connection order even though a pipelined
//! connection's frames may fan out to different shards: each frame
//! gets a per-connection sequence number at framing time, and the
//! reactor holds out-of-order completions in a per-connection reorder
//! buffer until the next expected sequence arrives.
//!
//! No external dependencies: `epoll`/`eventfd` are declared as raw
//! `extern "C"` syscalls (glibc is already linked by `std`), and the
//! SPSC rings are built here from atomics — consistent with the
//! repo's vendored-shim, zero-dep stance.
//!
//! ## The fault plane
//!
//! Robustness here is designed to be *provable*, not incidental:
//!
//! * Every raw I/O call (`read`/`write`/`accept`/`epoll_wait`/eventfd
//!   wakes) goes through the [`SysIo`] trait. Production uses
//!   [`RealSysIo`] (the plain syscalls); the testkit swaps in a seeded
//!   shim that injects `EINTR`, `EAGAIN`, `ECONNRESET`, `EMFILE`,
//!   short reads and partial writes by plan, so the error paths run on
//!   every seed-matrix sweep instead of never.
//! * Per-connection **deadlines** (idle and write-stall) ride a lazy
//!   timer wheel checked each reactor round; a slow reader is evicted
//!   after a bound (`conn_deadline_closes_total`) instead of holding
//!   its write buffer and reorder slots forever.
//! * **Overload admission control**: past a global in-flight
//!   high-water mark the reactor sheds new frames with an immediate
//!   `-ERR overloaded` reply (`overload_sheds_total`), shard-ring
//!   parks give up after a bound, and a harder limit stands the
//!   listener down — brownout, not blackout.
//! * Shard workers and reactors run **supervised** under
//!   `catch_unwind`: a panicked worker is restarted, its in-flight
//!   request answered with a clean error reply
//!   (`panic_error_replies_total`), and the other shards keep serving;
//!   a panicked reactor closes its connections and resumes accepting.
//!
//! Every one of those outcomes is a counter, and together they form a
//! ledger ([`NetStats::ledger`]): replies == executed + shed + fatal +
//! discarded + panic-failed, so an injected fault can never leave a
//! request silently unaccounted.

use std::cell::UnsafeCell;
use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{self, Read, Write};
use std::mem::MaybeUninit;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use softmem_telemetry::{Counter, Gauge, Registry, Snapshot};

use crate::protocol::{next_frame, routing_key_of, CommandRef, Response};
use crate::sharded::ShardedStore;

// ----------------------------------------------------------------------
// Raw syscall layer: epoll + eventfd.
// ----------------------------------------------------------------------

pub(crate) mod sys {
    //! Minimal `epoll`/`eventfd` declarations. `std` already links
    //! libc, so the symbols resolve without any crate dependency.

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_SNDBUF: i32 = 7;
    pub const SO_RCVBUF: i32 = 8;

    /// `struct epoll_event`. The kernel ABI packs this on x86-64
    /// (12 bytes); other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const i32,
            optlen: u32,
        ) -> i32;
    }
}

/// Sets a socket buffer size (`SO_SNDBUF`/`SO_RCVBUF`). The kernel
/// doubles the value for bookkeeping and clamps to its own minimum,
/// so small requests land around 4–8 KiB — which is the point: the
/// backpressure machinery is only observable at test scale when the
/// kernel isn't silently absorbing megabytes per connection.
pub(crate) fn set_sock_buf(fd: RawFd, opt: i32, bytes: usize) -> io::Result<()> {
    let val = bytes as i32;
    let rc = unsafe {
        sys::setsockopt(
            fd,
            sys::SOL_SOCKET,
            opt,
            &val,
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
}

/// A thin safe wrapper over one `epoll` instance (level-triggered).
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(
        &self,
        op: i32,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        let mut events = sys::EPOLLRDHUP;
        if readable {
            events |= sys::EPOLLIN;
        }
        if writable {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL but must be non-null
        // on pre-2.6.9 kernels; pass a dummy for compatibility.
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        let rc = unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Waits up to `timeout_ms` and appends ready events to `out`
    /// (which is cleared first). `EINTR` returns an empty set.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = unsafe {
            sys::epoll_wait(
                self.epfd.as_raw_fd(),
                buf.as_mut_ptr(),
                buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in &buf[..n as usize] {
            // Copy fields out by value (the struct is packed on
            // x86-64, so references into it would be unaligned).
            let events = ev.events;
            let data = ev.data;
            out.push(Event {
                token: data,
                readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: events & sys::EPOLLOUT != 0,
                hangup: events & (sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

/// A nonblocking `eventfd` wrapped as a `File`: any thread can wake
/// the owning reactor by writing 8 bytes; the reactor drains it on
/// wakeup. (`&File` implements `Write`, so waking needs no lock.)
pub(crate) fn new_eventfd() -> io::Result<File> {
    let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(unsafe { File::from_raw_fd(fd) })
}

// ----------------------------------------------------------------------
// Syscall shim: the reactor's only door to the kernel.
// ----------------------------------------------------------------------

/// Every raw I/O call the network plane makes, as a trait, so the
/// testkit can interpose a seeded fault injector (`EINTR`, `EAGAIN`,
/// `ECONNRESET`, `EMFILE`, short reads, partial writes) and prove the
/// error handling instead of trusting it. Production uses
/// [`RealSysIo`]; the dynamic dispatch is one vtable hop per syscall,
/// noise next to the syscall itself (the `conn_scaling` gate holds
/// with the shim in place).
///
/// Implementations must be deterministic for a fixed seed and call
/// sequence — the testkit replays failures from `(scenario, seed)`.
pub trait SysIo: Send + Sync {
    /// `read(2)` from a connected stream into `buf`.
    fn read(&self, stream: &TcpStream, buf: &mut [u8]) -> io::Result<usize>;
    /// `write(2)` of `buf` to a connected stream.
    fn write(&self, stream: &TcpStream, buf: &[u8]) -> io::Result<usize>;
    /// `accept(2)` on the listener.
    fn accept(&self, listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)>;
    /// `epoll_wait(2)` via the reactor's [`Poller`]. Unlike
    /// [`Poller::wait`], an implementation may surface `EINTR` as an
    /// error — the reactor loop must tolerate it.
    fn epoll_wait(&self, poller: &Poller, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()>;
    /// One eventfd wake (an 8-byte write). A lost wake must only cost
    /// latency, never liveness: the worker park and the reactor poll
    /// both re-check on a timeout.
    fn wake(&self, efd: &File) -> io::Result<()>;
}

/// The production [`SysIo`]: the plain syscalls, no interposition.
#[derive(Debug, Default)]
pub struct RealSysIo;

impl SysIo for RealSysIo {
    fn read(&self, stream: &TcpStream, buf: &mut [u8]) -> io::Result<usize> {
        (&mut &*stream).read(buf)
    }

    fn write(&self, stream: &TcpStream, buf: &[u8]) -> io::Result<usize> {
        (&mut &*stream).write(buf)
    }

    fn accept(&self, listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)> {
        listener.accept()
    }

    fn epoll_wait(&self, poller: &Poller, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        poller.wait(out, timeout_ms)
    }

    fn wake(&self, efd: &File) -> io::Result<()> {
        (&mut &*efd).write_all(&1u64.to_ne_bytes())
    }
}

/// A hook called at chosen points inside worker and reactor threads.
/// The testkit's panic-injection chaos uses it to prove the
/// supervision story; the default methods do nothing, and production
/// configs carry no hook at all.
pub trait WorkerHook: Send + Sync {
    /// Called by a shard worker just before parsing + executing a
    /// frame. May panic — the worker supervisor must recover.
    fn before_execute(&self, _shard: usize, _frame: &[u8]) {}
    /// Called by a reactor at the top of each poll round. May panic —
    /// the reactor supervisor must recover.
    fn before_poll(&self, _reactor: usize) {}
}

/// Locks `m`, shrugging off poison: the network plane's shared state
/// (inboxes, park flags) is safe under a panicking peer — every
/// mutation is complete before the lock is released or trivially
/// idempotent — so a worker that panicked while a reactor held the
/// lock must not cascade-kill the whole frontend.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ----------------------------------------------------------------------
// SPSC ring: reactor → shard-worker request queue.
// ----------------------------------------------------------------------

struct SpscInner<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer cursor: slots `[head, tail)` are initialised.
    head: AtomicUsize,
    /// Producer cursor.
    tail: AtomicUsize,
}

// One producer and one consumer touch disjoint slots, synchronised by
// the Release/Acquire pair on `tail` (push → pop) and `head` (pop →
// push reuse), so sharing the ring across the two threads is sound.
unsafe impl<T: Send> Sync for SpscInner<T> {}
unsafe impl<T: Send> Send for SpscInner<T> {}

impl<T> Drop for SpscInner<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drain any undelivered items.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut i = head;
        while i != tail {
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// The producer half (held by exactly one reactor thread).
pub(crate) struct SpscTx<T>(Arc<SpscInner<T>>);
/// The consumer half (held by exactly one shard worker).
pub(crate) struct SpscRx<T>(Arc<SpscInner<T>>);

/// A bounded single-producer/single-consumer ring of `capacity`
/// (rounded up to a power of two) slots.
pub(crate) fn spsc<T>(capacity: usize) -> (SpscTx<T>, SpscRx<T>) {
    let cap = capacity.next_power_of_two().max(2);
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(SpscInner {
        mask: cap - 1,
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (SpscTx(Arc::clone(&inner)), SpscRx(inner))
}

impl<T> SpscTx<T> {
    /// Pushes `v`, or returns it when the ring is full.
    pub fn push(&self, v: T) -> Result<(), T> {
        let tail = self.0.tail.load(Ordering::Relaxed);
        let head = self.0.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.0.mask {
            return Err(v);
        }
        unsafe { (*self.0.slots[tail & self.0.mask].get()).write(v) };
        self.0.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }
}

impl<T> SpscRx<T> {
    pub fn pop(&self) -> Option<T> {
        let head = self.0.head.load(Ordering::Relaxed);
        let tail = self.0.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let v = unsafe { (*self.0.slots[head & self.0.mask].get()).assume_init_read() };
        self.0.head.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }
}

// ----------------------------------------------------------------------
// Shared plumbing.
// ----------------------------------------------------------------------

/// One framed request in flight from a reactor to a shard worker.
struct ShardReq {
    /// Index of the reactor that owns the connection.
    reactor: u32,
    /// Connection id (epoll token; never reused within a frontend).
    conn: u64,
    /// Per-connection sequence number, assigned at framing time.
    seq: u64,
    /// The raw request line (terminator stripped).
    frame: Vec<u8>,
}

/// One completed reply on its way back to a reactor.
struct Reply {
    conn: u64,
    seq: u64,
    bytes: Vec<u8>,
    /// Close the connection once this reply (and everything before
    /// it) has been flushed — set for `SHUTDOWN` and protocol-fatal
    /// errors.
    close_after: bool,
}

/// Cross-thread mailbox for one reactor: workers post replies here,
/// and the accepting reactor posts handed-off connections.
struct Inbox {
    replies: Vec<Reply>,
    conns: Vec<TcpStream>,
}

struct ReactorShared {
    inbox: Mutex<Inbox>,
    wake: File,
    /// The syscall shim the wake write goes through (same instance the
    /// owning reactor uses), so fault plans can drop wakes too.
    io: Arc<dyn SysIo>,
}

impl ReactorShared {
    fn wake(&self) {
        // A failed (or deliberately dropped) wake is tolerated: the
        // reactor polls on a 50 ms timeout and the workers park with a
        // 25 ms timeout, so a lost edge costs latency, not liveness.
        let _ = self.io.wake(&self.wake);
    }
}

/// Shard-worker parking: reactors set the flag and notify after
/// pushing work; the worker re-checks with a timeout so a lost wake
/// can never wedge it.
struct Park {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Park {
    fn notify(&self) {
        *lock_unpoisoned(&self.flag) = true;
        self.cv.notify_one();
    }
}

/// Frontend counters, all plain atomics (no telemetry dependency) so
/// the testkit can certify the network plane's conservation laws:
/// once traffic stops, `requests_total == replies_total` and
/// `parked_frames == 0` means the plane is quiescent, and
/// `accepted_total - closed_total == open_conns` at all times.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted_total: AtomicU64,
    /// Connections fully closed (fd released).
    pub closed_total: AtomicU64,
    /// Currently open connections (gauge).
    pub open_conns: AtomicU64,
    /// Frames assigned a sequence number (routed or parked).
    pub requests_total: AtomicU64,
    /// Replies accounted for: received from a worker, generated
    /// inline by a reactor, or discarded because their connection
    /// died first.
    pub replies_total: AtomicU64,
    /// Non-empty drain passes across all shard workers.
    pub batches_total: AtomicU64,
    /// Requests executed inside those passes (`/ batches_total` =
    /// mean batch size).
    pub batched_requests_total: AtomicU64,
    /// Transitions of a connection into the reads-paused state.
    pub paused_reads_total: AtomicU64,
    /// Frames that found their shard ring full and parked.
    pub route_stalls_total: AtomicU64,
    /// Currently parked frames (gauge; at most one per connection).
    pub parked_frames: AtomicU64,
    /// High-water mark of any single connection's write buffer.
    pub max_write_buf_bytes: AtomicU64,
    /// Times the listener stood down (fd exhaustion backoff or the
    /// hard overload limit) instead of busy-spinning on accept.
    pub accept_backoffs_total: AtomicU64,
    /// Connections evicted by the idle or write-stall deadline.
    pub conn_deadline_closes_total: AtomicU64,
    /// Frames answered with `-ERR overloaded` instead of being
    /// executed (global in-flight high water, or a park that outlived
    /// its bound).
    pub overload_sheds_total: AtomicU64,
    /// Inline protocol-fatal error replies (oversize / malformed
    /// stream) generated by a reactor without shard execution.
    pub fatal_replies_total: AtomicU64,
    /// Parked frames discarded because their connection closed before
    /// the shard ring ever had room.
    pub parked_discards_total: AtomicU64,
    /// In-flight requests answered with an error reply because their
    /// shard worker panicked mid-execution.
    pub panic_error_replies_total: AtomicU64,
    /// Shard workers restarted by the supervisor after a panic.
    pub worker_restarts_total: AtomicU64,
    /// Reactor threads restarted by the supervisor after a panic.
    pub reactor_restarts_total: AtomicU64,
    /// Set when a client issued `SHUTDOWN` (the binary watches this).
    pub shutdown_requested: AtomicBool,
}

impl NetStats {
    /// Whether the plane has no work in flight. Only meaningful once
    /// producers have stopped sending (counters are monotonic, so a
    /// quiescent reading cannot be a race once traffic has ceased).
    pub fn quiesced(&self) -> bool {
        self.parked_frames.load(Ordering::Acquire) == 0
            && self.requests_total.load(Ordering::Acquire)
                == self.replies_total.load(Ordering::Acquire)
    }

    /// The fault-accounting ledger: every reply has exactly one
    /// origin, so at quiescence
    ///
    /// ```text
    /// replies_total == batched_requests_total   (executed at a shard)
    ///                + overload_sheds_total     (shed at admission)
    ///                + fatal_replies_total      (protocol-fatal inline)
    ///                + parked_discards_total    (conn died while parked)
    ///                + panic_error_replies_total(worker panicked on it)
    /// ```
    ///
    /// Returns `(replies_total, sum-of-origins)`; the testkit's
    /// network-plane family asserts the two sides agree, which is the
    /// "shed + closed + completed == offered" law (offered ==
    /// `requests_total` == `replies_total` once quiescent).
    pub fn ledger(&self) -> (u64, u64) {
        let lhs = self.replies_total.load(Ordering::Acquire);
        let rhs = self.batched_requests_total.load(Ordering::Acquire)
            + self.overload_sheds_total.load(Ordering::Acquire)
            + self.fatal_replies_total.load(Ordering::Acquire)
            + self.parked_discards_total.load(Ordering::Acquire)
            + self.panic_error_replies_total.load(Ordering::Acquire);
        (lhs, rhs)
    }
}

/// The network plane's telemetry registry (label `net`). The
/// fault-plane *counters* are true mirrors incremented at the same
/// site as their [`NetStats`] ground truth (the metrics-consistency
/// invariant family certifies the two agree); the traffic *gauges*
/// are set from ground truth on [`NetMetrics::refresh`], which runs
/// before every `STATS` snapshot.
pub struct NetMetrics {
    registry: Registry,
    /// Mirror of [`NetStats::accept_backoffs_total`].
    pub accept_backoffs: Arc<Counter>,
    /// Mirror of [`NetStats::conn_deadline_closes_total`].
    pub conn_deadline_closes: Arc<Counter>,
    /// Mirror of [`NetStats::overload_sheds_total`].
    pub overload_sheds: Arc<Counter>,
    /// Mirror of [`NetStats::worker_restarts_total`].
    pub worker_restarts: Arc<Counter>,
    /// Mirror of [`NetStats::reactor_restarts_total`].
    pub reactor_restarts: Arc<Counter>,
    /// Mirror of [`NetStats::panic_error_replies_total`].
    pub panic_error_replies: Arc<Counter>,
    /// [`NetStats::requests_total`] at last refresh.
    pub requests: Arc<Gauge>,
    /// [`NetStats::replies_total`] at last refresh.
    pub replies: Arc<Gauge>,
    /// [`NetStats::open_conns`] at last refresh.
    pub open_conns: Arc<Gauge>,
    /// [`NetStats::parked_frames`] at last refresh.
    pub parked_frames: Arc<Gauge>,
}

impl NetMetrics {
    fn new() -> Self {
        let registry = Registry::new("net");
        NetMetrics {
            accept_backoffs: registry.counter("accept_backoffs"),
            conn_deadline_closes: registry.counter("conn_deadline_closes"),
            overload_sheds: registry.counter("overload_sheds"),
            worker_restarts: registry.counter("worker_restarts"),
            reactor_restarts: registry.counter("reactor_restarts"),
            panic_error_replies: registry.counter("panic_error_replies"),
            requests: registry.gauge("requests"),
            replies: registry.gauge("replies"),
            open_conns: registry.gauge("open_conns"),
            parked_frames: registry.gauge("parked_frames"),
            registry,
        }
    }

    /// Sets the traffic gauges from ground truth.
    pub fn refresh(&self, stats: &NetStats) {
        self.requests
            .set(stats.requests_total.load(Ordering::Acquire) as i64);
        self.replies
            .set(stats.replies_total.load(Ordering::Acquire) as i64);
        self.open_conns
            .set(stats.open_conns.load(Ordering::Acquire) as i64);
        self.parked_frames
            .set(stats.parked_frames.load(Ordering::Acquire) as i64);
    }

    /// The underlying registry (for snapshots and rendering).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl std::fmt::Debug for NetMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetMetrics")
            .field("overload_sheds", &self.overload_sheds.get())
            .field("conn_deadline_closes", &self.conn_deadline_closes.get())
            .field("worker_restarts", &self.worker_restarts.get())
            .finish_non_exhaustive()
    }
}

/// Tuning for a [`ReactorFrontend`].
#[derive(Clone)]
pub struct ReactorConfig {
    /// Reactor (event-loop) threads; `0` picks
    /// `available_parallelism / 2` clamped to `1..=4`.
    pub reactors: usize,
    /// Per-connection cap on frames routed but not yet sequenced into
    /// the write buffer; reads pause at the cap.
    pub max_inflight_per_conn: usize,
    /// Per-connection write-buffer high-water mark (bytes); reads
    /// pause above it until the client drains.
    pub write_highwater: usize,
    /// Capacity of each reactor→shard request ring.
    pub ring_capacity: usize,
    /// Max requests a shard worker takes from one ring per pass.
    pub batch_limit: usize,
    /// Max request-line length; longer frames are a protocol error
    /// and close the connection (bounds read-buffer growth).
    pub max_frame_len: usize,
    /// `SO_SNDBUF` applied to every accepted socket (`None` keeps the
    /// kernel default). Shrinking it makes write-side backpressure
    /// engage at small data volumes — the testkit's slow-reader
    /// scenario depends on this; production leaves it alone.
    pub so_sndbuf: Option<usize>,
    /// Evict a connection that has sent no bytes for this long
    /// (`None` disables — the default, so embedders opt in; the
    /// `kv_server` binary enables it with `--idle-timeout-ms`).
    pub idle_timeout: Option<Duration>,
    /// Evict a connection whose pending write buffer has made no
    /// progress for this long — a paused slow reader is released
    /// after a bound instead of holding buffers forever (`None`
    /// disables).
    pub write_stall_timeout: Option<Duration>,
    /// Global in-flight high-water mark (`requests - replies`): at or
    /// above it, newly framed requests are shed with an immediate
    /// `-ERR overloaded` reply instead of being routed (`None`
    /// disables).
    pub overload_shed_inflight: Option<u64>,
    /// The harder limit: at or above this global in-flight count the
    /// listener stands down for the accept backoff (100 ms) instead
    /// of accepting more connections (`None` disables).
    pub overload_accept_inflight: Option<u64>,
    /// A frame parked on a full shard ring for longer than this is
    /// shed with `-ERR overloaded` instead of waiting forever —
    /// "the ring stays full" becomes brownout, not a wedged
    /// connection (`None` waits indefinitely).
    pub park_shed_after: Option<Duration>,
    /// The syscall shim every raw I/O call goes through. Production
    /// (the default) is [`RealSysIo`]; the testkit injects faults here.
    pub io: Arc<dyn SysIo>,
    /// Chaos hook run inside worker/reactor threads (panic
    /// injection). `None` in production.
    pub hook: Option<Arc<dyn WorkerHook>>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            reactors: 0,
            max_inflight_per_conn: 128,
            write_highwater: 256 << 10,
            ring_capacity: 4096,
            batch_limit: 256,
            max_frame_len: 1 << 20,
            so_sndbuf: None,
            idle_timeout: None,
            write_stall_timeout: None,
            overload_shed_inflight: None,
            overload_accept_inflight: None,
            park_shed_after: None,
            io: Arc::new(RealSysIo),
            hook: None,
        }
    }
}

impl std::fmt::Debug for ReactorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorConfig")
            .field("reactors", &self.reactors)
            .field("max_inflight_per_conn", &self.max_inflight_per_conn)
            .field("write_highwater", &self.write_highwater)
            .field("ring_capacity", &self.ring_capacity)
            .field("batch_limit", &self.batch_limit)
            .field("max_frame_len", &self.max_frame_len)
            .field("so_sndbuf", &self.so_sndbuf)
            .field("idle_timeout", &self.idle_timeout)
            .field("write_stall_timeout", &self.write_stall_timeout)
            .field("overload_shed_inflight", &self.overload_shed_inflight)
            .field("overload_accept_inflight", &self.overload_accept_inflight)
            .field("park_shed_after", &self.park_shed_after)
            .field("hook", &self.hook.is_some())
            .finish_non_exhaustive()
    }
}

fn auto_reactors() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get() / 2)
        .unwrap_or(1)
        .clamp(1, 4)
}

// ----------------------------------------------------------------------
// Timer wheel: connection deadlines.
// ----------------------------------------------------------------------

/// Which per-connection deadline a wheel entry tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DeadlineKind {
    /// No bytes received for `idle_timeout`.
    Idle,
    /// Pending write bytes made no progress for `write_stall_timeout`.
    WriteStall,
}

const WHEEL_SLOTS: usize = 128;
const WHEEL_TICK_MS: u64 = 10;

/// A single-level lazy timer wheel. Entries are *hints*, not truth:
/// the connection itself holds the authoritative deadline, which the
/// hot path refreshes with a plain store (no wheel churn per read or
/// write). When a hint fires, the reactor compares against the
/// authoritative deadline and either evicts, re-inserts further out
/// (activity pushed the deadline), or drops the hint (disarmed or
/// closed). Deadlines beyond the wheel's 1.28 s horizon simply take a
/// few laps. At most one hint per `(connection, kind)` is live.
struct TimerWheel {
    slots: Vec<Vec<(u64, DeadlineKind)>>,
    cursor: usize,
    last_tick: Instant,
}

impl TimerWheel {
    fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            last_tick: now,
        }
    }

    fn insert(&mut self, now: Instant, deadline: Instant, id: u64, kind: DeadlineKind) {
        let delay_ms = deadline.saturating_duration_since(now).as_millis() as u64;
        // +1 so an entry never lands on the cursor's own slot (it
        // would fire a tick early); cap at the horizon.
        let ticks = (delay_ms / WHEEL_TICK_MS + 1).min(WHEEL_SLOTS as u64 - 1) as usize;
        self.slots[(self.cursor + ticks) % WHEEL_SLOTS].push((id, kind));
    }

    /// Advances the cursor past every elapsed tick, draining due
    /// hints into `out`.
    fn expire_into(&mut self, now: Instant, out: &mut Vec<(u64, DeadlineKind)>) {
        let elapsed_ms = now.saturating_duration_since(self.last_tick).as_millis() as u64;
        let ticks = elapsed_ms / WHEEL_TICK_MS;
        if ticks == 0 {
            return;
        }
        self.last_tick += Duration::from_millis(ticks * WHEEL_TICK_MS);
        // A full lap visits every slot; more laps add nothing.
        for _ in 0..ticks.min(WHEEL_SLOTS as u64) {
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            out.append(&mut self.slots[self.cursor]);
        }
    }
}

// ----------------------------------------------------------------------
// Connection state machine.
// ----------------------------------------------------------------------

/// Per-connection state. Lifecycle:
///
/// ```text
/// Open ──read EOF/RDHUP──▶ Draining (answer what was pipelined)
///   │                         │ in-flight == 0 && write buf empty
///   │ write error / HUP /     ▼
///   └─────────────────────▶ Closed (fd deleted, counters settled)
/// ```
///
/// `close_after` (SHUTDOWN / protocol-fatal error) also enters
/// Draining: reads stop, queued replies flush, then the fd closes.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet framed; `read_pos` is the consumed
    /// prefix (compacted opportunistically).
    read_buf: Vec<u8>,
    read_pos: usize,
    /// A frame that found its shard ring full: retried every loop
    /// until it fits. At most one — framing stops while parked.
    parked: Option<(usize, ShardReq)>,
    /// Encoded replies awaiting the socket; `write_pos` is flushed.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Out-of-order completions held until `next_write` catches up.
    reorder: BTreeMap<u64, Reply>,
    /// Next sequence number to assign at framing.
    next_seq: u64,
    /// Next sequence number to append to `write_buf`.
    next_write: u64,
    /// Interest currently registered with epoll.
    want_read: bool,
    want_write: bool,
    /// Reads paused by backpressure (write buffer, in-flight cap, or
    /// a parked frame).
    paused: bool,
    /// Peer half-closed (EOF seen); drain and close.
    peer_closed: bool,
    /// Stop reading; close once fully flushed.
    close_after: bool,
    /// Pending re-examination by `update_conn`.
    dirty: bool,
    /// When the current park began (for the park-shed bound).
    parked_since: Option<Instant>,
    /// Authoritative idle deadline (refreshed on every read).
    idle_deadline: Option<Instant>,
    /// Authoritative write-stall deadline (refreshed on write
    /// progress; disarmed when the write buffer drains).
    write_deadline: Option<Instant>,
    /// Whether a wheel hint for each kind is outstanding (at most one).
    idle_hint: bool,
    write_hint: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            read_pos: 0,
            parked: None,
            write_buf: Vec::new(),
            write_pos: 0,
            reorder: BTreeMap::new(),
            next_seq: 0,
            next_write: 0,
            want_read: true,
            want_write: false,
            paused: false,
            peer_closed: false,
            close_after: false,
            dirty: false,
            parked_since: None,
            idle_deadline: None,
            write_deadline: None,
            idle_hint: false,
            write_hint: false,
        }
    }

    /// Frames routed (or parked) but not yet sequenced into the write
    /// buffer.
    fn inflight(&self) -> u64 {
        self.next_seq - self.next_write
    }

    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }
}

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

struct Reactor {
    idx: usize,
    poller: Poller,
    /// Every reactor's mailbox (for round-robin connection handoff);
    /// `shared[idx]` is ours.
    shared: Vec<Arc<ReactorShared>>,
    listener: Option<TcpListener>,
    engine: Arc<ShardedStore>,
    /// Request ring per shard (we are the single producer).
    rings: Vec<SpscTx<ShardReq>>,
    parks: Vec<Arc<Park>>,
    conns: HashMap<u64, Conn>,
    conn_ids: Arc<AtomicU64>,
    stats: Arc<NetStats>,
    metrics: Arc<NetMetrics>,
    stop: Arc<AtomicBool>,
    cfg: ReactorConfig,
    /// Shards with new work this poll round (notified once).
    notify: Vec<bool>,
    /// Connections to re-examine this round.
    dirty: Vec<u64>,
    /// Connections with a parked frame.
    stalled: Vec<u64>,
    next_rr: usize,
    /// Set after a fatal `accept` error (EMFILE/ENFILE): the listener
    /// is deregistered until this deadline so a level-triggered epoll
    /// doesn't busy-spin on the un-acceptable readiness condition.
    accept_backoff_until: Option<Instant>,
    /// Deadline hints for idle / write-stall eviction.
    wheel: TimerWheel,
}

/// How long the listener stays deregistered after fd exhaustion
/// before retrying `accept`; closed connections free fds meanwhile.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(100);

impl Reactor {
    /// The supervisor shell: runs the event loop under `catch_unwind`
    /// and, if it panics (a bug, or injected via
    /// [`WorkerHook::before_poll`]), recovers and goes again. A
    /// reactor panic may leave per-connection state half-mutated, so
    /// recovery closes this reactor's connections (settling every
    /// counter) and resumes with a clean table — the other reactors,
    /// the workers, and the listener keep serving throughout.
    fn run(mut self) {
        loop {
            let crashed = catch_unwind(AssertUnwindSafe(|| self.run_loop())).is_err();
            if !crashed {
                break;
            }
            self.stats
                .reactor_restarts_total
                .fetch_add(1, Ordering::Relaxed);
            self.metrics.reactor_restarts.inc();
            self.recover_after_panic();
            if self.stop.load(Ordering::Acquire) {
                break;
            }
        }
        // Teardown: release every fd and settle the gauges.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close_conn(id);
        }
    }

    fn run_loop(&mut self) {
        let mut events = Vec::with_capacity(256);
        loop {
            if let Some(hook) = &self.cfg.hook {
                hook.before_poll(self.idx);
            }
            match self.cfg.io.epoll_wait(&self.poller, &mut events, 50) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    // `Poller::wait` absorbs real EINTR; a shim may
                    // surface it raw. Treat as an empty round.
                    events.clear();
                }
                Err(_) => break,
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake(),
                    id => {
                        if ev.hangup && !ev.readable {
                            self.close_conn(id);
                            continue;
                        }
                        if ev.readable {
                            self.handle_read(id);
                        }
                        if ev.writable {
                            self.mark_dirty(id);
                        }
                    }
                }
            }
            self.drain_inbox();
            self.retry_parked();
            self.flush_updates();
            self.check_deadlines();
            self.flush_notifications();
            self.maybe_resume_listener();
            if self.stop.load(Ordering::Acquire) {
                break;
            }
        }
    }

    /// Post-panic cleanup: close every connection this reactor owns
    /// (frames already at shards come back as replies for dead conn
    /// ids and are accounted normally) and reset the round-scoped
    /// scratch state, whose contents may be torn mid-update.
    fn recover_after_panic(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close_conn(id);
        }
        self.dirty.clear();
        self.stalled.clear();
        for n in self.notify.iter_mut() {
            *n = false;
        }
        self.wheel = TimerWheel::new(Instant::now());
    }

    /// Fires due deadline hints; evicts connections whose
    /// authoritative deadline has truly passed.
    fn check_deadlines(&mut self) {
        if self.cfg.idle_timeout.is_none() && self.cfg.write_stall_timeout.is_none() {
            return;
        }
        let now = Instant::now();
        let mut due = Vec::new();
        self.wheel.expire_into(now, &mut due);
        for (id, kind) in due {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue; // Closed since the hint was planted.
            };
            let armed = match kind {
                DeadlineKind::Idle => {
                    conn.idle_hint = false;
                    conn.idle_deadline
                }
                DeadlineKind::WriteStall => {
                    conn.write_hint = false;
                    conn.write_deadline
                }
            };
            match armed {
                None => {} // Disarmed (e.g. the write buffer drained).
                Some(deadline) if deadline > now => {
                    // Activity pushed the deadline; re-plant the hint.
                    match kind {
                        DeadlineKind::Idle => conn.idle_hint = true,
                        DeadlineKind::WriteStall => conn.write_hint = true,
                    }
                    self.wheel.insert(now, deadline, id, kind);
                }
                Some(_) => {
                    self.stats
                        .conn_deadline_closes_total
                        .fetch_add(1, Ordering::Relaxed);
                    self.metrics.conn_deadline_closes.inc();
                    self.close_conn(id);
                }
            }
        }
    }

    /// Global in-flight (offered but unanswered) frames, across every
    /// reactor. Relaxed loads race by a frame or two — admission
    /// control is a dam, not a turnstile.
    fn global_inflight(&self) -> u64 {
        self.stats
            .requests_total
            .load(Ordering::Relaxed)
            .saturating_sub(self.stats.replies_total.load(Ordering::Relaxed))
    }

    fn mark_dirty(&mut self, id: u64) {
        if let Some(conn) = self.conns.get_mut(&id) {
            if !conn.dirty {
                conn.dirty = true;
                self.dirty.push(id);
            }
        }
    }

    // -- accept / handoff ------------------------------------------------

    fn accept_ready(&mut self) {
        // The hard overload limit: past it, stop accepting entirely
        // for a backoff period — the shed path below keeps existing
        // clients browned out, this keeps the accept queue from
        // feeding the fire.
        if let Some(limit) = self.cfg.overload_accept_inflight {
            if self.global_inflight() >= limit {
                self.pause_listener();
                return;
            }
        }
        loop {
            match self
                .cfg
                .io
                .accept(self.listener.as_ref().expect("listener event"))
            {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    self.stats.accepted_total.fetch_add(1, Ordering::Relaxed);
                    let target = self.next_rr % self.shared.len();
                    self.next_rr += 1;
                    if target == self.idx {
                        self.register_conn(stream);
                    } else {
                        lock_unpoisoned(&self.shared[target].inbox)
                            .conns
                            .push(stream);
                        self.shared[target].wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EMFILE/ENFILE and friends: the pending
                    // connection stays in the accept queue, so a
                    // level-triggered listener would be re-reported
                    // readable on every `epoll_wait` and spin this
                    // reactor at 100% CPU. Stand the listener down
                    // and retry after a backoff — closing connections
                    // frees fds in the meantime.
                    self.pause_listener();
                    break;
                }
            }
        }
    }

    fn pause_listener(&mut self) {
        if self.accept_backoff_until.is_some() {
            return;
        }
        if let Some(listener) = &self.listener {
            let _ = self.poller.delete(listener.as_raw_fd());
        }
        self.stats
            .accept_backoffs_total
            .fetch_add(1, Ordering::Relaxed);
        self.metrics.accept_backoffs.inc();
        self.accept_backoff_until = Some(Instant::now() + ACCEPT_BACKOFF);
    }

    /// Re-registers a backed-off listener once its deadline passes.
    /// Called every loop round; the 50 ms `epoll_wait` timeout bounds
    /// the extra latency. If registration itself fails the backoff is
    /// extended rather than spinning on `epoll_ctl`.
    fn maybe_resume_listener(&mut self) {
        let Some(deadline) = self.accept_backoff_until else {
            return;
        };
        if Instant::now() < deadline {
            return;
        }
        self.accept_backoff_until = None;
        if let Some(listener) = &self.listener {
            if self
                .poller
                .add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)
                .is_err()
            {
                self.accept_backoff_until = Some(Instant::now() + ACCEPT_BACKOFF);
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if let Some(bytes) = self.cfg.so_sndbuf {
            let _ = set_sock_buf(stream.as_raw_fd(), sys::SO_SNDBUF, bytes);
        }
        let id = self.conn_ids.fetch_add(1, Ordering::Relaxed);
        if self
            .poller
            .add(stream.as_raw_fd(), id, true, false)
            .is_err()
        {
            // Registration failure (fd exhaustion): account the
            // connection as opened-and-closed so the gauges balance.
            self.stats.closed_total.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.stats.open_conns.fetch_add(1, Ordering::Relaxed);
        let mut conn = Conn::new(stream);
        if let Some(t) = self.cfg.idle_timeout {
            let now = Instant::now();
            conn.idle_deadline = Some(now + t);
            conn.idle_hint = true;
            self.wheel.insert(now, now + t, id, DeadlineKind::Idle);
        }
        self.conns.insert(id, conn);
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 8];
        while (&self.shared[self.idx].wake).read(&mut buf).is_ok() {}
    }

    fn drain_inbox(&mut self) {
        let (replies, new_conns) = {
            let mut inbox = lock_unpoisoned(&self.shared[self.idx].inbox);
            (
                std::mem::take(&mut inbox.replies),
                std::mem::take(&mut inbox.conns),
            )
        };
        for stream in new_conns {
            self.register_conn(stream);
        }
        for reply in replies {
            self.sequence_reply(reply);
        }
    }

    // -- read / frame / route --------------------------------------------

    fn handle_read(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if !conn.want_read {
            // Stale readiness from before a pause; ignore.
            self.mark_dirty(id);
            return;
        }
        loop {
            let old = conn.read_buf.len();
            conn.read_buf.resize(old + 16 * 1024, 0);
            match self.cfg.io.read(&conn.stream, &mut conn.read_buf[old..]) {
                Ok(0) => {
                    conn.read_buf.truncate(old);
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.truncate(old + n);
                    if let Some(t) = self.cfg.idle_timeout {
                        // Authoritative deadline only — the wheel hint
                        // planted at registration re-chases it lazily.
                        conn.idle_deadline = Some(Instant::now() + t);
                    }
                    // Level-triggered: leave any remainder for the
                    // next wakeup so one chatty socket can't starve
                    // its siblings.
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.read_buf.truncate(old);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    conn.read_buf.truncate(old);
                    continue;
                }
                Err(_) => {
                    conn.read_buf.truncate(old);
                    self.close_conn(id);
                    return;
                }
            }
        }
        self.process_frames(id);
        self.mark_dirty(id);
    }

    /// Frames and routes everything complete in `read_buf`, stopping
    /// at backpressure (parked frame / in-flight cap / write-buffer
    /// high water).
    fn process_frames(&mut self, id: u64) {
        let nshards = self.rings.len() as u64;
        // Admission control, sampled once per pass: past the global
        // in-flight high water, every frame this pass is shed with an
        // immediate error reply — the connection lives (brownout),
        // the work does not.
        let shed_now = matches!(
            self.cfg.overload_shed_inflight,
            Some(limit) if self.global_inflight() >= limit
        );
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.parked.is_some()
                || conn.close_after
                || conn.inflight() >= self.cfg.max_inflight_per_conn as u64
                || conn.pending_write() >= self.cfg.write_highwater
            {
                break;
            }
            let Some((frame, used)) = next_frame(&conn.read_buf[conn.read_pos..]) else {
                // No complete line. An over-long partial line can
                // never become a valid frame — fail fast instead of
                // buffering without bound.
                if conn.read_buf.len() - conn.read_pos > self.cfg.max_frame_len {
                    self.protocol_fatal(id, "request line too long");
                }
                break;
            };
            if frame.is_empty() {
                // Blank line: skipped without a reply, matching the
                // thread frontend.
                conn.read_pos += used;
                continue;
            }
            if frame.len() > self.cfg.max_frame_len {
                self.protocol_fatal(id, "request line too long");
                break;
            }
            if shed_now {
                conn.read_pos += used;
                let seq = conn.next_seq;
                conn.next_seq += 1;
                self.stats.requests_total.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .overload_sheds_total
                    .fetch_add(1, Ordering::Relaxed);
                self.metrics.overload_sheds.inc();
                let mut bytes = Vec::new();
                Response::Error("overloaded".into()).encode_into(&mut bytes);
                self.sequence_reply(Reply {
                    conn: id,
                    seq,
                    bytes,
                    close_after: false,
                });
                continue;
            }
            let shard = routing_key_of(frame)
                .map(|k| self.engine.shard_of(k))
                .unwrap_or((id % nshards) as usize);
            let seq = conn.next_seq;
            conn.next_seq += 1;
            self.stats.requests_total.fetch_add(1, Ordering::Relaxed);
            let req = ShardReq {
                reactor: self.idx as u32,
                conn: id,
                seq,
                frame: frame.to_vec(),
            };
            conn.read_pos += used;
            match self.rings[shard].push(req) {
                Ok(()) => self.notify[shard] = true,
                Err(req) => {
                    // Ring full: park and stop framing; retried every
                    // loop until the worker catches up (or the
                    // park-shed bound gives up on it).
                    conn.parked = Some((shard, req));
                    conn.parked_since = Some(Instant::now());
                    self.stats.parked_frames.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .route_stalls_total
                        .fetch_add(1, Ordering::Relaxed);
                    self.stalled.push(id);
                    break;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(&id) {
            // Compact the consumed prefix once it dominates the
            // buffer (or the buffer is fully consumed — the common
            // case — which makes this a free truncate).
            if conn.read_pos > 0
                && (conn.read_pos == conn.read_buf.len() || conn.read_pos >= 64 * 1024)
            {
                conn.read_buf.drain(..conn.read_pos);
                conn.read_pos = 0;
            }
        }
    }

    /// Emits an inline error reply for a malformed stream and flags
    /// the connection to close once it flushes.
    fn protocol_fatal(&mut self, id: u64, msg: &str) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        // Flag the connection fatal *now*, not when the error reply
        // sequences through the reorder buffer: the malformed bytes
        // are still in `read_buf`, so every later `process_frames`
        // pass would otherwise re-trip the same condition and emit a
        // duplicate error reply per reactor round until in-flight
        // replies land. The top-of-loop `close_after` check makes
        // this a one-shot.
        conn.close_after = true;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        self.stats.requests_total.fetch_add(1, Ordering::Relaxed);
        self.stats
            .fatal_replies_total
            .fetch_add(1, Ordering::Relaxed);
        let mut bytes = Vec::new();
        Response::Error(msg.into()).encode_into(&mut bytes);
        self.sequence_reply(Reply {
            conn: id,
            seq,
            bytes,
            close_after: true,
        });
    }

    fn retry_parked(&mut self) {
        if self.stalled.is_empty() {
            return;
        }
        let stalled = std::mem::take(&mut self.stalled);
        for id in stalled {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            let Some((shard, req)) = conn.parked.take() else {
                continue;
            };
            match self.rings[shard].push(req) {
                Ok(()) => {
                    self.stats.parked_frames.fetch_sub(1, Ordering::Relaxed);
                    self.notify[shard] = true;
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.parked_since = None;
                    }
                    // Unblocked: resume framing whatever else queued
                    // up behind the parked frame.
                    self.process_frames(id);
                    self.mark_dirty(id);
                }
                Err(req) => {
                    let Some(conn) = self.conns.get_mut(&id) else {
                        continue;
                    };
                    // The ring *stays* full: past the park-shed bound
                    // the frame is answered `-ERR overloaded` instead
                    // of waiting forever — its seq is already
                    // assigned, so the reply slots into order.
                    let give_up = matches!(
                        (self.cfg.park_shed_after, conn.parked_since),
                        (Some(bound), Some(since)) if since.elapsed() >= bound
                    );
                    if give_up {
                        conn.parked_since = None;
                        let seq = req.seq;
                        self.stats.parked_frames.fetch_sub(1, Ordering::Relaxed);
                        self.stats
                            .overload_sheds_total
                            .fetch_add(1, Ordering::Relaxed);
                        self.metrics.overload_sheds.inc();
                        let mut bytes = Vec::new();
                        Response::Error("overloaded".into()).encode_into(&mut bytes);
                        self.sequence_reply(Reply {
                            conn: id,
                            seq,
                            bytes,
                            close_after: false,
                        });
                        // The park no longer blocks framing; whatever
                        // queued behind it may now proceed (or shed).
                        self.process_frames(id);
                        self.mark_dirty(id);
                    } else {
                        conn.parked = Some((shard, req));
                        self.stalled.push(id);
                    }
                }
            }
        }
    }

    fn flush_notifications(&mut self) {
        for shard in 0..self.notify.len() {
            if self.notify[shard] {
                self.notify[shard] = false;
                self.parks[shard].notify();
            }
        }
    }

    // -- replies / writes ------------------------------------------------

    fn sequence_reply(&mut self, reply: Reply) {
        // Every reply is accounted even when its connection died
        // first — the quiescence invariant (`requests == replies`)
        // must converge through disconnects.
        self.stats.replies_total.fetch_add(1, Ordering::Relaxed);
        let id = reply.conn;
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        conn.reorder.insert(reply.seq, reply);
        while let Some(r) = conn.reorder.remove(&conn.next_write) {
            conn.write_buf.extend_from_slice(&r.bytes);
            conn.next_write += 1;
            if r.close_after {
                conn.close_after = true;
            }
        }
        self.stats
            .max_write_buf_bytes
            .fetch_max(conn.pending_write() as u64, Ordering::Relaxed);
        self.mark_dirty(id);
    }

    /// Re-examines every touched connection: flush, resume framing,
    /// settle pause state, sync epoll interest, close when drained.
    fn flush_updates(&mut self) {
        let dirty = std::mem::take(&mut self.dirty);
        for id in dirty {
            self.update_conn(id);
        }
    }

    fn update_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        conn.dirty = false;
        // Flush as much of the write buffer as the socket accepts.
        let mut broken = false;
        let mut wrote = false;
        while conn.write_pos < conn.write_buf.len() {
            match self
                .cfg
                .io
                .write(&conn.stream, &conn.write_buf[conn.write_pos..])
            {
                Ok(0) => {
                    broken = true;
                    break;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    wrote = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    broken = true;
                    break;
                }
            }
        }
        if broken {
            self.close_conn(id);
            return;
        }
        // Write-stall deadline: armed while bytes are pending, pushed
        // forward by progress, disarmed by a drained buffer. The
        // wheel hint is only (re)planted on arming — refreshes chase
        // the authoritative deadline lazily.
        if let Some(t) = self.cfg.write_stall_timeout {
            if conn.pending_write() == 0 {
                conn.write_deadline = None;
            } else if wrote || conn.write_deadline.is_none() {
                let now = Instant::now();
                conn.write_deadline = Some(now + t);
                if !conn.write_hint {
                    conn.write_hint = true;
                    self.wheel
                        .insert(now, now + t, id, DeadlineKind::WriteStall);
                }
            }
        }
        if conn.write_pos == conn.write_buf.len() && conn.write_pos > 0 {
            conn.write_buf.clear();
            conn.write_pos = 0;
            // A burst against a slow reader can balloon the buffer;
            // give the excess back once drained.
            if conn.write_buf.capacity() > self.cfg.write_highwater * 2 {
                conn.write_buf.shrink_to(self.cfg.write_highwater);
            }
        }
        // Backpressure may have cleared (replies drained, frame
        // unparked): resume framing pipelined bytes already buffered.
        // No `paused` guard here — that flag is stale until recomputed
        // below, and gating on it can strand buffered frames forever
        // when a pause clears entirely within one pass (all in-flight
        // replies land and flush at once: no further epoll event will
        // fire for an idle, fully-drained socket). `process_frames`
        // re-checks every backpressure condition itself and returns
        // immediately if any still holds.
        if conn.read_pos < conn.read_buf.len() {
            self.process_frames(id);
        }
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        // Fully drained and told to finish → close.
        if (conn.peer_closed || conn.close_after)
            && conn.inflight() == 0
            && conn.parked.is_none()
            && conn.pending_write() == 0
        {
            self.close_conn(id);
            return;
        }
        // Settle the pause state and epoll interest.
        let paused = conn.parked.is_some()
            || conn.inflight() >= self.cfg.max_inflight_per_conn as u64
            || conn.pending_write() >= self.cfg.write_highwater;
        if paused && !conn.paused {
            self.stats
                .paused_reads_total
                .fetch_add(1, Ordering::Relaxed);
        }
        conn.paused = paused;
        let want_read = !paused && !conn.peer_closed && !conn.close_after;
        let want_write = conn.pending_write() > 0;
        if want_read != conn.want_read || want_write != conn.want_write {
            conn.want_read = want_read;
            conn.want_write = want_write;
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), id, want_read, want_write)
                .is_err()
            {
                self.close_conn(id);
            }
        }
    }

    fn close_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.remove(&id) else {
            return;
        };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        // A parked frame never reached its shard: account its "reply"
        // here so the quiescence counters still converge, and ledger
        // it as a discard (offered, then closed unanswered).
        if conn.parked.is_some() {
            self.stats.parked_frames.fetch_sub(1, Ordering::Relaxed);
            self.stats.replies_total.fetch_add(1, Ordering::Relaxed);
            self.stats
                .parked_discards_total
                .fetch_add(1, Ordering::Relaxed);
        }
        self.stats.closed_total.fetch_add(1, Ordering::Relaxed);
        self.stats.open_conns.fetch_sub(1, Ordering::Relaxed);
        // Frames already at shards will come back as replies for a
        // dead conn id and be counted in `sequence_reply`; reorder
        // entries were counted when they arrived. Nothing else to do.
    }
}

// ----------------------------------------------------------------------
// Shard workers.
// ----------------------------------------------------------------------

struct WorkerCtx {
    shard: usize,
    engine: Arc<ShardedStore>,
    rings: Vec<SpscRx<ShardReq>>,
    park: Arc<Park>,
    reactors: Vec<Arc<ReactorShared>>,
    stats: Arc<NetStats>,
    metrics: Arc<NetMetrics>,
    stop: Arc<AtomicBool>,
    batch_limit: usize,
    hook: Option<Arc<dyn WorkerHook>>,
}

/// Supervisor-owned worker state, kept *outside* the `catch_unwind`
/// boundary so a panic cannot destroy it: replies already executed
/// but not yet posted, and the identity of the request that was
/// mid-execution when the roof fell in.
struct WorkerState {
    out: Vec<Vec<Reply>>,
    /// `(reactor, conn, seq)` of the in-flight request.
    inflight: Option<(u32, u64, u64)>,
}

/// The supervisor shell around [`worker_loop`]: on a panic (an engine
/// bug, or injected via [`WorkerHook::before_execute`]) it answers
/// the in-flight request with a clean error reply, posts whatever the
/// crashed pass had already completed, and restarts the loop. The
/// other shards never stop serving.
fn shard_worker(ctx: WorkerCtx) {
    let mut st = WorkerState {
        out: (0..ctx.reactors.len()).map(|_| Vec::new()).collect(),
        inflight: None,
    };
    loop {
        let crashed = catch_unwind(AssertUnwindSafe(|| worker_loop(&ctx, &mut st))).is_err();
        if !crashed {
            break;
        }
        ctx.stats
            .worker_restarts_total
            .fetch_add(1, Ordering::Relaxed);
        ctx.metrics.worker_restarts.inc();
        if let Some((reactor, conn, seq)) = st.inflight.take() {
            // The client sees a whole, correctly-sequenced error line
            // — never a torn stream or a hole in its pipeline.
            ctx.stats
                .panic_error_replies_total
                .fetch_add(1, Ordering::Relaxed);
            ctx.metrics.panic_error_replies.inc();
            let mut bytes = Vec::new();
            Response::Error("shard worker restarted; request aborted".into())
                .encode_into(&mut bytes);
            st.out[reactor as usize].push(Reply {
                conn,
                seq,
                bytes,
                close_after: false,
            });
        }
        post_replies(&ctx, &mut st.out);
    }
}

fn worker_loop(ctx: &WorkerCtx, st: &mut WorkerState) {
    loop {
        let mut drained = 0usize;
        for (r, ring) in ctx.rings.iter().enumerate() {
            let mut taken = 0usize;
            while taken < ctx.batch_limit {
                let Some(req) = ring.pop() else { break };
                debug_assert_eq!(req.reactor as usize, r);
                st.inflight = Some((req.reactor, req.conn, req.seq));
                if let Some(hook) = &ctx.hook {
                    hook.before_execute(ctx.shard, &req.frame);
                }
                let (bytes, close_after) = execute_frame(ctx, &req.frame);
                // Counted per request, not per batch: a panic
                // mid-batch must not lose the ledger's record of what
                // actually executed.
                ctx.stats
                    .batched_requests_total
                    .fetch_add(1, Ordering::Relaxed);
                st.out[r].push(Reply {
                    conn: req.conn,
                    seq: req.seq,
                    bytes,
                    close_after,
                });
                st.inflight = None;
                taken += 1;
            }
            drained += taken;
        }
        if drained > 0 {
            ctx.stats.batches_total.fetch_add(1, Ordering::Relaxed);
            post_replies(ctx, &mut st.out);
            continue;
        }
        if ctx.stop.load(Ordering::Acquire) {
            break;
        }
        // Idle: park until a reactor signals, with a timeout so a
        // missed notify (or shutdown) can't wedge the worker.
        let mut flag = lock_unpoisoned(&ctx.park.flag);
        while !*flag {
            let (f, timeout) = ctx
                .park
                .cv
                .wait_timeout(flag, Duration::from_millis(25))
                .unwrap_or_else(PoisonError::into_inner);
            flag = f;
            if timeout.timed_out() {
                break;
            }
        }
        *flag = false;
    }
}

/// One lock + one wake per reactor per batch, however many replies it
/// carried.
fn post_replies(ctx: &WorkerCtx, out: &mut [Vec<Reply>]) {
    for (r, replies) in out.iter_mut().enumerate() {
        if replies.is_empty() {
            continue;
        }
        lock_unpoisoned(&ctx.reactors[r].inbox)
            .replies
            .append(replies);
        ctx.reactors[r].wake();
    }
}

/// Parses and executes one raw frame; returns the encoded reply and
/// whether the connection should close after it flushes.
fn execute_frame(ctx: &WorkerCtx, frame: &[u8]) -> (Vec<u8>, bool) {
    let mut close_after = false;
    let response = match std::str::from_utf8(frame) {
        Ok(line) => match CommandRef::parse(line) {
            Ok(cmd) => {
                if matches!(cmd, CommandRef::Shutdown) {
                    close_after = true;
                    ctx.stats.shutdown_requested.store(true, Ordering::Release);
                }
                if matches!(cmd, CommandRef::Stats) {
                    // Splice the network plane's section into the
                    // engine's snapshot (and refresh the telemetry
                    // gauges from ground truth while we're here).
                    ctx.metrics.refresh(&ctx.stats);
                    Response::Bulk(Some(
                        stats_json_with_net(&ctx.engine, &ctx.stats).into_bytes(),
                    ))
                } else {
                    ctx.engine.execute_at(ctx.shard, &cmd)
                }
            }
            Err(msg) => Response::Error(msg),
        },
        Err(_) => Response::Error("invalid UTF-8 in request".into()),
    };
    let mut bytes = Vec::with_capacity(32);
    response.encode_into(&mut bytes);
    (bytes, close_after)
}

/// The engine's `STATS` JSON with a `"net"` section spliced in front,
/// rendered from [`NetStats`] ground truth (hand-rolled — the repo
/// has no serde).
fn stats_json_with_net(engine: &ShardedStore, stats: &NetStats) -> String {
    let ld = |c: &AtomicU64| c.load(Ordering::Acquire);
    let net = format!(
        concat!(
            "{{\"accepted_total\":{},\"closed_total\":{},\"open_conns\":{},",
            "\"requests_total\":{},\"replies_total\":{},",
            "\"paused_reads_total\":{},\"route_stalls_total\":{},",
            "\"accept_backoffs_total\":{},\"conn_deadline_closes_total\":{},",
            "\"overload_sheds_total\":{},\"worker_restarts_total\":{},",
            "\"reactor_restarts_total\":{},\"panic_error_replies_total\":{}}}"
        ),
        ld(&stats.accepted_total),
        ld(&stats.closed_total),
        ld(&stats.open_conns),
        ld(&stats.requests_total),
        ld(&stats.replies_total),
        ld(&stats.paused_reads_total),
        ld(&stats.route_stalls_total),
        ld(&stats.accept_backoffs_total),
        ld(&stats.conn_deadline_closes_total),
        ld(&stats.overload_sheds_total),
        ld(&stats.worker_restarts_total),
        ld(&stats.reactor_restarts_total),
        ld(&stats.panic_error_replies_total),
    );
    let engine_json = engine.stats_json();
    match engine_json.strip_prefix('{') {
        Some("}") => format!("{{\"net\":{net}}}"),
        Some(rest) => format!("{{\"net\":{net},{rest}"),
        None => engine_json,
    }
}

// ----------------------------------------------------------------------
// The frontend handle.
// ----------------------------------------------------------------------

/// The event-driven TCP front-end: a pool of epoll reactors feeding
/// per-shard batch workers. See the module docs for the architecture;
/// this type owns every thread and fd, and dropping it is a clean
/// shutdown (sockets closed, all threads joined).
pub struct ReactorFrontend {
    addr: SocketAddr,
    engine: Arc<ShardedStore>,
    stats: Arc<NetStats>,
    metrics: Arc<NetMetrics>,
    stop: Arc<AtomicBool>,
    shared: Vec<Arc<ReactorShared>>,
    parks: Vec<Arc<Park>>,
    reactor_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ReactorFrontend {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves `engine` with `cfg`.
    pub fn bind(addr: &str, engine: Arc<ShardedStore>, cfg: ReactorConfig) -> io::Result<Self> {
        let mut cfg = cfg;
        if cfg.reactors == 0 {
            cfg.reactors = auto_reactors();
        }
        let nreactors = cfg.reactors;
        let nshards = engine.shard_count();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;

        let stats = Arc::new(NetStats::default());
        let metrics = Arc::new(NetMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));
        let conn_ids = Arc::new(AtomicU64::new(0));

        let shared: Vec<Arc<ReactorShared>> = (0..nreactors)
            .map(|_| {
                Ok(Arc::new(ReactorShared {
                    inbox: Mutex::new(Inbox {
                        replies: Vec::new(),
                        conns: Vec::new(),
                    }),
                    wake: new_eventfd()?,
                    io: Arc::clone(&cfg.io),
                }))
            })
            .collect::<io::Result<_>>()?;
        let parks: Vec<Arc<Park>> = (0..nshards)
            .map(|_| {
                Arc::new(Park {
                    flag: Mutex::new(false),
                    cv: Condvar::new(),
                })
            })
            .collect();

        // Ring matrix: rings[reactor][shard] — each reactor the sole
        // producer, each shard worker the sole consumer.
        let mut tx_rings: Vec<Vec<SpscTx<ShardReq>>> = (0..nreactors).map(|_| Vec::new()).collect();
        let mut rx_rings: Vec<Vec<SpscRx<ShardReq>>> = (0..nshards).map(|_| Vec::new()).collect();
        for tx_row in tx_rings.iter_mut() {
            for rx_col in rx_rings.iter_mut() {
                let (tx, rx) = spsc(cfg.ring_capacity);
                tx_row.push(tx);
                rx_col.push(rx);
            }
        }

        let mut worker_threads = Vec::with_capacity(nshards);
        for (shard, rings) in rx_rings.into_iter().enumerate() {
            let ctx = WorkerCtx {
                shard,
                engine: Arc::clone(&engine),
                rings,
                park: Arc::clone(&parks[shard]),
                reactors: shared.clone(),
                stats: Arc::clone(&stats),
                metrics: Arc::clone(&metrics),
                stop: Arc::clone(&stop),
                batch_limit: cfg.batch_limit,
                hook: cfg.hook.clone(),
            };
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("softmem-kv-shard-{shard}"))
                    .spawn(move || shard_worker(ctx))?,
            );
        }

        let mut reactor_threads = Vec::with_capacity(nreactors);
        let mut listener = Some(listener);
        for (idx, rings) in tx_rings.into_iter().enumerate() {
            let poller = Poller::new()?;
            poller.add(shared[idx].wake.as_raw_fd(), TOKEN_WAKE, true, false)?;
            let own_listener = if idx == 0 { listener.take() } else { None };
            if let Some(l) = &own_listener {
                poller.add(l.as_raw_fd(), TOKEN_LISTENER, true, false)?;
            }
            let reactor = Reactor {
                idx,
                poller,
                shared: shared.clone(),
                listener: own_listener,
                engine: Arc::clone(&engine),
                rings,
                parks: parks.clone(),
                conns: HashMap::new(),
                conn_ids: Arc::clone(&conn_ids),
                stats: Arc::clone(&stats),
                metrics: Arc::clone(&metrics),
                stop: Arc::clone(&stop),
                cfg: cfg.clone(),
                notify: vec![false; nshards],
                dirty: Vec::new(),
                stalled: Vec::new(),
                next_rr: 0,
                accept_backoff_until: None,
                wheel: TimerWheel::new(Instant::now()),
            };
            reactor_threads.push(
                std::thread::Builder::new()
                    .name(format!("softmem-kv-reactor-{idx}"))
                    .spawn(move || reactor.run())?,
            );
        }

        Ok(ReactorFrontend {
            addr: local,
            engine,
            stats,
            metrics,
            stop,
            shared,
            parks,
            reactor_threads,
            worker_threads,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The frontend's counters.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// The frontend's telemetry registry (label `net`).
    pub fn metrics(&self) -> &Arc<NetMetrics> {
        &self.metrics
    }

    /// The engine being served.
    pub fn engine(&self) -> &Arc<ShardedStore> {
        &self.engine
    }
}

impl Drop for ReactorFrontend {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for s in &self.shared {
            s.wake();
        }
        for t in self.reactor_threads.drain(..) {
            let _ = t.join();
        }
        // Reactors are gone (their rings' producers dropped); workers
        // drain whatever remains, observe `stop`, and exit.
        for p in &self.parks {
            p.notify();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::TcpKvClient;
    use softmem_core::{Priority, Sma};

    fn frontend(shards: usize) -> (Arc<Sma>, ReactorFrontend) {
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), shards));
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, ReactorConfig::default()).unwrap();
        (sma, fe)
    }

    #[test]
    fn spsc_ring_roundtrip_and_drop_drains() {
        let (tx, rx) = spsc::<Vec<u8>>(4);
        assert!(rx.pop().is_none());
        for i in 0..4u8 {
            tx.push(vec![i]).unwrap();
        }
        assert!(tx.push(vec![9]).is_err(), "ring holds exactly capacity");
        assert_eq!(rx.pop(), Some(vec![0]));
        tx.push(vec![4]).unwrap();
        for want in 1..5u8 {
            assert_eq!(rx.pop(), Some(vec![want]));
        }
        // Items left in a dropped ring are freed (miri/asan clean).
        let (tx, rx) = spsc::<Vec<u8>>(8);
        tx.push(vec![1; 128]).unwrap();
        tx.push(vec![2; 128]).unwrap();
        drop(tx);
        drop(rx);
    }

    #[test]
    fn reactor_roundtrip_single_client() {
        let (_sma, fe) = frontend(4);
        let mut client = TcpKvClient::connect(fe.addr()).unwrap();
        assert_eq!(
            client.request("SET a hello world").unwrap(),
            Response::Ok("OK".into())
        );
        assert_eq!(
            client.request("GET a").unwrap(),
            Response::Bulk(Some(b"hello world".to_vec()))
        );
        assert_eq!(client.request("GET missing").unwrap(), Response::Bulk(None));
        assert_eq!(client.request("DBSIZE").unwrap(), Response::Int(1));
        assert_eq!(
            client.request("MGET a nope").unwrap(),
            Response::Array(vec![b"hello world".to_vec(), b"(nil)".to_vec()])
        );
        match client.request("BANANA").unwrap() {
            Response::Error(msg) => assert!(msg.contains("unknown command"), "{msg}"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn reactor_pipeline_preserves_order_across_shards() {
        let (_sma, fe) = frontend(4);
        let mut client = TcpKvClient::connect(fe.addr()).unwrap();
        // A pipelined burst whose keys scatter across shards: replies
        // must come back in request order regardless.
        let sets: Vec<String> = (0..64).map(|i| format!("SET key-{i} v{i}")).collect();
        for r in client.request_pipeline(&sets).unwrap() {
            assert_eq!(r, Response::Ok("OK".into()));
        }
        let gets: Vec<String> = (0..64).map(|i| format!("GET key-{i}")).collect();
        let replies = client.request_pipeline(&gets).unwrap();
        for (i, r) in replies.into_iter().enumerate() {
            assert_eq!(r, Response::Bulk(Some(format!("v{i}").into_bytes())), "{i}");
        }
        // The plane settles: all requests answered.
        let stats = fe.stats();
        assert!(stats.quiesced(), "{stats:?}");
    }

    #[test]
    fn reactor_many_clients_and_clean_teardown() {
        let (_sma, fe) = frontend(2);
        let addr = fe.addr();
        let mut clients: Vec<TcpKvClient> = (0..32)
            .map(|_| TcpKvClient::connect(addr).unwrap())
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            assert_eq!(
                c.request(&format!("SET c{i} val{i}")).unwrap(),
                Response::Ok("OK".into())
            );
        }
        for (i, c) in clients.iter_mut().enumerate() {
            assert_eq!(
                c.request(&format!("GET c{i}")).unwrap(),
                Response::Bulk(Some(format!("val{i}").into_bytes()))
            );
        }
        let stats = Arc::clone(fe.stats());
        assert_eq!(stats.accepted_total.load(Ordering::Acquire), 32);
        drop(clients);
        // Closes are asynchronous; wait for the gauges to settle.
        for _ in 0..200 {
            if stats.open_conns.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(stats.open_conns.load(Ordering::Acquire), 0);
        assert_eq!(stats.closed_total.load(Ordering::Acquire), 32);
        drop(fe); // must not hang
    }

    #[test]
    fn reactor_shutdown_verb_flags_and_closes() {
        let (_sma, fe) = frontend(1);
        let mut client = TcpKvClient::connect(fe.addr()).unwrap();
        assert_eq!(
            client.request("SHUTDOWN").unwrap(),
            Response::Ok("OK".into())
        );
        let stats = fe.stats();
        assert!(stats.shutdown_requested.load(Ordering::Acquire));
        // The server closes the connection after the reply flushes.
        for _ in 0..200 {
            if stats.open_conns.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(stats.open_conns.load(Ordering::Acquire), 0);
    }

    #[test]
    fn deep_pipeline_resumes_framing_after_pause_clears() {
        // Regression: a connection whose whole backpressure pause
        // clears within one reactor pass (all in-flight replies land
        // and flush together) must still frame the rest of the bytes
        // already sitting in its read buffer — there will be no
        // further epoll event to do it later. A tiny in-flight cap
        // forces many pause/resume cycles in a single burst.
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 2));
        let cfg = ReactorConfig {
            max_inflight_per_conn: 4,
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        let mut stream = TcpStream::connect(fe.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        const BURST: usize = 512;
        let mut req = Vec::new();
        for i in 0..BURST {
            req.extend_from_slice(format!("GET nope-{i}\n").as_bytes());
        }
        stream.write_all(&req).unwrap();
        // Each miss is exactly one line (`$-1\n`); count newlines.
        let mut got = 0usize;
        let mut buf = [0u8; 4096];
        while got < BURST {
            let n = stream.read(&mut buf).expect("reply stream stalled");
            assert_ne!(n, 0, "server closed early after {got} replies");
            got += buf[..n].iter().filter(|&&b| b == b'\n').count();
        }
        assert_eq!(got, BURST);
        // Nothing left unframed or unanswered.
        for _ in 0..200 {
            if fe.stats().quiesced() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(fe.stats().quiesced(), "{:?}", fe.stats());
    }

    #[test]
    fn protocol_fatal_replies_exactly_once() {
        // Regression: an over-long partial line arriving behind a
        // pipelined burst must produce exactly one error reply, not
        // one per reactor round while the burst's replies are still
        // in flight.
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 2));
        let cfg = ReactorConfig {
            max_frame_len: 256,
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        let mut stream = TcpStream::connect(fe.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut req = Vec::new();
        for i in 0..64 {
            req.extend_from_slice(format!("GET nope-{i}\n").as_bytes());
        }
        req.extend_from_slice(&vec![b'x'; 4096]); // no terminator
        stream.write_all(&req).unwrap();
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).unwrap();
        let text = String::from_utf8_lossy(&reply);
        assert_eq!(
            text.matches("-ERR").count(),
            1,
            "duplicate fatal replies: {text:?}"
        );
        assert_eq!(text.matches("$-1").count(), 64, "{text:?}");
    }

    #[test]
    fn oversize_frame_is_rejected_not_buffered() {
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 1));
        let cfg = ReactorConfig {
            max_frame_len: 1024,
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        let mut stream = TcpStream::connect(fe.addr()).unwrap();
        // 1 MiB of line with no terminator: the reactor must reply
        // with an error and close, not buffer it forever.
        let junk = vec![b'x'; 1 << 20];
        let _ = stream.write_all(&junk);
        let mut reply = Vec::new();
        let _ = stream.read_to_end(&mut reply);
        let text = String::from_utf8_lossy(&reply);
        assert!(text.contains("-ERR"), "got: {text:?}");
    }

    // -- fault plane -----------------------------------------------------

    fn await_true(mut cond: impl FnMut() -> bool, what: &str) {
        for _ in 0..400 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    fn assert_ledger(stats: &NetStats) {
        let (lhs, rhs) = stats.ledger();
        assert_eq!(lhs, rhs, "reply ledger unbalanced: {stats:?}");
    }

    #[test]
    fn timer_wheel_fires_due_hints_and_holds_future_ones() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.insert(t0, t0 + Duration::from_millis(30), 1, DeadlineKind::Idle);
        wheel.insert(
            t0,
            t0 + Duration::from_millis(900),
            2,
            DeadlineKind::WriteStall,
        );
        let mut due = Vec::new();
        wheel.expire_into(t0 + Duration::from_millis(10), &mut due);
        assert!(due.is_empty(), "nothing due yet: {due:?}");
        wheel.expire_into(t0 + Duration::from_millis(60), &mut due);
        assert_eq!(due, vec![(1, DeadlineKind::Idle)]);
        due.clear();
        // The far entry fires once its slot comes around (or after a
        // full lap for beyond-horizon deadlines) — never before its
        // own slot.
        wheel.expire_into(t0 + Duration::from_millis(2000), &mut due);
        assert_eq!(due, vec![(2, DeadlineKind::WriteStall)]);
    }

    #[test]
    fn idle_deadline_evicts_silent_connection() {
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 1));
        let cfg = ReactorConfig {
            idle_timeout: Some(Duration::from_millis(100)),
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        // An active client is refreshed by its own traffic...
        let mut active = TcpKvClient::connect(fe.addr()).unwrap();
        // ...while a silent one is evicted after the bound. Keep the
        // active side talking while we wait, so only the silent one
        // can go idle.
        let mut silent = TcpStream::connect(fe.addr()).unwrap();
        silent
            .set_read_timeout(Some(Duration::from_millis(25)))
            .unwrap();
        let t0 = Instant::now();
        let mut buf = [0u8; 8];
        loop {
            assert_eq!(active.request("DBSIZE").unwrap(), Response::Int(0));
            match silent.read(&mut buf) {
                Ok(0) => break, // Evicted.
                Ok(n) => panic!("silent conn received {n} unsolicited byte(s)"),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    assert!(
                        t0.elapsed() < Duration::from_secs(10),
                        "silent connection never evicted"
                    );
                }
                Err(e) => panic!("unexpected read error: {e}"),
            }
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(80),
            "evicted too early: {:?}",
            t0.elapsed()
        );
        let stats = fe.stats();
        // Exactly one eviction: the reaper must not touch the
        // traffic-refreshed connection.
        assert_eq!(stats.conn_deadline_closes_total.load(Ordering::Acquire), 1);
        assert_eq!(active.request("DBSIZE").unwrap(), Response::Int(0));
        assert_ledger(stats);
    }

    #[test]
    fn write_stall_deadline_evicts_slow_reader() {
        let sma = Sma::standalone(4096);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 1));
        let cfg = ReactorConfig {
            write_stall_timeout: Some(Duration::from_millis(150)),
            write_highwater: 4 << 10,
            so_sndbuf: Some(4096),
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        let mut client = TcpKvClient::connect(fe.addr()).unwrap();
        let fat = "v".repeat(8 << 10);
        assert_eq!(
            client.request(&format!("SET fat {fat}")).unwrap(),
            Response::Ok("OK".into())
        );
        // A raw socket that pipelines fat GETs and never reads: the
        // server's write buffer stalls, and the deadline evicts it.
        let mut stalled = TcpStream::connect(fe.addr()).unwrap();
        let _ = set_sock_buf(stalled.as_raw_fd(), sys::SO_RCVBUF, 4096);
        let mut req = Vec::new();
        for _ in 0..64 {
            req.extend_from_slice(b"GET fat\n");
        }
        stalled.write_all(&req).unwrap();
        let stats = Arc::clone(fe.stats());
        await_true(
            || stats.conn_deadline_closes_total.load(Ordering::Acquire) >= 1,
            "write-stall eviction",
        );
        await_true(|| stats.quiesced(), "quiescence after eviction");
        assert_ledger(&stats);
        // The plane is still serving.
        assert_eq!(
            client.request("DBSIZE").unwrap(),
            Response::Int(1),
            "surviving client must still be served"
        );
    }

    #[test]
    fn overload_shed_answers_err_overloaded() {
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 1));
        let cfg = ReactorConfig {
            // In-flight is always >= 0: every frame sheds.
            overload_shed_inflight: Some(0),
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        let mut client = TcpKvClient::connect(fe.addr()).unwrap();
        match client.request("GET x").unwrap() {
            Response::Error(msg) => assert!(msg.contains("overloaded"), "{msg}"),
            other => panic!("expected shed, got {other:?}"),
        }
        // Brownout, not blackout: the connection survives and keeps
        // getting (fast-failed) answers in order.
        let replies = client
            .request_pipeline(&["GET a", "GET b", "GET c"])
            .unwrap();
        assert_eq!(replies.len(), 3);
        let stats = fe.stats();
        assert_eq!(stats.overload_sheds_total.load(Ordering::Acquire), 4);
        if softmem_telemetry::ENABLED {
            assert_eq!(fe.metrics().overload_sheds.get(), 4);
        }
        await_true(|| stats.quiesced(), "quiescence");
        assert_ledger(stats);
    }

    /// A hook that makes every execution much slower than the
    /// park-shed bound, so a tiny ring stays full long enough for the
    /// reactor to give up on parked frames.
    struct SlowExec;
    impl WorkerHook for SlowExec {
        fn before_execute(&self, _shard: usize, _frame: &[u8]) {
            std::thread::sleep(Duration::from_millis(150));
        }
    }

    #[test]
    fn park_shed_gives_up_on_a_ring_that_stays_full() {
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 1));
        let cfg = ReactorConfig {
            ring_capacity: 2,
            batch_limit: 1,
            park_shed_after: Some(Duration::from_millis(50)),
            hook: Some(Arc::new(SlowExec)),
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        let mut stream = TcpStream::connect(fe.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        const BURST: usize = 16;
        let mut req = Vec::new();
        for _ in 0..BURST {
            req.extend_from_slice(b"GET nope\n");
        }
        stream.write_all(&req).unwrap();
        // Every request gets exactly one one-line answer — a miss
        // (`$-1`) or a shed (`-ERR overloaded`) — in order.
        let mut replies = Vec::new();
        let mut buf = [0u8; 4096];
        while replies.iter().filter(|&&b| b == b'\n').count() < BURST {
            let n = stream.read(&mut buf).expect("reply stream stalled");
            assert_ne!(n, 0, "server closed early");
            replies.extend_from_slice(&buf[..n]);
        }
        let text = String::from_utf8_lossy(&replies);
        let sheds = text.matches("-ERR overloaded").count();
        let misses = text.matches("$-1").count();
        assert_eq!(sheds + misses, BURST, "{text:?}");
        let stats = Arc::clone(fe.stats());
        assert!(
            stats.overload_sheds_total.load(Ordering::Acquire) >= 1,
            "park-shed never engaged: {stats:?}"
        );
        await_true(|| stats.quiesced(), "quiescence");
        assert_ledger(&stats);
    }

    /// Panics (quietly, via `resume_unwind`) on a marker frame.
    struct PanicOnBoom;
    impl WorkerHook for PanicOnBoom {
        fn before_execute(&self, _shard: usize, frame: &[u8]) {
            if frame == b"GET boom" {
                std::panic::resume_unwind(Box::new("injected worker panic"));
            }
        }
    }

    #[test]
    fn worker_panic_is_supervised_and_answered_cleanly() {
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 2));
        let cfg = ReactorConfig {
            hook: Some(Arc::new(PanicOnBoom)),
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        let mut client = TcpKvClient::connect(fe.addr()).unwrap();
        assert_eq!(
            client.request("SET a alive").unwrap(),
            Response::Ok("OK".into())
        );
        match client.request("GET boom").unwrap() {
            Response::Error(msg) => assert!(msg.contains("worker restarted"), "{msg}"),
            other => panic!("expected a clean error reply, got {other:?}"),
        }
        // The worker was restarted and the whole plane still serves —
        // including the shard that panicked.
        assert_eq!(
            client.request("GET a").unwrap(),
            Response::Bulk(Some(b"alive".to_vec()))
        );
        let stats = fe.stats();
        assert_eq!(stats.worker_restarts_total.load(Ordering::Acquire), 1);
        assert_eq!(stats.panic_error_replies_total.load(Ordering::Acquire), 1);
        await_true(|| stats.quiesced(), "quiescence");
        assert_ledger(stats);
    }

    /// Panics a reactor's poll loop once, when armed.
    struct PanicWhenArmed(Arc<AtomicBool>);
    impl WorkerHook for PanicWhenArmed {
        fn before_poll(&self, _reactor: usize) {
            if self.0.swap(false, Ordering::AcqRel) {
                std::panic::resume_unwind(Box::new("injected reactor panic"));
            }
        }
    }

    #[test]
    fn reactor_panic_recovers_and_accepts_new_connections() {
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 1));
        let arm = Arc::new(AtomicBool::new(false));
        let cfg = ReactorConfig {
            reactors: 1,
            hook: Some(Arc::new(PanicWhenArmed(Arc::clone(&arm)))),
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        let mut before = TcpKvClient::connect(fe.addr()).unwrap();
        assert_eq!(
            before.request("SET a 1").unwrap(),
            Response::Ok("OK".into())
        );
        arm.store(true, Ordering::Release);
        let stats = Arc::clone(fe.stats());
        await_true(
            || stats.reactor_restarts_total.load(Ordering::Acquire) >= 1,
            "reactor restart",
        );
        // Recovery closes the pre-panic connection (its state may be
        // torn)...
        assert!(
            before.request("GET a").is_err(),
            "pre-panic connection should be closed"
        );
        // ...but the restarted reactor accepts and serves new ones.
        let mut after = TcpKvClient::connect(fe.addr()).unwrap();
        assert_eq!(
            after.request("GET a").unwrap(),
            Response::Bulk(Some(b"1".to_vec()))
        );
        await_true(|| stats.quiesced(), "quiescence");
        assert_ledger(&stats);
    }

    /// A deterministic, intentionally nasty [`SysIo`]: interrupts,
    /// spurious would-blocks, short reads and short writes on a fixed
    /// cadence, plus dropped wakes — while remaining a functionally
    /// correct transport.
    struct FlakyIo {
        reads: AtomicU64,
        writes: AtomicU64,
        polls: AtomicU64,
        wakes: AtomicU64,
    }

    impl FlakyIo {
        fn new() -> Self {
            FlakyIo {
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                polls: AtomicU64::new(0),
                wakes: AtomicU64::new(0),
            }
        }
    }

    impl SysIo for FlakyIo {
        fn read(&self, stream: &TcpStream, buf: &mut [u8]) -> io::Result<usize> {
            let n = self.reads.fetch_add(1, Ordering::Relaxed);
            if n % 7 == 1 {
                return Err(io::ErrorKind::Interrupted.into());
            }
            if n % 5 == 2 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let cap = buf.len().min(129);
            (&mut &*stream).read(&mut buf[..cap])
        }

        fn write(&self, stream: &TcpStream, buf: &[u8]) -> io::Result<usize> {
            let n = self.writes.fetch_add(1, Ordering::Relaxed);
            if n % 11 == 1 {
                return Err(io::ErrorKind::Interrupted.into());
            }
            if n % 6 == 2 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let cap = buf.len().min(57);
            (&mut &*stream).write(&buf[..cap])
        }

        fn accept(&self, listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)> {
            listener.accept()
        }

        fn epoll_wait(
            &self,
            poller: &Poller,
            out: &mut Vec<Event>,
            timeout_ms: i32,
        ) -> io::Result<()> {
            if self.polls.fetch_add(1, Ordering::Relaxed) % 13 == 3 {
                return Err(io::ErrorKind::Interrupted.into());
            }
            poller.wait(out, timeout_ms)
        }

        fn wake(&self, efd: &File) -> io::Result<()> {
            if self.wakes.fetch_add(1, Ordering::Relaxed) % 3 == 1 {
                return Ok(()); // Dropped on the floor.
            }
            RealSysIo.wake(efd)
        }
    }

    #[test]
    fn flaky_syscalls_never_tear_or_reorder_replies() {
        let sma = Sma::standalone(1024);
        let engine = Arc::new(ShardedStore::new(&sma, "kv", Priority::new(4), 4));
        let cfg = ReactorConfig {
            io: Arc::new(FlakyIo::new()),
            ..ReactorConfig::default()
        };
        let fe = ReactorFrontend::bind("127.0.0.1:0", engine, cfg).unwrap();
        let mut client = TcpKvClient::connect(fe.addr()).unwrap();
        let sets: Vec<String> = (0..128).map(|i| format!("SET key-{i} v{i}")).collect();
        for r in client.request_pipeline(&sets).unwrap() {
            assert_eq!(r, Response::Ok("OK".into()));
        }
        let gets: Vec<String> = (0..128).map(|i| format!("GET key-{i}")).collect();
        for (i, r) in client
            .request_pipeline(&gets)
            .unwrap()
            .into_iter()
            .enumerate()
        {
            assert_eq!(r, Response::Bulk(Some(format!("v{i}").into_bytes())), "{i}");
        }
        let stats = Arc::clone(fe.stats());
        drop(client);
        await_true(|| stats.quiesced(), "quiescence under flaky I/O");
        assert_ledger(&stats);
    }

    #[test]
    fn stats_verb_includes_net_section() {
        let (_sma, fe) = frontend(2);
        let mut client = TcpKvClient::connect(fe.addr()).unwrap();
        let Response::Bulk(Some(json)) = client.request("STATS").unwrap() else {
            panic!("STATS should return a bulk JSON blob");
        };
        let json = String::from_utf8(json).unwrap();
        assert!(json.starts_with("{\"net\":{"), "{json}");
        for key in [
            "accept_backoffs_total",
            "conn_deadline_closes_total",
            "overload_sheds_total",
            "worker_restarts_total",
            "reactor_restarts_total",
        ] {
            assert!(json.contains(key), "missing {key}: {json}");
        }
        // The engine's own sections survive the splice.
        assert!(json.contains("\"kv0\""), "{json}");
    }
}
