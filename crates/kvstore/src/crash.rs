//! The no-soft-memory baseline: crash under pressure, restart cold.
//!
//! "Without soft memory, Redis would crash under memory pressure. The
//! cost of such a termination is a minimum of 12 ms of downtime for
//! Redis to restart, with an additional, load-dependent period of
//! increased tail latency while the cache refills" (§5). This module
//! models that baseline so the `table2_crash_vs_reclaim` harness can
//! put the two failure modes side by side.

use std::sync::Arc;
use std::time::{Duration, Instant};

use softmem_core::{Priority, Sma};

use crate::store::Store;

/// Parameters of the crash/restart baseline.
#[derive(Debug, Clone, Copy)]
pub struct CrashModel {
    /// Process restart time (the paper measured ≥ 12 ms for Redis).
    pub restart: Duration,
    /// Cost of re-fetching one missed entry from the backing database,
    /// charged per cold miss during the refill period.
    pub db_fetch: Duration,
}

impl Default for CrashModel {
    fn default() -> Self {
        CrashModel {
            restart: Duration::from_millis(12),
            db_fetch: Duration::from_micros(200),
        }
    }
}

/// Outcome of a simulated crash plus refill workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashOutcome {
    /// Wall-clock downtime while restarting.
    pub downtime: Duration,
    /// Requests served during the refill phase.
    pub refill_requests: u64,
    /// Cold misses among them (all of them, right after a crash, until
    /// keys are re-fetched).
    pub cold_misses: u64,
    /// Total simulated time lost to database re-fetches.
    pub refetch_cost: Duration,
}

impl CrashOutcome {
    /// Downtime plus re-fetch cost: the total client-visible penalty.
    pub fn total_penalty(&self) -> Duration {
        self.downtime + self.refetch_cost
    }
}

impl CrashModel {
    /// Kills `store` (drops it — all entries gone, like an OOM kill),
    /// waits out the restart, and returns the cold replacement.
    pub fn crash_and_restart(
        &self,
        store: Store,
        sma: &Arc<Sma>,
        name: &str,
        priority: Priority,
    ) -> (Store, Duration) {
        drop(store);
        let start = Instant::now();
        std::thread::sleep(self.restart);
        (Store::new(sma, name, priority), start.elapsed())
    }

    /// Replays `requests` (keys) against a cold `store`, re-fetching
    /// each miss from the "database" (`fetch`) and re-populating the
    /// cache — the paper's refill period.
    pub fn refill<'k>(
        &self,
        store: &Store,
        requests: impl IntoIterator<Item = &'k [u8]>,
        mut fetch: impl FnMut(&[u8]) -> Vec<u8>,
    ) -> CrashOutcome {
        let mut refill_requests = 0;
        let mut cold_misses = 0;
        for key in requests {
            refill_requests += 1;
            if store.get(key).is_none() {
                cold_misses += 1;
                let value = fetch(key);
                // Best effort: refill may itself hit budget limits.
                let _ = store.set(key, &value);
            }
        }
        CrashOutcome {
            downtime: self.restart,
            refill_requests,
            cold_misses,
            refetch_cost: self.db_fetch * cold_misses as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_loses_everything_and_costs_downtime() {
        let sma = Sma::standalone(512);
        let store = Store::new(&sma, "kv", Priority::default());
        for i in 0..200 {
            store.set(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        let model = CrashModel {
            restart: Duration::from_millis(12),
            ..CrashModel::default()
        };
        let (cold, downtime) = model.crash_and_restart(store, &sma, "kv", Priority::default());
        assert!(downtime >= Duration::from_millis(12));
        assert_eq!(cold.dbsize(), 0, "restart is cold");
        assert_eq!(sma.stats().live_allocs, 0, "old store fully released");
    }

    #[test]
    fn refill_counts_cold_misses_and_repopulates() {
        let sma = Sma::standalone(512);
        let store = Store::new(&sma, "kv", Priority::default());
        let keys: Vec<Vec<u8>> = (0..100).map(|i| format!("k{i}").into_bytes()).collect();
        // Request each key twice: first pass misses and refills, second
        // pass hits.
        let mut requests: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        requests.extend(keys.iter().map(|k| k.as_slice()));
        let model = CrashModel::default();
        let outcome = model.refill(&store, requests, |_k| b"from-db".to_vec());
        assert_eq!(outcome.refill_requests, 200);
        assert_eq!(outcome.cold_misses, 100);
        assert_eq!(store.dbsize(), 100);
        assert_eq!(outcome.refetch_cost, model.db_fetch * 100);
        assert!(outcome.total_penalty() > outcome.refetch_cost);
    }

    #[test]
    fn soft_reclaim_penalty_is_partial_by_contrast() {
        // Companion check: after a *partial* soft reclaim (rather than
        // a crash), only the reclaimed fraction misses.
        let sma = Sma::with_config(
            softmem_core::SmaConfig::for_testing(512)
                .free_pool_retain(0)
                .sds_retain(0),
        );
        let store = Store::new(&sma, "kv", Priority::default());
        let keys: Vec<Vec<u8>> = (0..400).map(|i| format!("k{i}").into_bytes()).collect();
        for k in &keys {
            store.set(k, &[9u8; 64]).unwrap();
        }
        // Demand beyond the budget slack so live entries must go.
        sma.reclaim(sma.stats().slack_pages() + sma.held_pages() / 4);
        // Read-only sweep: only the reclaimed fraction misses (a
        // refilling workload at squeezed capacity would churn, which
        // `table2_crash_vs_reclaim` measures with a realistic Zipf
        // stream instead of a sequential scan).
        let misses = keys.iter().filter(|k| store.get(k).is_none()).count();
        assert!(misses > 0, "reclaim caused some misses");
        assert!(misses < 400, "but far fewer than a crash: {misses}");
    }
}
