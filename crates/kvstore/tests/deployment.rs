//! Full-deployment integration: a unix-socket SMD plus real
//! `kv_server` **subprocesses** sharing one machine's soft memory.
//!
//! This is the paper's Figure-2 situation with nothing simulated on
//! the protocol path: separate OS processes, a daemon socket, TCP
//! clients — only the machine capacity model lives in the daemon.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use softmem_core::MachineMemory;
use softmem_daemon::uds::UdsSmdServer;
use softmem_daemon::{Smd, SmdConfig};

struct KvProc {
    child: Child,
    port: u16,
}

impl Drop for KvProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_kv(socket: &Path, port: u16) -> KvProc {
    let child = Command::new(env!("CARGO_BIN_EXE_kv_server"))
        .args([
            "--smd-socket",
            socket.to_str().expect("utf8"),
            "--listen",
            &format!("127.0.0.1:{port}"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn kv_server");
    // `KvProc::drop` kills and waits on the child in every path.
    let mut proc = KvProc { child, port };
    // Wait for the listener to come up.
    for _ in 0..100 {
        if TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return proc;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = proc.child.kill();
    panic!("kv_server did not come up on port {port}");
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(port: u16) -> Self {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        Client {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read");
        reply.trim_end().to_string()
    }

    fn info_field(&mut self, field: &str) -> u64 {
        let info = self.request("INFO");
        info.trim_start_matches('$')
            .split(';')
            .find_map(|kv| kv.strip_prefix(&format!("{field}:")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("field {field} in {info}"))
    }
}

#[test]
fn two_kv_server_processes_share_one_machine() {
    // 6 MiB of machine soft memory; each server's fill wants ~5 MiB of
    // pages, so the second fill must reclaim from the first process.
    let socket =
        std::env::temp_dir().join(format!("softmem-deploy-test-{}.sock", std::process::id()));
    let machine = MachineMemory::unbounded();
    let smd = Smd::new(SmdConfig::new(&machine, 1536).initial_budget(16));
    let server = UdsSmdServer::bind(smd, &socket).expect("bind daemon");

    let kv1 = spawn_kv(&socket, 18101);
    let kv2 = spawn_kv(&socket, 18102);
    let mut c1 = Client::connect(kv1.port);
    let mut c2 = Client::connect(kv2.port);

    // Server 1 fills most of the machine (~1200 pages of 64 B slots).
    for i in 0..70_000 {
        let reply = c1.request(&format!("SET a{i} {}", "x".repeat(32)));
        assert!(reply.starts_with("+OK"), "{reply}");
    }
    let pages1_before = c1.info_field("soft_pages");
    assert!(pages1_before > 900, "server 1 filled up: {pages1_before}");

    // Server 2's fill forces cross-process reclamation over the
    // daemon socket.
    for i in 0..70_000 {
        let reply = c2.request(&format!("SET b{i} {}", "x".repeat(32)));
        assert!(reply.starts_with("+OK"), "{reply}");
    }
    assert_eq!(c2.info_field("keys"), 70_000);

    let reclaimed1 = c1.info_field("reclaimed_entries");
    let pages1_after = c1.info_field("soft_pages");
    assert!(
        reclaimed1 > 0,
        "server 1 lost entries to reclamation: {reclaimed1}"
    );
    assert!(
        pages1_after < pages1_before,
        "server 1 shrank: {pages1_after} vs {pages1_before}"
    );
    // Both servers still serve traffic.
    assert!(c1.request("GET a69999").starts_with('$'));
    assert!(c2.request("GET b69999").starts_with('$'));

    let stats = server.smd().stats();
    assert!(stats.pages_reclaimed_total > 0);
    assert_eq!(stats.denials_total, 0, "nobody was denied");
    assert!(
        stats.assigned_pages <= stats.capacity_pages,
        "capacity respected"
    );
    let _ = Arc::strong_count(server.smd()); // keep server alive to here
}

#[test]
fn kv_server_survives_peer_death() {
    let socket =
        std::env::temp_dir().join(format!("softmem-deploy-death-{}.sock", std::process::id()));
    let machine = MachineMemory::unbounded();
    let smd = Smd::new(SmdConfig::new(&machine, 512).initial_budget(16));
    let server = UdsSmdServer::bind(smd, &socket).expect("bind daemon");

    let kv1 = spawn_kv(&socket, 18111);
    let mut c1 = Client::connect(kv1.port);
    for i in 0..20_000 {
        assert!(c1.request(&format!("SET a{i} v")).starts_with("+OK"));
    }
    // Kill it without ceremony (no BYE): SIGKILL.
    drop(c1);
    drop(kv1);
    std::thread::sleep(Duration::from_millis(200));

    // A fresh server can take the whole machine; the daemon reaped
    // the corpse's budget.
    let kv2 = spawn_kv(&socket, 18112);
    let mut c2 = Client::connect(kv2.port);
    for i in 0..20_000 {
        assert!(c2.request(&format!("SET b{i} v")).starts_with("+OK"));
    }
    assert_eq!(c2.info_field("keys"), 20_000);
    let stats = server.smd().stats();
    assert!(stats.procs.len() <= 2);
    assert_eq!(stats.denials_total, 0);
}
