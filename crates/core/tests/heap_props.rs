//! Property tests on the per-SDS heap itself (below the SMA): slab and
//! span bookkeeping must stay exact under arbitrary op interleavings.

use proptest::prelude::*;

use softmem_core::handle::{RawHandle, SdsId};
use softmem_core::heap::SdsHeap;
use softmem_core::page::{PageFrame, Span, PAGE_SIZE};
use softmem_core::SoftError;

#[derive(Debug, Clone)]
enum Op {
    /// Slab allocation of `size` bytes (≤ 4096).
    Alloc { size: usize },
    /// Span allocation of `pages` pages.
    AllocSpan { pages: usize },
    /// Free the `idx % live`-th live allocation.
    Free { idx: usize },
    /// Harvest wholly-free pages, keeping `keep`.
    Harvest { keep: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (1usize..=4096).prop_map(|size| Op::Alloc { size }),
        1 => (1usize..4).prop_map(|pages| Op::AllocSpan { pages }),
        4 => any::<usize>().prop_map(|idx| Op::Free { idx }),
        1 => (0usize..4).prop_map(|keep| Op::Harvest { keep }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn heap_bookkeeping_is_exact(ops in proptest::collection::vec(op_strategy(), 1..160)) {
        let mut heap = SdsHeap::new(SdsId::from_index(0));
        let mut live: Vec<(RawHandle, usize)> = Vec::new();
        let mut dead: Vec<RawHandle> = Vec::new();
        let mut expected_bytes = 0usize;
        let mut seen: std::collections::HashSet<(u32, u16, u64)> =
            std::collections::HashSet::new();

        for op in ops {
            match op {
                Op::Alloc { size } => {
                    let extra = if heap.can_alloc_without_frame(size) {
                        None
                    } else {
                        Some(PageFrame::new_zeroed())
                    };
                    let raw = heap.alloc_slab(size, None, extra).expect("frame provided");
                    // Generations are globally unique: the coordinate
                    // triple must never repeat across the whole run.
                    prop_assert!(
                        seen.insert((raw.page, raw.slot, raw.generation)),
                        "coordinate reuse: {raw:?}"
                    );
                    expected_bytes += size;
                    live.push((raw, size));
                }
                Op::AllocSpan { pages } => {
                    let size = pages * PAGE_SIZE;
                    let raw = heap.insert_span(Span::new_zeroed(pages), size, None);
                    prop_assert!(seen.insert((raw.page, raw.slot, raw.generation)));
                    expected_bytes += size;
                    live.push((raw, size));
                }
                Op::Free { idx } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (raw, size) = live.swap_remove(idx % live.len());
                    let out = heap.free(raw, true).expect("live handle");
                    prop_assert_eq!(out.freed_bytes, size);
                    expected_bytes -= size;
                    dead.push(raw);
                }
                Op::Harvest { keep } => {
                    let before = heap.wholly_free_pages();
                    let frames = heap.harvest_free_pages(keep);
                    prop_assert_eq!(frames.len(), before.saturating_sub(keep));
                    prop_assert_eq!(heap.wholly_free_pages(), before.min(keep));
                }
            }
            // Exact accounting after every step.
            prop_assert_eq!(heap.live_bytes(), expected_bytes);
            prop_assert_eq!(heap.live_allocs(), live.len());
            // Every live handle resolves with its requested length;
            // every dead handle is revoked, not dangling.
            for (raw, size) in &live {
                let (_, len) = heap.resolve(*raw).expect("live");
                prop_assert_eq!(len, *size);
            }
            for raw in &dead {
                // Revoked normally; InvalidHandle if the page has been
                // re-formatted for another class since (both safe).
                prop_assert!(matches!(
                    heap.resolve(*raw).unwrap_err(),
                    SoftError::Revoked | SoftError::InvalidHandle
                ));
                prop_assert!(matches!(
                    heap.free(*raw, true).unwrap_err(),
                    SoftError::Revoked | SoftError::InvalidHandle
                ));
            }
            // Held pages always cover the live payload.
            prop_assert!(heap.held_pages() * PAGE_SIZE >= heap.live_bytes());
        }

        // Drain: everything balances out.
        for (raw, _) in live.drain(..) {
            heap.free(raw, true).expect("live handle");
        }
        prop_assert_eq!(heap.live_bytes(), 0);
        prop_assert_eq!(heap.live_allocs(), 0);
        let stats = heap.stats();
        prop_assert_eq!(stats.allocs_total, stats.frees_total);
        // After a full harvest the heap holds nothing.
        heap.harvest_free_pages(0);
        prop_assert_eq!(heap.held_pages(), 0);
    }

    #[test]
    fn payload_isolation_across_slots(sizes in proptest::collection::vec(1usize..2048, 2..40)) {
        // Write a unique pattern into each slot; no write may bleed
        // into a neighbour (slot arithmetic correctness).
        let mut heap = SdsHeap::new(SdsId::from_index(0));
        let mut handles = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let extra = if heap.can_alloc_without_frame(size) {
                None
            } else {
                Some(PageFrame::new_zeroed())
            };
            let raw = heap.alloc_slab(size, None, extra).expect("frame provided");
            let (ptr, len) = heap.resolve(raw).expect("live");
            prop_assert_eq!(len, size);
            // SAFETY: `ptr` addresses `len` exclusive bytes of the live
            // slot (just resolved; no other access in this test).
            unsafe { std::ptr::write_bytes(ptr, (i % 251) as u8, len) };
            handles.push((raw, size, (i % 251) as u8));
        }
        for (raw, size, byte) in &handles {
            let (ptr, len) = heap.resolve(*raw).expect("live");
            prop_assert_eq!(len, *size);
            // SAFETY: as above; read-only view of the live slot.
            let bytes = unsafe { std::slice::from_raw_parts(ptr, len) };
            prop_assert!(bytes.iter().all(|b| b == byte), "payload bled");
        }
    }
}
