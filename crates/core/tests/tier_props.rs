//! Property tests on the second-chance cold tier: under arbitrary
//! demote/take/invalidate/replace interleavings, a promoted value is
//! byte-identical to what was demoted, the tier's answers match a
//! reference map exactly (when the spill stage guarantees nothing is
//! dropped), and the demotion conservation law holds after every step.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use softmem_core::tier::{ColdTier, TierConfig};

#[derive(Debug, Clone)]
enum Op {
    /// Demote key `k` with a value derived from `(k, salt, len, mode)`.
    Demote {
        k: u8,
        salt: u8,
        len: usize,
        runs: bool,
    },
    /// Promote (and remove) key `k`.
    Take { k: u8 },
    /// Drop any cold copy of key `k` (a hot overwrite/DEL).
    Invalidate { k: u8 },
    /// Probe without promoting.
    Contains { k: u8 },
    /// FLUSHALL.
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u8>(), any::<u8>(), 0usize..700, any::<bool>())
            .prop_map(|(k, salt, len, runs)| Op::Demote { k: k % 48, salt, len, runs }),
        4 => (any::<u8>()).prop_map(|k| Op::Take { k: k % 48 }),
        2 => (any::<u8>()).prop_map(|k| Op::Invalidate { k: k % 48 }),
        2 => (any::<u8>()).prop_map(|k| Op::Contains { k: k % 48 }),
        1 => Just(Op::Clear),
    ]
}

/// Deterministic value bytes: `runs` produces long compressible runs
/// (exercising the LZ path), otherwise an LCG emits incompressible
/// noise (exercising the raw fallback).
fn value_bytes(k: u8, salt: u8, len: usize, runs: bool) -> Vec<u8> {
    if runs {
        let mut v = vec![k ^ salt; len];
        for (i, b) in v.iter_mut().enumerate() {
            if i % 97 == 0 {
                *b = salt.wrapping_add((i / 97) as u8);
            }
        }
        v
    } else {
        let mut x = (k as u32) << 16 | (salt as u32) << 8 | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (x >> 24) as u8
            })
            .collect()
    }
}

fn unique_spill_path(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "softmem-tier-props-{tag}-{}-{n}.spill",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With a spill stage the tier is lossless: its visible behaviour
    /// must match a reference `HashMap` op for op — same hits, same
    /// misses, byte-identical promotions — and the conservation audit
    /// must pass after every operation, including the arena-cap
    /// evictions and compactions the tiny arena forces constantly.
    #[test]
    fn spilling_tier_matches_reference_map(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        let tier = ColdTier::new(TierConfig {
            arena_cap_bytes: 2 << 10,
            segment_bytes: 512,
            spill_path: Some(unique_spill_path("ref")),
        }).expect("create tier");
        let mut reference: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::Demote { k, salt, len, runs } => {
                    let key = vec![b'k', k];
                    let value = value_bytes(k, salt, len, runs);
                    tier.demote(&key, &value);
                    reference.insert(key, value);
                }
                Op::Take { k } => {
                    let key = vec![b'k', k];
                    let got = tier.take(&key).map(|(v, _)| v);
                    prop_assert_eq!(got, reference.remove(&key));
                }
                Op::Invalidate { k } => {
                    let key = vec![b'k', k];
                    prop_assert_eq!(tier.invalidate(&key), reference.remove(&key).is_some());
                }
                Op::Contains { k } => {
                    let key = vec![b'k', k];
                    prop_assert_eq!(tier.contains(&key), reference.contains_key(&key));
                }
                Op::Clear => {
                    tier.clear();
                    reference.clear();
                }
            }
            let audit = tier.audit();
            prop_assert!(audit.is_empty(), "audit failed: {audit:?}");
        }

        // Hot+cold accounting conserves: every demotion is accounted
        // for as a hit, an invalidation, a replacement, or a still-live
        // entry — with a spill stage, nothing may be dropped.
        let s = tier.stats();
        prop_assert_eq!(s.dropped, 0);
        prop_assert_eq!(s.corruptions, 0);
        prop_assert_eq!(s.arena_entries + s.disk_entries, reference.len() as u64);
        prop_assert_eq!(
            s.demotions,
            s.arena_hits + s.disk_hits + s.invalidations + s.replaced
                + s.arena_entries + s.disk_entries
        );

        // Whatever is left still promotes byte-identically.
        let keys: Vec<Vec<u8>> = reference.keys().cloned().collect();
        for key in keys {
            let got = tier.take(&key).map(|(v, _)| v);
            prop_assert_eq!(got, reference.remove(&key));
        }
    }

    /// Without a spill stage the arena cap may legitimately drop
    /// entries — but a `take` must still never return wrong bytes:
    /// every hit is byte-identical to the reference, every divergence
    /// is a clean miss, and the dropped entries are all counted.
    #[test]
    fn capped_arena_never_serves_wrong_bytes(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        let tier = ColdTier::new(TierConfig {
            arena_cap_bytes: 1 << 10,
            segment_bytes: 512,
            spill_path: None,
        }).expect("create tier");
        let mut reference: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::Demote { k, salt, len, runs } => {
                    let key = vec![b'k', k];
                    let value = value_bytes(k, salt, len, runs);
                    tier.demote(&key, &value);
                    reference.insert(key, value);
                }
                Op::Take { k } => {
                    let key = vec![b'k', k];
                    let expected = reference.remove(&key);
                    // A miss is fine (dropped under cap pressure); a
                    // hit must match the reference exactly.
                    if let Some(v) = tier.take(&key).map(|(v, _)| v) {
                        prop_assert_eq!(Some(v), expected);
                    }
                }
                Op::Invalidate { k } => {
                    let key = vec![b'k', k];
                    let dropped_or_present = reference.remove(&key).is_some();
                    // The tier may have already shed the entry, so a
                    // `false` is fine even when the reference had it.
                    prop_assert!(dropped_or_present || !tier.invalidate(&key));
                    if dropped_or_present {
                        tier.invalidate(&key);
                    }
                }
                Op::Contains { k } => {
                    let key = vec![b'k', k];
                    // Presence implies the reference agrees; absence
                    // may just mean the cap shed it.
                    if tier.contains(&key) {
                        prop_assert!(reference.contains_key(&key));
                    }
                }
                Op::Clear => {
                    tier.clear();
                    reference.clear();
                }
            }
            let audit = tier.audit();
            prop_assert!(audit.is_empty(), "audit failed: {audit:?}");
        }
        let s = tier.stats();
        prop_assert_eq!(s.corruptions, 0);
        prop_assert_eq!(
            s.demotions,
            s.arena_hits + s.disk_hits + s.invalidations + s.replaced + s.dropped
                + s.arena_entries + s.disk_entries
        );
    }
}
