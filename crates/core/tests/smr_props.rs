//! Property tests on the SMR read path: random interleavings of
//! guarded reads, in-place writes, frees, and reclamation doses on one
//! SDS, checked against a reference map.
//!
//! The invariants under test are the zero-copy read contract:
//! - a read of a live handle always succeeds and observes exactly the
//!   reference bytes — never torn data, never a later generation's
//!   payload, and never a `Reclaimed` error surfaced mid-read;
//! - a read of a freed handle always fails (revoked, not dangling),
//!   even while a pinned guard is forcing freed pages to park in limbo
//!   instead of being harvested;
//! - the global write epoch is monotnic under any interleaving;
//! - limbo never exceeds what the SDS actually holds, and drains to
//!   zero once the last guard drops.

use proptest::prelude::*;

use softmem_core::{Priority, ReadGuard, Sma, SmaConfig, SoftHandle};

#[derive(Debug, Clone)]
enum Op {
    /// Allocate `len` bytes filled with `fill`.
    Alloc { len: usize, fill: usize },
    /// Free the `idx % live`-th live allocation.
    Free { idx: usize },
    /// Overwrite the `idx % live`-th live allocation in place.
    Write { idx: usize, fill: usize },
    /// Guarded read of the `idx % live`-th live allocation.
    Read { idx: usize },
    /// Read of the `idx % dead`-th freed handle (must stay revoked).
    ReadDead { idx: usize },
    /// Pin a reader guard (held across subsequent ops) if none is.
    Pin,
    /// Drop the held guard, if any.
    Unpin,
    /// Run a reclamation pass asking for `pages` pages.
    Reclaim { pages: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => ((1usize..=512), any::<usize>()).prop_map(|(len, fill)| Op::Alloc { len, fill }),
        3 => any::<usize>().prop_map(|idx| Op::Free { idx }),
        3 => (any::<usize>(), any::<usize>()).prop_map(|(idx, fill)| Op::Write { idx, fill }),
        5 => any::<usize>().prop_map(|idx| Op::Read { idx }),
        2 => any::<usize>().prop_map(|idx| Op::ReadDead { idx }),
        1 => Just(Op::Pin),
        1 => Just(Op::Unpin),
        2 => (0usize..8).prop_map(|pages| Op::Reclaim { pages }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn guarded_reads_match_reference_under_reclaim(
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        let sma = Sma::with_config(
            SmaConfig::for_testing(256).free_pool_retain(0).sds_retain(0),
        );
        let sds = sma.register_sds("props", Priority::new(4));
        // A no-op reclaimer so reclamation passes exercise tier 3's
        // deferred harvest (limbo parking) as well as tiers 1–2.
        sma.set_reclaimer(sds, std::sync::Arc::new(|_: usize| 0usize))
            .unwrap();

        let mut live: Vec<(SoftHandle, usize, u8)> = Vec::new();
        let mut dead: Vec<SoftHandle> = Vec::new();
        let mut guard: Option<ReadGuard> = None;
        let mut last_epoch = sma.smr().current_epoch();

        for op in ops {
            match op {
                Op::Alloc { len, fill } => {
                    let fill = (fill % 251) as u8 + 1; // never zero: fresh slots are zeroed
                    match sma.alloc_bytes(sds, len) {
                        Ok(handle) => {
                            sma.with_bytes_mut(&handle, |b| b.fill(fill))
                                .expect("fresh handle is live");
                            live.push((handle, len, fill));
                        }
                        // Budget pressure is a legal outcome, not a bug.
                        Err(_) => continue,
                    }
                }
                Op::Free { idx } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (handle, _, _) = live.swap_remove(idx % live.len());
                    sma.free_bytes(handle).expect("live handle");
                    dead.push(handle); // SoftHandle is Copy: stale copy stays revoked
                }
                Op::Write { idx, fill } => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = idx % live.len();
                    let fill = (fill % 251) as u8 + 1;
                    sma.with_bytes_mut(&live[i].0, |b| b.fill(fill))
                        .expect("live handle");
                    live[i].2 = fill;
                }
                Op::Read { idx } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (ref handle, len, fill) = live[idx % live.len()];
                    // A live read must succeed — `Reclaimed` must never
                    // surface to a (guarded) reader — and must observe
                    // exactly the reference bytes, whatever frees or
                    // reclamation passes ran since.
                    let ok = sma
                        .with_bytes(handle, |b| b.len() == len && b.iter().all(|&x| x == fill))
                        .expect("live read never fails");
                    prop_assert!(ok, "guarded read diverged from reference");
                }
                Op::ReadDead { idx } => {
                    if dead.is_empty() {
                        continue;
                    }
                    let handle = &dead[idx % dead.len()];
                    // Freed handles stay revoked forever: the slot may
                    // be parked in limbo or recycled under a new
                    // generation, but these coordinates never resolve.
                    prop_assert!(sma.with_bytes(handle, |_| ()).is_err());
                }
                Op::Pin => {
                    if guard.is_none() {
                        guard = Some(sma.pin());
                    }
                }
                Op::Unpin => {
                    guard = None;
                }
                Op::Reclaim { pages } => {
                    sma.reclaim(pages);
                }
            }
            // The write epoch is monotonic under any interleaving.
            let epoch = sma.smr().current_epoch();
            prop_assert!(epoch >= last_epoch, "epoch went backwards");
            last_epoch = epoch;
            // Limbo is bounded by what the machine actually holds.
            let stats = sma.stats();
            prop_assert!(stats.smr_limbo_pages <= stats.held_pages);
        }

        // Once the last guard drops, limbo drains completely and every
        // surviving allocation still reads back intact.
        drop(guard);
        sma.reclaim(0);
        prop_assert_eq!(sma.limbo_pages(), 0, "limbo drains after guards drop");
        for (handle, len, fill) in &live {
            let ok = sma
                .with_bytes(handle, |b| b.len() == *len && b.iter().all(|x| x == fill))
                .expect("live read never fails");
            prop_assert!(ok);
        }
        for (handle, _, _) in live.drain(..) {
            sma.free_bytes(handle).expect("live handle");
        }
        sma.reclaim(0);
        prop_assert_eq!(sma.stats().live_allocs, 0);
        prop_assert_eq!(sma.limbo_pages(), 0);
    }
}
