//! Slab pages: one 4 KiB frame divided into equal-size slots.

use super::class::SizeClass;
use super::DropFn;
use crate::error::{SoftError, SoftResult};
use crate::page::PageFrame;

/// Sentinel terminating the intrusive free list.
const NO_SLOT: u16 = u16::MAX;

/// Per-slot metadata, kept out-of-band (never inside the page itself, so
/// reclaimed payload bytes can be handed back wholesale).
#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    /// Generation of the allocation currently occupying the slot
    /// (0 ⇒ free). Generations come from the owning heap's monotonically
    /// increasing counter, so they are never reused.
    generation: u64,
    /// Next free slot in the intrusive free list (valid when free).
    next_free: u16,
    /// Destructor for the occupying value, if it needs one and has not
    /// been moved out.
    drop_fn: Option<DropFn>,
    /// Requested length of the occupying allocation in bytes.
    len: u32,
    /// Write epoch of the occupying allocation: bumped by every
    /// writer-path resolution ([`SlabPage::resolve_for_write`]).
    /// Monotonic (mod 2³²) per slot lifetime — the proptest campaign
    /// asserts writers never observe it regress, and it remains the
    /// cheap "was this mutated" probe for diagnostics.
    write_epoch: u32,
    /// SMR epoch the slot was retired at, valid while the slot sits on
    /// the limbo list (see [`SlabPage::free_deferred`]). Limbo slots
    /// have `generation == 0` (handles are already revoked) but keep
    /// their `drop_fn` parked until the flush proves no read guard can
    /// still observe the payload.
    retire_epoch: u64,
}

/// A 4 KiB page carved into slots of a single size class.
pub struct SlabPage {
    frame: PageFrame,
    class: SizeClass,
    slots: Box<[SlotMeta]>,
    free_head: u16,
    live: u16,
    /// Head of the limbo list: slots freed while a read guard was
    /// active, not yet reusable. Chained through `next_free`.
    limbo_head: u16,
    /// Number of slots on the limbo list.
    limbo: u16,
}

impl SlabPage {
    /// Formats `frame` as a slab of `class`-sized slots.
    pub fn new(frame: PageFrame, class: SizeClass) -> Self {
        let n = class.slots_per_page();
        let mut slots = Vec::with_capacity(n);
        for i in 0..n {
            slots.push(SlotMeta {
                generation: 0,
                next_free: if i + 1 < n { (i + 1) as u16 } else { NO_SLOT },
                drop_fn: None,
                len: 0,
                write_epoch: 0,
                retire_epoch: 0,
            });
        }
        SlabPage {
            frame,
            class,
            slots: slots.into_boxed_slice(),
            free_head: 0,
            live: 0,
            limbo_head: NO_SLOT,
            limbo: 0,
        }
    }

    /// The page's size class.
    pub fn class(&self) -> SizeClass {
        self.class
    }

    /// Number of live allocations on the page.
    pub fn live(&self) -> usize {
        self.live as usize
    }

    /// Whether no slot is allocatable. Limbo slots count as occupied:
    /// they cannot be handed out until the flush proves them safe, so
    /// a page whose free list is empty stays off the partial lists
    /// even if some of its slots are merely in limbo.
    pub fn is_full(&self) -> bool {
        self.free_head == NO_SLOT
    }

    /// Whether no slot is occupied *or in limbo* (page is
    /// harvestable — its frame can be recycled with no grace period).
    pub fn is_wholly_free(&self) -> bool {
        self.live == 0 && self.limbo == 0
    }

    /// Number of slots parked on the limbo list.
    pub fn limbo(&self) -> usize {
        self.limbo as usize
    }

    /// Allocates a slot for `len` bytes, stamping it with `generation`.
    ///
    /// Returns the slot index, or `None` if the page is full.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `len` exceeds the slot size or `generation` is 0.
    pub fn alloc(&mut self, generation: u64, len: usize, drop_fn: Option<DropFn>) -> Option<u16> {
        debug_assert!(len <= self.class.slot_size());
        debug_assert!(generation != 0, "generation 0 is the free sentinel");
        if self.free_head == NO_SLOT {
            return None;
        }
        let slot = self.free_head;
        let meta = &mut self.slots[slot as usize];
        self.free_head = meta.next_free;
        meta.generation = generation;
        meta.drop_fn = drop_fn;
        meta.len = len as u32;
        self.live += 1;
        Some(slot)
    }

    /// Resolves a slot to its payload pointer and requested length,
    /// validating the generation.
    pub fn resolve(&self, slot: u16, generation: u64) -> SoftResult<(*mut u8, usize)> {
        let meta = self
            .slots
            .get(slot as usize)
            .ok_or(SoftError::InvalidHandle)?;
        if meta.generation == 0 {
            return Err(SoftError::Revoked);
        }
        if meta.generation != generation {
            return Err(SoftError::Revoked);
        }
        Ok((self.slot_ptr(slot), meta.len as usize))
    }

    /// Like [`SlabPage::resolve`], additionally returning the slot's
    /// current write epoch for optimistic-read validation.
    pub fn resolve_for_read(
        &self,
        slot: u16,
        generation: u64,
    ) -> SoftResult<(*mut u8, usize, u32)> {
        let meta = self
            .slots
            .get(slot as usize)
            .ok_or(SoftError::InvalidHandle)?;
        if meta.generation == 0 || meta.generation != generation {
            return Err(SoftError::Revoked);
        }
        Ok((self.slot_ptr(slot), meta.len as usize, meta.write_epoch))
    }

    /// Like [`SlabPage::resolve`] for writers: bumps the slot's write
    /// epoch so in-flight optimistic readers observe the mutation and
    /// retry instead of returning a torn copy.
    pub fn resolve_for_write(
        &mut self,
        slot: u16,
        generation: u64,
    ) -> SoftResult<(*mut u8, usize)> {
        let meta = self
            .slots
            .get_mut(slot as usize)
            .ok_or(SoftError::InvalidHandle)?;
        if meta.generation == 0 || meta.generation != generation {
            return Err(SoftError::Revoked);
        }
        meta.write_epoch = meta.write_epoch.wrapping_add(1);
        let len = meta.len as usize;
        Ok((self.slot_ptr(slot), len))
    }

    /// Frees a slot, optionally running its destructor.
    ///
    /// `run_drop = false` is used by `take_value`, which has already moved
    /// the payload out.
    pub fn free(&mut self, slot: u16, generation: u64, run_drop: bool) -> SoftResult<usize> {
        let ptr = self.slot_ptr_checked(slot)?;
        let meta = &mut self.slots[slot as usize];
        if meta.generation == 0 || meta.generation != generation {
            return Err(SoftError::Revoked);
        }
        let len = meta.len as usize;
        if run_drop {
            if let Some(f) = meta.drop_fn {
                // SAFETY: the slot is live with a properly initialised
                // payload (invariant: `drop_fn` is recorded only by
                // `alloc` and cleared when the payload moves out), and
                // after this call the slot is marked free so the payload
                // is never touched again.
                unsafe { f(ptr) };
            }
        }
        meta.generation = 0;
        meta.drop_fn = None;
        meta.len = 0;
        meta.next_free = self.free_head;
        self.free_head = slot;
        self.live -= 1;
        Ok(len)
    }

    /// Frees a slot *deferred*: the handle is revoked immediately (the
    /// generation drops to the free sentinel, so resolution fails with
    /// `Revoked` and accounting treats the bytes as freed), but the
    /// slot is parked on the page's limbo list instead of the free
    /// list, and its destructor — if `run_drop` — is retained and only
    /// executed by [`SlabPage::flush_limbo`] once the SMR registry
    /// proves no read guard pinned at or before `retire_epoch`
    /// remains. Until then the payload bytes stay untouched, which is
    /// what keeps concurrently-borrowed `&[u8]` reads valid.
    pub fn free_deferred(
        &mut self,
        slot: u16,
        generation: u64,
        run_drop: bool,
        retire_epoch: u64,
    ) -> SoftResult<usize> {
        self.slot_ptr_checked(slot)?;
        let limbo_head = self.limbo_head;
        let meta = &mut self.slots[slot as usize];
        if meta.generation == 0 || meta.generation != generation {
            return Err(SoftError::Revoked);
        }
        let len = meta.len as usize;
        if !run_drop {
            // Payload already moved out (`take_value`): nothing to
            // defer, the slot just waits out the grace period.
            meta.drop_fn = None;
        }
        meta.generation = 0;
        meta.len = 0;
        meta.retire_epoch = retire_epoch;
        meta.next_free = limbo_head;
        self.limbo_head = slot;
        self.live -= 1;
        self.limbo += 1;
        Ok(len)
    }

    /// Moves every limbo slot whose retirement epoch satisfies
    /// `is_safe` back to the free list, running its deferred
    /// destructor. Returns the number of slots flushed.
    pub fn flush_limbo(&mut self, is_safe: &dyn Fn(u64) -> bool) -> usize {
        let mut flushed = 0;
        let mut cur = self.limbo_head;
        let mut prev = NO_SLOT;
        while cur != NO_SLOT {
            let next = self.slots[cur as usize].next_free;
            if is_safe(self.slots[cur as usize].retire_epoch) {
                let ptr = self.slot_ptr(cur);
                let meta = &mut self.slots[cur as usize];
                if let Some(f) = meta.drop_fn.take() {
                    // SAFETY: the payload was live and initialised when
                    // the slot entered limbo, has not been touched
                    // since (limbo slots are never reallocated), and is
                    // dropped exactly once here before the slot rejoins
                    // the free list.
                    unsafe { f(ptr) };
                }
                meta.retire_epoch = 0;
                meta.next_free = self.free_head;
                self.free_head = cur;
                if prev == NO_SLOT {
                    self.limbo_head = next;
                } else {
                    self.slots[prev as usize].next_free = next;
                }
                self.limbo -= 1;
                flushed += 1;
            } else {
                prev = cur;
            }
            cur = next;
        }
        flushed
    }

    /// Highest retirement epoch on the limbo list, or `None` when the
    /// list is empty. A page is safe to recycle wholesale once the SMR
    /// registry clears this horizon.
    pub fn limbo_retire_horizon(&self) -> Option<u64> {
        let mut max = None;
        let mut cur = self.limbo_head;
        while cur != NO_SLOT {
            let e = self.slots[cur as usize].retire_epoch;
            max = Some(max.map_or(e, |m: u64| m.max(e)));
            cur = self.slots[cur as usize].next_free;
        }
        max
    }

    /// Runs every deferred destructor still parked in limbo and
    /// returns the frame. The caller must have proven the grace period
    /// elapsed (or be tearing the allocator down).
    ///
    /// # Panics
    ///
    /// Panics if any slot is still live (would leak destructors) —
    /// only limbo slots are drained.
    pub fn drain_limbo_and_take_frame(mut self) -> PageFrame {
        assert!(self.live == 0, "harvesting a page with live slots");
        self.drain_limbo();
        self.frame
    }

    fn drain_limbo(&mut self) {
        let mut cur = self.limbo_head;
        while cur != NO_SLOT {
            let ptr = self.slot_ptr(cur);
            let meta = &mut self.slots[cur as usize];
            if let Some(f) = meta.drop_fn.take() {
                // SAFETY: as in `flush_limbo` — initialised payload,
                // untouched since retirement, dropped exactly once.
                unsafe { f(ptr) };
            }
            cur = meta.next_free;
        }
        self.limbo_head = NO_SLOT;
        self.limbo = 0;
    }

    /// Clears the destructor of a live slot (payload has been moved out).
    pub fn disarm_drop(&mut self, slot: u16, generation: u64) -> SoftResult<()> {
        let meta = self
            .slots
            .get_mut(slot as usize)
            .ok_or(SoftError::InvalidHandle)?;
        if meta.generation == 0 || meta.generation != generation {
            return Err(SoftError::Revoked);
        }
        meta.drop_fn = None;
        Ok(())
    }

    /// Frees every live slot (running destructors) and returns the frame
    /// for reuse. Used when an SDS is destroyed or ordered to give up an
    /// entire page's worth of allocations.
    pub fn drop_all_and_take_frame(mut self) -> PageFrame {
        for slot in 0..self.slots.len() as u16 {
            let meta = self.slots[slot as usize];
            if meta.generation != 0 {
                let gen = meta.generation;
                self.free(slot, gen, true).expect("slot verified live");
            }
        }
        // Deferred destructors parked in limbo run here too: callers
        // (SDS destroy, heap teardown) have already synchronised with
        // the SMR registry, so no guard can still observe the slots.
        self.drain_limbo();
        self.frame
    }

    /// Takes the frame of a wholly-free page.
    ///
    /// # Panics
    ///
    /// Panics if any slot is still live (would leak destructors).
    pub fn take_frame(self) -> PageFrame {
        assert!(self.is_wholly_free(), "harvesting a page with live slots");
        self.frame
    }

    /// Iterates the live slots as `(slot, generation, len)` triples.
    pub fn live_slots(&self) -> impl Iterator<Item = (u16, u64, usize)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, m)| {
            (m.generation != 0).then_some((i as u16, m.generation, m.len as usize))
        })
    }

    fn slot_ptr(&self, slot: u16) -> *mut u8 {
        let off = slot as usize * self.class.slot_size();
        debug_assert!(off + self.class.slot_size() <= crate::page::PAGE_SIZE);
        // SAFETY: `off` is within the frame's 4 KiB allocation by the
        // debug-checked invariant above (slot < slots_per_page).
        unsafe { self.frame.as_ptr().add(off) }
    }

    fn slot_ptr_checked(&self, slot: u16) -> SoftResult<*mut u8> {
        if (slot as usize) < self.slots.len() {
            Ok(self.slot_ptr(slot))
        } else {
            Err(SoftError::InvalidHandle)
        }
    }
}

impl std::fmt::Debug for SlabPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlabPage")
            .field("class", &self.class.slot_size())
            .field("live", &self.live)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(size: usize) -> SlabPage {
        SlabPage::new(PageFrame::new_zeroed(), SizeClass::for_size(size).unwrap())
    }

    #[test]
    fn alloc_until_full_then_free() {
        let mut page = page_of(1024);
        let mut slots = Vec::new();
        for gen in 1..=4u64 {
            slots.push((page.alloc(gen, 1000, None).unwrap(), gen));
        }
        assert!(page.is_full());
        assert!(page.alloc(5, 1000, None).is_none());
        for (slot, gen) in slots {
            assert_eq!(page.free(slot, gen, true).unwrap(), 1000);
        }
        assert!(page.is_wholly_free());
    }

    #[test]
    fn resolve_validates_generation() {
        let mut page = page_of(64);
        let slot = page.alloc(7, 10, None).unwrap();
        assert!(page.resolve(slot, 7).is_ok());
        assert_eq!(page.resolve(slot, 8).unwrap_err(), SoftError::Revoked);
        page.free(slot, 7, true).unwrap();
        assert_eq!(page.resolve(slot, 7).unwrap_err(), SoftError::Revoked);
        // Reuse with a fresh generation: the old handle stays dead.
        let slot2 = page.alloc(9, 10, None).unwrap();
        assert_eq!(slot2, slot, "LIFO free list reuses the slot");
        assert_eq!(page.resolve(slot, 7).unwrap_err(), SoftError::Revoked);
        assert!(page.resolve(slot, 9).is_ok());
    }

    #[test]
    fn write_resolution_bumps_epoch() {
        let mut page = page_of(64);
        let slot = page.alloc(5, 16, None).unwrap();
        let (_, _, e0) = page.resolve_for_read(slot, 5).unwrap();
        page.resolve_for_write(slot, 5).unwrap();
        let (_, _, e1) = page.resolve_for_read(slot, 5).unwrap();
        assert_ne!(e0, e1, "writer resolution must change the epoch");
        // Read-path resolution leaves it alone.
        let (_, _, e2) = page.resolve_for_read(slot, 5).unwrap();
        assert_eq!(e1, e2);
        // Stale generations fail on both paths.
        assert_eq!(
            page.resolve_for_read(slot, 6).unwrap_err(),
            SoftError::Revoked
        );
        assert_eq!(
            page.resolve_for_write(slot, 6).unwrap_err(),
            SoftError::Revoked
        );
    }

    #[test]
    fn double_free_is_rejected() {
        let mut page = page_of(64);
        let slot = page.alloc(3, 8, None).unwrap();
        page.free(slot, 3, true).unwrap();
        assert_eq!(page.free(slot, 3, true).unwrap_err(), SoftError::Revoked);
    }

    #[test]
    fn out_of_range_slot_is_invalid() {
        let page = page_of(2048); // 2 slots
        assert_eq!(page.resolve(40, 1).unwrap_err(), SoftError::InvalidHandle);
    }

    #[test]
    fn free_runs_drop_fn_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let mut page = page_of(64);
        let slot = page
            .alloc(
                1,
                std::mem::size_of::<Probe>(),
                super::super::drop_fn_for::<Probe>(),
            )
            .unwrap();
        let (ptr, _) = page.resolve(slot, 1).unwrap();
        // SAFETY: the slot is live, sized and aligned for `Probe`.
        unsafe { ptr.cast::<Probe>().write(Probe) };
        page.free(slot, 1, true).unwrap();
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn disarm_prevents_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let mut page = page_of(64);
        let slot = page
            .alloc(
                1,
                std::mem::size_of::<Probe>(),
                super::super::drop_fn_for::<Probe>(),
            )
            .unwrap();
        let (ptr, _) = page.resolve(slot, 1).unwrap();
        // SAFETY: slot is live, sized and aligned for `Probe`.
        unsafe { ptr.cast::<Probe>().write(Probe) };
        // Move the value out, then disarm.
        // SAFETY: reading the live payload exactly once; drop is disarmed
        // immediately after so it is never dropped in place.
        let probe = unsafe { ptr.cast::<Probe>().read() };
        page.disarm_drop(slot, 1).unwrap();
        page.free(slot, 1, true).unwrap();
        assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        drop(probe);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn live_slot_iteration() {
        let mut page = page_of(512); // 8 slots
        let s1 = page.alloc(11, 100, None).unwrap();
        let s2 = page.alloc(12, 200, None).unwrap();
        let _s3 = page.alloc(13, 300, None).unwrap();
        page.free(s2, 12, true).unwrap();
        let live: Vec<_> = page.live_slots().collect();
        assert_eq!(live.len(), 2);
        assert!(live.contains(&(s1, 11, 100)));
    }

    #[test]
    fn drop_all_returns_frame() {
        let mut page = page_of(1024);
        for gen in 1..=3u64 {
            page.alloc(gen, 512, None).unwrap();
        }
        let frame = page.drop_all_and_take_frame();
        assert_eq!(frame.as_ptr() as usize % crate::page::PAGE_SIZE, 0);
    }

    #[test]
    #[should_panic(expected = "live slots")]
    fn take_frame_with_live_slots_panics() {
        let mut page = page_of(64);
        page.alloc(1, 8, None).unwrap();
        let _ = page.take_frame();
    }

    #[test]
    fn deferred_free_parks_slot_in_limbo() {
        let mut page = page_of(1024);
        let slot = page.alloc(1, 800, None).unwrap();
        assert_eq!(page.free_deferred(slot, 1, true, 7).unwrap(), 800);
        // Handle is revoked immediately...
        assert_eq!(page.resolve(slot, 1).unwrap_err(), SoftError::Revoked);
        // ...but the slot is not reusable and the page not harvestable.
        assert_eq!(page.limbo(), 1);
        assert!(!page.is_wholly_free());
        assert_eq!(page.limbo_retire_horizon(), Some(7));
        // Unsafe epochs flush nothing.
        assert_eq!(page.flush_limbo(&|e| e > 7), 0);
        // Once safe, the slot rejoins the free list exactly once.
        assert_eq!(page.flush_limbo(&|_| true), 1);
        assert_eq!(page.limbo(), 0);
        assert!(page.is_wholly_free());
        assert_eq!(page.flush_limbo(&|_| true), 0);
        // And it can be reallocated.
        assert!(page.alloc(2, 100, None).is_some());
    }

    #[test]
    fn deferred_double_free_is_rejected() {
        let mut page = page_of(64);
        let slot = page.alloc(3, 8, None).unwrap();
        page.free_deferred(slot, 3, true, 1).unwrap();
        assert_eq!(
            page.free_deferred(slot, 3, true, 2).unwrap_err(),
            SoftError::Revoked
        );
        assert_eq!(page.free(slot, 3, true).unwrap_err(), SoftError::Revoked);
        assert_eq!(page.limbo(), 1);
    }

    #[test]
    fn limbo_keeps_page_full_until_flush() {
        let mut page = page_of(2048); // 2 slots
        let s1 = page.alloc(1, 100, None).unwrap();
        let _s2 = page.alloc(2, 100, None).unwrap();
        assert!(page.is_full());
        page.free_deferred(s1, 1, true, 5).unwrap();
        // Limbo slots are not allocatable: the page is still full.
        assert!(page.is_full());
        assert!(page.alloc(3, 100, None).is_none());
        page.flush_limbo(&|_| true);
        assert!(!page.is_full());
        assert!(page.alloc(3, 100, None).is_some());
    }

    #[test]
    fn deferred_drop_runs_at_flush_not_free() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let mut page = page_of(64);
        let slot = page
            .alloc(
                1,
                std::mem::size_of::<Probe>(),
                super::super::drop_fn_for::<Probe>(),
            )
            .unwrap();
        let (ptr, _) = page.resolve(slot, 1).unwrap();
        // SAFETY: the slot is live, sized and aligned for `Probe`.
        unsafe { ptr.cast::<Probe>().write(Probe) };
        page.free_deferred(slot, 1, true, 9).unwrap();
        assert_eq!(DROPS.load(Ordering::SeqCst), 0, "drop must be deferred");
        page.flush_limbo(&|_| true);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1, "drop runs exactly once");
    }

    #[test]
    fn drain_limbo_and_take_frame_runs_deferred_drops() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let mut page = page_of(64);
        let slot = page
            .alloc(
                1,
                std::mem::size_of::<Probe>(),
                super::super::drop_fn_for::<Probe>(),
            )
            .unwrap();
        let (ptr, _) = page.resolve(slot, 1).unwrap();
        // SAFETY: the slot is live, sized and aligned for `Probe`.
        unsafe { ptr.cast::<Probe>().write(Probe) };
        page.free_deferred(slot, 1, true, 3).unwrap();
        let _frame = page.drain_limbo_and_take_frame();
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
}
