//! Per-SDS heaps: size-class slab pages plus multi-page spans.
//!
//! The paper's SMA "provides each SDS with its own heap and set of memory
//! pages" (§3.1). Giving every data structure an isolated heap is the
//! paper's answer to the reclamation-efficacy trade-off: freeing
//! allocations that are *localised within one SDS's pages* maximises the
//! chance of producing wholly-free pages, which are the unit of
//! reclamation. This module implements those heaps:
//!
//! * [`SizeClass`] — the segregated-fit size classes (64 B … 4 KiB).
//! * [`SlabPage`] — one 4 KiB page divided into equal slots of one class,
//!   with per-slot generation and type-erased drop metadata.
//! * [`SdsHeap`] — the heap proper: a page table of slabs and spans,
//!   per-class partial-page lists, a wholly-free page list, and the
//!   harvest operation used by reclamation.

mod class;
mod sds_heap;
mod slab;

pub use class::{SizeClass, CLASS_SIZES, MAX_SLAB_ALLOC};
pub use sds_heap::{FreeOutcome, HeapStats, SdsHeap};
pub use slab::SlabPage;

/// Type-erased destructor invoked on a slot's payload when it is freed or
/// reclaimed without being moved out first.
pub type DropFn = unsafe fn(*mut u8);

/// Returns the erased drop function for `T`, or `None` for types that
/// need no drop glue.
pub fn drop_fn_for<T>() -> Option<DropFn> {
    if std::mem::needs_drop::<T>() {
        // SAFETY-ADJACENT: the returned function must only ever be called
        // with a pointer to a live, properly initialised `T`; the heap
        // guarantees this by construction (a slot's drop fn is recorded
        // at allocation time and cleared when the value is moved out).
        unsafe fn erased<T>(ptr: *mut u8) {
            // SAFETY: caller contract (see above) — `ptr` addresses a
            // live `T` that is dropped exactly once.
            unsafe { std::ptr::drop_in_place(ptr.cast::<T>()) }
        }
        Some(erased::<T>)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_fn_presence_matches_needs_drop() {
        assert!(drop_fn_for::<String>().is_some());
        assert!(drop_fn_for::<Vec<u8>>().is_some());
        assert!(drop_fn_for::<u64>().is_none());
        assert!(drop_fn_for::<[u8; 32]>().is_none());
    }

    #[test]
    fn drop_fn_runs_destructor() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let f = drop_fn_for::<Probe>().unwrap();
        let mut slot = std::mem::MaybeUninit::new(Probe);
        // SAFETY: `slot` holds a live `Probe`; it is dropped exactly once
        // here and never used again.
        unsafe { f(slot.as_mut_ptr().cast()) };
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
}
