//! The per-SDS heap: a page table of slab pages and spans.

use super::class::{SizeClass, MAX_SLAB_ALLOC};
use super::slab::SlabPage;
use super::DropFn;
use crate::error::{SoftError, SoftResult};
use crate::handle::{AllocKind, RawHandle, SdsId};
use crate::page::{PageFrame, Span, PAGE_SIZE};

/// One entry in the heap's page table.
enum PageEntry {
    /// Unused entry, available for reuse.
    Vacant,
    /// A size-class slab page.
    Slab(SlabEntry),
    /// A dedicated multi-page span holding a single allocation.
    Span(SpanEntry),
}

struct SlabEntry {
    page: SlabPage,
    /// Whether the page id is currently listed in its class's partial
    /// list (lists are maintained lazily; stale entries are dropped on
    /// pop, and this flag prevents duplicates).
    in_partial: bool,
    /// Whether the page id is currently listed in `free_pages`.
    in_free: bool,
    /// Whether the page id is currently listed in `limbo_pages`.
    in_limbo: bool,
}

struct SpanEntry {
    span: Span,
    generation: u64,
    drop_fn: Option<DropFn>,
    len: usize,
    /// Write epoch, mirrored from the slab slots (see `SlotMeta`).
    /// Spans are never read optimistically (their memory is really
    /// deallocated on free), but writers still bump it so the epoch
    /// discipline is uniform across allocation kinds.
    write_epoch: u32,
}

/// Result of freeing one allocation.
#[derive(Debug, Default)]
pub struct FreeOutcome {
    /// Requested bytes the allocation occupied.
    pub freed_bytes: usize,
    /// A span released by this free (the SMA returns it to the page
    /// pool); `None` for slab frees.
    pub released_span: Option<Span>,
    /// Whether the free left a slab page wholly free (harvestable).
    pub page_now_free: bool,
}

/// Point-in-time heap accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Pages currently attached to this heap (slab pages + span pages).
    pub held_pages: usize,
    /// Sum of requested lengths of live allocations.
    pub live_bytes: usize,
    /// Live allocation count.
    pub live_allocs: usize,
    /// Wholly-free slab pages still attached (instantly harvestable).
    pub wholly_free_pages: usize,
    /// Slots freed while a read guard was active, awaiting their SMR
    /// grace period before reuse.
    pub limbo_slots: usize,
    /// Slab pages with at least one limbo slot.
    pub limbo_pages: usize,
    /// Cumulative allocations.
    pub allocs_total: u64,
    /// Cumulative frees (including reclaimed allocations).
    pub frees_total: u64,
}

/// An isolated heap serving one Soft Data Structure.
///
/// The heap never talks to the OS or the machine model itself: page
/// frames and spans are handed in by the SMA (which enforces budget and
/// machine capacity) and handed back out by frees and harvests. This
/// keeps all policy in the SMA and all mechanism here.
pub struct SdsHeap {
    id: SdsId,
    pages: Vec<PageEntry>,
    /// Vacant page-table indices available for reuse.
    vacant: Vec<u32>,
    /// Per-class lists of page ids believed to have free slots.
    partial: [Vec<u32>; SizeClass::COUNT],
    /// Page ids believed to be wholly free.
    free_pages: Vec<u32>,
    /// Page ids with at least one limbo slot (maintained eagerly via
    /// `SlabEntry::in_limbo`; detached pages are dropped on flush).
    limbo_pages: Vec<u32>,
    /// Exact count of limbo slots across all pages.
    limbo_slots: usize,
    /// Exact count of wholly-free slab pages (maintained on transitions).
    wholly_free: usize,
    /// Monotonic allocation-generation counter (never reused).
    gen_counter: u64,
    held_pages: usize,
    live_bytes: usize,
    live_allocs: usize,
    allocs_total: u64,
    frees_total: u64,
}

impl SdsHeap {
    /// An empty heap for SDS `id`.
    pub fn new(id: SdsId) -> Self {
        SdsHeap {
            id,
            pages: Vec::new(),
            vacant: Vec::new(),
            partial: Default::default(),
            free_pages: Vec::new(),
            limbo_pages: Vec::new(),
            limbo_slots: 0,
            wholly_free: 0,
            gen_counter: 0,
            held_pages: 0,
            live_bytes: 0,
            live_allocs: 0,
            allocs_total: 0,
            frees_total: 0,
        }
    }

    /// The owning SDS id.
    pub fn id(&self) -> SdsId {
        self.id
    }

    fn next_gen(&mut self) -> u64 {
        self.gen_counter += 1;
        self.gen_counter
    }

    fn push_entry(&mut self, entry: PageEntry) -> u32 {
        if let Some(id) = self.vacant.pop() {
            self.pages[id as usize] = entry;
            id
        } else {
            self.pages.push(entry);
            (self.pages.len() - 1) as u32
        }
    }

    /// Whether an allocation of `len` bytes can proceed without a new
    /// frame from the SMA.
    pub fn can_alloc_without_frame(&self, len: usize) -> bool {
        match SizeClass::for_size(len) {
            Some(class) => self.peek_partial(class).is_some() || self.peek_free_page().is_some(),
            None => false,
        }
    }

    /// Pages a request of `len` bytes would need from the SMA if it
    /// cannot be served from attached pages (1 for slab classes, the span
    /// page count otherwise).
    pub fn pages_needed(len: usize) -> usize {
        if len <= MAX_SLAB_ALLOC {
            1
        } else {
            len.div_ceil(PAGE_SIZE)
        }
    }

    fn peek_partial(&self, class: SizeClass) -> Option<u32> {
        self.partial[class.index()]
            .iter()
            .rev()
            .copied()
            .find(|&id| match &self.pages[id as usize] {
                PageEntry::Slab(e) => e.page.class() == class && !e.page.is_full(),
                _ => false,
            })
    }

    fn peek_free_page(&self) -> Option<u32> {
        self.free_pages
            .iter()
            .rev()
            .copied()
            .find(|&id| match &self.pages[id as usize] {
                PageEntry::Slab(e) => e.page.is_wholly_free(),
                _ => false,
            })
    }

    /// Allocates `len` bytes from a slab class.
    ///
    /// `extra_frame` is consumed if the attached pages cannot serve the
    /// request (the SMA acquires it under budget when
    /// [`SdsHeap::can_alloc_without_frame`] is false).
    ///
    /// # Panics
    ///
    /// Panics if `len` needs a span (callers dispatch on
    /// [`SizeClass::for_size`] first).
    pub fn alloc_slab(
        &mut self,
        len: usize,
        drop_fn: Option<DropFn>,
        extra_frame: Option<PageFrame>,
    ) -> SoftResult<RawHandle> {
        let class = SizeClass::for_size(len).expect("alloc_slab called with span-sized request");
        // 1. A partial page of the right class.
        if let Some(id) = self.pop_valid_partial(class) {
            return Ok(self.alloc_in_page(id, class, len, drop_fn));
        }
        // 2. Re-format one of our own wholly-free pages.
        if let Some(id) = self.take_valid_free_page() {
            let frame = self.remove_slab_frame(id);
            let id = self.adopt_frame(frame, class);
            return Ok(self.alloc_in_page(id, class, len, drop_fn));
        }
        // 3. A fresh frame from the SMA.
        let frame = extra_frame.ok_or(SoftError::BudgetExceeded {
            requested_pages: 1,
            available_pages: 0,
        })?;
        let id = self.adopt_frame(frame, class);
        Ok(self.alloc_in_page(id, class, len, drop_fn))
    }

    /// Pops a valid partial page id of `class`, dropping stale entries.
    fn pop_valid_partial(&mut self, class: SizeClass) -> Option<u32> {
        while let Some(&id) = self.partial[class.index()].last() {
            let valid = match &self.pages[id as usize] {
                PageEntry::Slab(e) => e.page.class() == class && !e.page.is_full(),
                _ => false,
            };
            if valid {
                return Some(id);
            }
            self.partial[class.index()].pop();
            if let PageEntry::Slab(e) = &mut self.pages[id as usize] {
                if e.page.class() == class {
                    e.in_partial = false;
                }
            }
        }
        None
    }

    /// Pops a valid wholly-free page id, dropping stale entries.
    fn take_valid_free_page(&mut self) -> Option<u32> {
        while let Some(id) = self.free_pages.pop() {
            if let PageEntry::Slab(e) = &mut self.pages[id as usize] {
                e.in_free = false;
                if e.page.is_wholly_free() {
                    return Some(id);
                }
            }
        }
        None
    }

    /// Allocates in page `id`, which must be a non-full slab of `class`
    /// currently at the top of its partial list (or freshly adopted).
    fn alloc_in_page(
        &mut self,
        id: u32,
        class: SizeClass,
        len: usize,
        drop_fn: Option<DropFn>,
    ) -> RawHandle {
        let gen = self.next_gen();
        let PageEntry::Slab(e) = &mut self.pages[id as usize] else {
            unreachable!("validated slab entry");
        };
        let was_free = e.page.is_wholly_free();
        let slot = e
            .page
            .alloc(gen, len, drop_fn)
            .expect("validated non-full page");
        if was_free {
            self.wholly_free -= 1;
        }
        let now_full = e.page.is_full();
        if now_full {
            // Drop from the partial list if listed (it is on top when we
            // came through `pop_valid_partial`; freshly adopted pages are
            // pushed by `adopt_frame`).
            if e.in_partial {
                e.in_partial = false;
                let list = &mut self.partial[class.index()];
                if list.last() == Some(&id) {
                    list.pop();
                } else if let Some(pos) = list.iter().rposition(|&p| p == id) {
                    list.swap_remove(pos);
                }
            }
        }
        self.live_bytes += len;
        self.live_allocs += 1;
        self.allocs_total += 1;
        RawHandle {
            sds: self.id,
            page: id,
            slot,
            kind: AllocKind::Slab,
            generation: gen,
        }
    }

    /// Attaches `frame` as a fresh slab page of `class`.
    fn adopt_frame(&mut self, frame: PageFrame, class: SizeClass) -> u32 {
        let entry = PageEntry::Slab(SlabEntry {
            page: SlabPage::new(frame, class),
            in_partial: true,
            in_free: false,
            in_limbo: false,
        });
        let id = self.push_entry(entry);
        self.partial[class.index()].push(id);
        self.held_pages += 1;
        self.wholly_free += 1; // no live slots yet
        id
    }

    /// Detaches slab page `id` (which must be wholly free) and returns
    /// its frame.
    fn remove_slab_frame(&mut self, id: u32) -> PageFrame {
        let entry = std::mem::replace(&mut self.pages[id as usize], PageEntry::Vacant);
        let PageEntry::Slab(e) = entry else {
            unreachable!("validated slab entry");
        };
        self.vacant.push(id);
        self.held_pages -= 1;
        self.wholly_free -= 1;
        e.page.take_frame()
    }

    /// Stores a span allocation (len > [`MAX_SLAB_ALLOC`]).
    pub fn insert_span(&mut self, span: Span, len: usize, drop_fn: Option<DropFn>) -> RawHandle {
        debug_assert!(len <= span.len());
        let gen = self.next_gen();
        let pages = span.pages();
        let id = self.push_entry(PageEntry::Span(SpanEntry {
            span,
            generation: gen,
            drop_fn,
            len,
            write_epoch: 0,
        }));
        self.held_pages += pages;
        self.live_bytes += len;
        self.live_allocs += 1;
        self.allocs_total += 1;
        RawHandle {
            sds: self.id,
            page: id,
            slot: 0,
            kind: AllocKind::Span,
            generation: gen,
        }
    }

    /// Resolves a handle to `(payload pointer, requested length)`.
    pub fn resolve(&self, raw: RawHandle) -> SoftResult<(*mut u8, usize)> {
        let entry = self
            .pages
            .get(raw.page as usize)
            .ok_or(SoftError::InvalidHandle)?;
        match (entry, raw.kind) {
            (PageEntry::Slab(e), AllocKind::Slab) => e.page.resolve(raw.slot, raw.generation),
            (PageEntry::Span(e), AllocKind::Span) => {
                if e.generation == raw.generation {
                    Ok((e.span.as_ptr(), e.len))
                } else {
                    Err(SoftError::Revoked)
                }
            }
            (PageEntry::Vacant, _) => Err(SoftError::Revoked),
            _ => Err(SoftError::Revoked),
        }
    }

    /// Like [`SdsHeap::resolve`], additionally returning the write epoch
    /// the optimistic read path validates against. Only slab handles
    /// support lock-free reads; the SMA routes span handles to the
    /// locked path (span memory is truly deallocated on free, so an
    /// optimistic copy could touch unmapped bytes).
    pub fn resolve_for_read(&self, raw: RawHandle) -> SoftResult<(*mut u8, usize, u32)> {
        let entry = self
            .pages
            .get(raw.page as usize)
            .ok_or(SoftError::InvalidHandle)?;
        match (entry, raw.kind) {
            (PageEntry::Slab(e), AllocKind::Slab) => {
                e.page.resolve_for_read(raw.slot, raw.generation)
            }
            (PageEntry::Span(e), AllocKind::Span) => {
                if e.generation == raw.generation {
                    Ok((e.span.as_ptr(), e.len, e.write_epoch))
                } else {
                    Err(SoftError::Revoked)
                }
            }
            (PageEntry::Vacant, _) => Err(SoftError::Revoked),
            _ => Err(SoftError::Revoked),
        }
    }

    /// Like [`SdsHeap::resolve`] for writers: bumps the allocation's
    /// write epoch so concurrent optimistic readers retry.
    pub fn resolve_for_write(&mut self, raw: RawHandle) -> SoftResult<(*mut u8, usize)> {
        let entry = self
            .pages
            .get_mut(raw.page as usize)
            .ok_or(SoftError::InvalidHandle)?;
        match (entry, raw.kind) {
            (PageEntry::Slab(e), AllocKind::Slab) => {
                e.page.resolve_for_write(raw.slot, raw.generation)
            }
            (PageEntry::Span(e), AllocKind::Span) => {
                if e.generation == raw.generation {
                    e.write_epoch = e.write_epoch.wrapping_add(1);
                    Ok((e.span.as_ptr(), e.len))
                } else {
                    Err(SoftError::Revoked)
                }
            }
            (PageEntry::Vacant, _) => Err(SoftError::Revoked),
            _ => Err(SoftError::Revoked),
        }
    }

    /// Frees the allocation behind `raw`.
    ///
    /// With `run_drop = false` the payload's destructor is skipped (used
    /// by `take_value`, which moved the payload out).
    pub fn free(&mut self, raw: RawHandle, run_drop: bool) -> SoftResult<FreeOutcome> {
        let entry = self
            .pages
            .get_mut(raw.page as usize)
            .ok_or(SoftError::InvalidHandle)?;
        match (entry, raw.kind) {
            (PageEntry::Slab(e), AllocKind::Slab) => {
                let was_full = e.page.is_full();
                let len = e.page.free(raw.slot, raw.generation, run_drop)?;
                let class = e.page.class();
                let now_free = e.page.is_wholly_free();
                if now_free {
                    self.wholly_free += 1;
                    if !e.in_free {
                        e.in_free = true;
                        self.free_pages.push(raw.page);
                    }
                }
                if was_full && !e.in_partial {
                    e.in_partial = true;
                    self.partial[class.index()].push(raw.page);
                }
                self.live_bytes -= len;
                self.live_allocs -= 1;
                self.frees_total += 1;
                Ok(FreeOutcome {
                    freed_bytes: len,
                    released_span: None,
                    page_now_free: now_free,
                })
            }
            (PageEntry::Span(e), AllocKind::Span) => {
                if e.generation != raw.generation {
                    return Err(SoftError::Revoked);
                }
                if run_drop {
                    if let Some(f) = e.drop_fn {
                        // SAFETY: the span holds a live, initialised
                        // payload (invariant of `insert_span` /
                        // `disarm_drop`); the entry is vacated right
                        // after, so the payload is dropped exactly once.
                        unsafe { f(e.span.as_ptr()) };
                    }
                }
                let len = e.len;
                let entry =
                    std::mem::replace(&mut self.pages[raw.page as usize], PageEntry::Vacant);
                let PageEntry::Span(e) = entry else {
                    unreachable!("matched above");
                };
                self.vacant.push(raw.page);
                self.held_pages -= e.span.pages();
                self.live_bytes -= len;
                self.live_allocs -= 1;
                self.frees_total += 1;
                Ok(FreeOutcome {
                    freed_bytes: len,
                    released_span: Some(e.span),
                    page_now_free: false,
                })
            }
            (PageEntry::Vacant, _) => Err(SoftError::Revoked),
            _ => Err(SoftError::Revoked),
        }
    }

    /// Frees the allocation behind `raw` with its memory deferred to
    /// the SMR grace period: the handle is revoked and accounting
    /// updated immediately, but the slot parks on the page's limbo
    /// list (destructor included) until [`SdsHeap::flush_limbo`]
    /// proves no read guard pinned at or before `retire_epoch` is
    /// still active. Span handles delegate to the immediate
    /// [`SdsHeap::free`]: span reads hold the shard lock for their
    /// whole duration, so a span free is always serialised with its
    /// readers and needs no grace.
    pub fn free_deferred(
        &mut self,
        raw: RawHandle,
        run_drop: bool,
        retire_epoch: u64,
    ) -> SoftResult<FreeOutcome> {
        if raw.kind == AllocKind::Span {
            return self.free(raw, run_drop);
        }
        let entry = self
            .pages
            .get_mut(raw.page as usize)
            .ok_or(SoftError::InvalidHandle)?;
        let PageEntry::Slab(e) = entry else {
            return Err(SoftError::Revoked);
        };
        let len = e
            .page
            .free_deferred(raw.slot, raw.generation, run_drop, retire_epoch)?;
        if !e.in_limbo {
            e.in_limbo = true;
            self.limbo_pages.push(raw.page);
        }
        self.limbo_slots += 1;
        self.live_bytes -= len;
        self.live_allocs -= 1;
        self.frees_total += 1;
        // The slot went to limbo, not the free list: the page gained
        // no allocatable slot and cannot have become wholly free.
        Ok(FreeOutcome {
            freed_bytes: len,
            released_span: None,
            page_now_free: false,
        })
    }

    /// Flushes every limbo slot whose retirement epoch satisfies
    /// `is_safe` back into circulation, running deferred destructors
    /// and repairing the partial/free lists for pages that gained
    /// allocatable slots. Returns the number of slots flushed.
    pub fn flush_limbo(&mut self, is_safe: &dyn Fn(u64) -> bool) -> usize {
        if self.limbo_slots == 0 {
            return 0;
        }
        let mut flushed = 0;
        let mut i = 0;
        while i < self.limbo_pages.len() {
            let id = self.limbo_pages[i];
            let PageEntry::Slab(e) = &mut self.pages[id as usize] else {
                // Page was detached (harvest/destroy) out from under
                // the list; drop the stale entry.
                self.limbo_pages.swap_remove(i);
                continue;
            };
            let was_full = e.page.is_full();
            let n = e.page.flush_limbo(is_safe);
            if n > 0 {
                self.limbo_slots -= n;
                flushed += n;
                let class = e.page.class();
                if was_full && !e.page.is_full() && !e.in_partial {
                    e.in_partial = true;
                    self.partial[class.index()].push(id);
                }
                if e.page.is_wholly_free() {
                    self.wholly_free += 1;
                    if !e.in_free {
                        e.in_free = true;
                        self.free_pages.push(id);
                    }
                }
            }
            if e.page.limbo() == 0 {
                e.in_limbo = false;
                self.limbo_pages.swap_remove(i);
            } else {
                i += 1;
            }
        }
        flushed
    }

    /// Detaches up to `max` pages that consist solely of limbo slots
    /// (no live allocations), returning each with its retirement
    /// horizon. The SMA parks these on its limbo list and recycles the
    /// frame once the SMR registry clears the horizon — this is how
    /// reclamation makes progress on pages readers may still observe.
    pub fn harvest_limbo_pages(&mut self, max: usize) -> Vec<(SlabPage, u64)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.limbo_pages.len() && out.len() < max {
            let id = self.limbo_pages[i];
            let detachable = matches!(
                &self.pages[id as usize],
                PageEntry::Slab(e) if e.page.live() == 0 && e.page.limbo() > 0
            );
            if !detachable {
                i += 1;
                continue;
            }
            let entry = std::mem::replace(&mut self.pages[id as usize], PageEntry::Vacant);
            let PageEntry::Slab(e) = entry else {
                unreachable!("matched above");
            };
            self.vacant.push(id);
            self.held_pages -= 1;
            self.limbo_slots -= e.page.limbo();
            let horizon = e
                .page
                .limbo_retire_horizon()
                .expect("limbo page has limbo slots");
            self.limbo_pages.swap_remove(i);
            out.push((e.page, horizon));
        }
        out
    }

    /// Slots currently parked in limbo across all pages.
    pub fn limbo_slots(&self) -> usize {
        self.limbo_slots
    }

    /// Number of attached pages with at least one limbo slot — the
    /// SMD reclamation weight for deprioritising limbo-heavy SDSes.
    pub fn limbo_page_count(&self) -> usize {
        self.limbo_pages.len()
    }

    /// Clears the destructor of a live allocation (payload moved out).
    pub fn disarm_drop(&mut self, raw: RawHandle) -> SoftResult<()> {
        let entry = self
            .pages
            .get_mut(raw.page as usize)
            .ok_or(SoftError::InvalidHandle)?;
        match (entry, raw.kind) {
            (PageEntry::Slab(e), AllocKind::Slab) => e.page.disarm_drop(raw.slot, raw.generation),
            (PageEntry::Span(e), AllocKind::Span) => {
                if e.generation != raw.generation {
                    return Err(SoftError::Revoked);
                }
                e.drop_fn = None;
                Ok(())
            }
            _ => Err(SoftError::Revoked),
        }
    }

    /// Detaches wholly-free slab pages beyond `keep`, returning their
    /// frames (the reclamation harvest).
    pub fn harvest_free_pages(&mut self, keep: usize) -> Vec<PageFrame> {
        let mut frames = Vec::new();
        while self.wholly_free > keep {
            match self.take_valid_free_page() {
                Some(id) => frames.push(self.remove_slab_frame(id)),
                None => break,
            }
        }
        frames
    }

    /// Exact number of wholly-free slab pages attached.
    pub fn wholly_free_pages(&self) -> usize {
        self.wholly_free
    }

    /// Pages currently attached to the heap.
    pub fn held_pages(&self) -> usize {
        self.held_pages
    }

    /// Sum of requested lengths of live allocations.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Live allocation count.
    pub fn live_allocs(&self) -> usize {
        self.live_allocs
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            held_pages: self.held_pages,
            live_bytes: self.live_bytes,
            live_allocs: self.live_allocs,
            wholly_free_pages: self.wholly_free,
            limbo_slots: self.limbo_slots,
            limbo_pages: self.limbo_pages.len(),
            allocs_total: self.allocs_total,
            frees_total: self.frees_total,
        }
    }

    /// Destroys the heap: drops every live payload and returns all
    /// attached memory `(frames, spans)` for the SMA to release.
    pub fn destroy(mut self) -> (Vec<PageFrame>, Vec<Span>) {
        let mut frames = Vec::new();
        let mut spans = Vec::new();
        for entry in self.pages.drain(..) {
            match entry {
                PageEntry::Vacant => {}
                PageEntry::Slab(e) => frames.push(e.page.drop_all_and_take_frame()),
                PageEntry::Span(e) => {
                    if let Some(f) = e.drop_fn {
                        // SAFETY: span payload is live and initialised;
                        // dropped exactly once here, span freed after.
                        unsafe { f(e.span.as_ptr()) };
                    }
                    spans.push(e.span);
                }
            }
        }
        (frames, spans)
    }
}

impl Drop for SdsHeap {
    fn drop(&mut self) {
        // Teardown without `destroy()`: run the remaining payload
        // destructors (they release associated traditional memory, as
        // in the paper's Redis integration). Frames/spans are dropped
        // in place; arena frames are leases whose memory the page pool
        // reclaims when it drops (after the heaps — see `SmaInner`).
        for entry in self.pages.drain(..) {
            match entry {
                PageEntry::Vacant => {}
                PageEntry::Slab(e) => {
                    let _frame = e.page.drop_all_and_take_frame();
                }
                PageEntry::Span(e) => {
                    if let Some(f) = e.drop_fn {
                        // SAFETY: the span holds a live, initialised
                        // payload; it is dropped exactly once here.
                        unsafe { f(e.span.as_ptr()) };
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for SdsHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SdsHeap")
            .field("id", &self.id)
            .field("held_pages", &self.held_pages)
            .field("live_bytes", &self.live_bytes)
            .field("live_allocs", &self.live_allocs)
            .field("wholly_free", &self.wholly_free)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> SdsHeap {
        SdsHeap::new(SdsId::from_index(0))
    }

    fn frame() -> PageFrame {
        PageFrame::new_zeroed()
    }

    #[test]
    fn alloc_needs_frame_only_when_empty() {
        let mut h = heap();
        assert!(!h.can_alloc_without_frame(100));
        let a = h.alloc_slab(100, None, Some(frame())).unwrap();
        assert!(h.can_alloc_without_frame(100));
        let b = h.alloc_slab(100, None, None).unwrap();
        assert_eq!(a.page, b.page);
        assert_eq!(h.held_pages(), 1);
        assert_eq!(h.live_allocs(), 2);
    }

    #[test]
    fn alloc_without_frame_fails_cleanly() {
        let mut h = heap();
        assert_eq!(
            h.alloc_slab(100, None, None).unwrap_err(),
            SoftError::BudgetExceeded {
                requested_pages: 1,
                available_pages: 0
            }
        );
    }

    #[test]
    fn fills_page_then_requires_new_frame() {
        let mut h = heap();
        // 1024-class: 4 slots per page.
        for i in 0..4 {
            let need = if i == 0 { Some(frame()) } else { None };
            h.alloc_slab(1024, None, need).unwrap();
        }
        assert!(!h.can_alloc_without_frame(1024));
        h.alloc_slab(1024, None, Some(frame())).unwrap();
        assert_eq!(h.held_pages(), 2);
    }

    #[test]
    fn free_and_reuse_slot() {
        let mut h = heap();
        let a = h.alloc_slab(512, None, Some(frame())).unwrap();
        let out = h.free(a, true).unwrap();
        assert_eq!(out.freed_bytes, 512);
        assert!(out.page_now_free);
        assert_eq!(h.wholly_free_pages(), 1);
        // Reuse without a new frame.
        let b = h.alloc_slab(512, None, None).unwrap();
        assert_eq!(h.wholly_free_pages(), 0);
        assert_eq!(b.page, a.page);
        assert_eq!(h.resolve(a).unwrap_err(), SoftError::Revoked);
        assert!(h.resolve(b).is_ok());
    }

    #[test]
    fn free_page_reformats_for_other_class() {
        let mut h = heap();
        let a = h.alloc_slab(64, None, Some(frame())).unwrap();
        h.free(a, true).unwrap();
        // Different class: heap must re-format its own free page instead
        // of demanding a new frame.
        let b = h.alloc_slab(2048, None, None).unwrap();
        assert!(h.resolve(b).is_ok());
        assert_eq!(h.held_pages(), 1);
    }

    #[test]
    fn span_roundtrip() {
        let mut h = heap();
        let span = Span::new_zeroed(3);
        let raw = h.insert_span(span, 10_000, None);
        assert_eq!(raw.kind, AllocKind::Span);
        assert_eq!(h.held_pages(), 3);
        let (_, len) = h.resolve(raw).unwrap();
        assert_eq!(len, 10_000);
        let out = h.free(raw, true).unwrap();
        assert_eq!(out.freed_bytes, 10_000);
        assert_eq!(out.released_span.unwrap().pages(), 3);
        assert_eq!(h.held_pages(), 0);
        assert_eq!(h.resolve(raw).unwrap_err(), SoftError::Revoked);
    }

    #[test]
    fn span_generation_is_checked_after_entry_reuse() {
        let mut h = heap();
        let raw1 = h.insert_span(Span::new_zeroed(2), 8192, None);
        h.free(raw1, true).unwrap();
        // Entry index is recycled for a new span; old handle must fail.
        let raw2 = h.insert_span(Span::new_zeroed(2), 8192, None);
        assert_eq!(raw1.page, raw2.page, "entry recycled");
        assert_eq!(h.resolve(raw1).unwrap_err(), SoftError::Revoked);
        assert!(h.resolve(raw2).is_ok());
    }

    #[test]
    fn harvest_respects_keep() {
        let mut h = heap();
        let mut handles = Vec::new();
        for _ in 0..3 {
            // Full-page allocations so each free releases a page.
            handles.push(h.alloc_slab(4096, None, Some(frame())).unwrap());
        }
        for raw in handles {
            h.free(raw, true).unwrap();
        }
        assert_eq!(h.wholly_free_pages(), 3);
        let harvested = h.harvest_free_pages(1);
        assert_eq!(harvested.len(), 2);
        assert_eq!(h.wholly_free_pages(), 1);
        assert_eq!(h.held_pages(), 1);
    }

    #[test]
    fn mixed_classes_accounting() {
        let mut h = heap();
        let a = h.alloc_slab(64, None, Some(frame())).unwrap();
        let b = h.alloc_slab(1024, None, Some(frame())).unwrap();
        let c = h.insert_span(Span::new_zeroed(2), 5000, None);
        let s = h.stats();
        assert_eq!(s.held_pages, 4);
        assert_eq!(s.live_bytes, 64 + 1024 + 5000);
        assert_eq!(s.live_allocs, 3);
        h.free(b, true).unwrap();
        h.free(a, true).unwrap();
        h.free(c, true).unwrap();
        let s = h.stats();
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.live_allocs, 0);
        assert_eq!(s.frees_total, 3);
        assert_eq!(s.held_pages, 2); // two wholly-free slab pages remain
        assert_eq!(s.wholly_free_pages, 2);
    }

    #[test]
    fn destroy_runs_drops_and_returns_memory() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        let mut h = heap();
        for _ in 0..3 {
            let raw = h
                .alloc_slab(
                    std::mem::size_of::<Probe>().max(1),
                    super::super::drop_fn_for::<Probe>(),
                    Some(frame()),
                )
                .unwrap();
            let (ptr, _) = h.resolve(raw).unwrap();
            // SAFETY: live slot sized for `Probe`.
            unsafe { ptr.cast::<Probe>().write(Probe) };
        }
        let (frames, spans) = h.destroy();
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
        assert_eq!(frames.len(), 1); // all three probes share one 64 B page
        assert!(spans.is_empty());
    }

    #[test]
    fn pages_needed_matches_kind() {
        assert_eq!(SdsHeap::pages_needed(1), 1);
        assert_eq!(SdsHeap::pages_needed(4096), 1);
        assert_eq!(SdsHeap::pages_needed(4097), 2);
        assert_eq!(SdsHeap::pages_needed(3 * 4096 + 1), 4);
    }

    #[test]
    fn churn_preserves_invariants() {
        // Deterministic alloc/free churn across classes; checks that
        // accounting never drifts and stale list entries are tolerated.
        let mut h = heap();
        let mut live: Vec<(RawHandle, usize)> = Vec::new();
        let mut expected_bytes = 0usize;
        let sizes = [32usize, 100, 700, 1500, 3000];
        for round in 0..400 {
            let size = sizes[round % sizes.len()];
            if round % 3 == 2 && !live.is_empty() {
                let (raw, len) = live.swap_remove(round % live.len());
                let out = h.free(raw, true).unwrap();
                assert_eq!(out.freed_bytes, len);
                expected_bytes -= len;
            } else {
                let extra = if h.can_alloc_without_frame(size) {
                    None
                } else {
                    Some(frame())
                };
                let raw = h.alloc_slab(size, None, extra).unwrap();
                live.push((raw, size));
                expected_bytes += size;
            }
            assert_eq!(h.live_bytes(), expected_bytes);
            assert_eq!(h.live_allocs(), live.len());
        }
        for (raw, _) in live.drain(..) {
            h.free(raw, true).unwrap();
        }
        assert_eq!(h.live_bytes(), 0);
        assert_eq!(h.wholly_free_pages(), h.held_pages());
    }

    #[test]
    fn deferred_free_keeps_page_out_of_circulation() {
        let mut h = heap();
        let a = h.alloc_slab(4096, None, Some(frame())).unwrap();
        let out = h.free_deferred(a, true, 3).unwrap();
        assert_eq!(out.freed_bytes, 4096);
        assert!(!out.page_now_free);
        // Accounting treats the bytes as freed immediately...
        assert_eq!(h.live_bytes(), 0);
        assert_eq!(h.live_allocs(), 0);
        assert_eq!(h.stats().frees_total, 1);
        // ...but the page is neither wholly free nor harvestable.
        assert_eq!(h.wholly_free_pages(), 0);
        assert_eq!(h.limbo_slots(), 1);
        assert_eq!(h.limbo_page_count(), 1);
        assert!(h.harvest_free_pages(0).is_empty());
        assert_eq!(h.resolve(a).unwrap_err(), SoftError::Revoked);
        // An unsafe epoch flushes nothing; a safe one restores it.
        assert_eq!(h.flush_limbo(&|e| e > 3), 0);
        assert_eq!(h.flush_limbo(&|_| true), 1);
        assert_eq!(h.limbo_slots(), 0);
        assert_eq!(h.wholly_free_pages(), 1);
        assert_eq!(h.harvest_free_pages(0).len(), 1);
    }

    #[test]
    fn flush_limbo_returns_partial_page_to_allocation() {
        let mut h = heap();
        // 1024-class: 4 slots. Fill the page, defer one free.
        let mut handles = Vec::new();
        for i in 0..4 {
            let need = if i == 0 { Some(frame()) } else { None };
            handles.push(h.alloc_slab(1024, None, need).unwrap());
        }
        assert!(!h.can_alloc_without_frame(1024));
        h.free_deferred(handles[0], true, 1).unwrap();
        // The limbo slot is not allocatable: still needs a frame.
        assert!(!h.can_alloc_without_frame(1024));
        h.flush_limbo(&|_| true);
        // Flushed slot is allocatable again without a new frame.
        assert!(h.can_alloc_without_frame(1024));
        let b = h.alloc_slab(1024, None, None).unwrap();
        assert_eq!(b.page, handles[0].page);
    }

    #[test]
    fn harvest_limbo_pages_detaches_reader_pinned_pages() {
        let mut h = heap();
        let a = h.alloc_slab(4096, None, Some(frame())).unwrap();
        let b = h.alloc_slab(4096, None, Some(frame())).unwrap();
        h.free_deferred(a, true, 5).unwrap();
        h.free_deferred(b, true, 9).unwrap();
        assert_eq!(h.held_pages(), 2);
        let parked = h.harvest_limbo_pages(1);
        assert_eq!(parked.len(), 1);
        assert_eq!(h.held_pages(), 1);
        assert_eq!(h.limbo_page_count(), 1);
        let parked2 = h.harvest_limbo_pages(8);
        assert_eq!(parked2.len(), 1);
        assert_eq!(h.held_pages(), 0);
        assert_eq!(h.limbo_slots(), 0);
        let horizons: Vec<u64> = parked
            .into_iter()
            .chain(parked2)
            .map(|(page, horizon)| {
                let _ = page.drain_limbo_and_take_frame();
                horizon
            })
            .collect();
        assert_eq!(
            {
                let mut h = horizons.clone();
                h.sort_unstable();
                h
            },
            vec![5, 9]
        );
        // Flush tolerates the detached entries.
        assert_eq!(h.flush_limbo(&|_| true), 0);
    }

    #[test]
    fn span_free_deferred_is_immediate() {
        let mut h = heap();
        let raw = h.insert_span(Span::new_zeroed(2), 8192, None);
        let out = h.free_deferred(raw, true, 1).unwrap();
        assert!(out.released_span.is_some());
        assert_eq!(h.limbo_slots(), 0);
        assert_eq!(h.held_pages(), 0);
    }

    #[test]
    fn mixed_live_and_limbo_page_is_not_harvestable() {
        let mut h = heap();
        // Two 2048-slots on one page: one stays live, one goes limbo.
        let a = h.alloc_slab(2048, None, Some(frame())).unwrap();
        let b = h.alloc_slab(2048, None, None).unwrap();
        assert_eq!(a.page, b.page);
        h.free_deferred(a, true, 2).unwrap();
        assert!(
            h.harvest_limbo_pages(8).is_empty(),
            "page still has a live slot"
        );
        assert_eq!(h.limbo_page_count(), 1);
        // Free the live slot immediately: page is now all-limbo.
        h.free(b, true).unwrap();
        assert_eq!(h.harvest_limbo_pages(8).len(), 1);
    }
}
