//! Segregated-fit size classes.
//!
//! Slab pages are divided into power-of-two slots between 64 B and 4 KiB.
//! Allocations above [`MAX_SLAB_ALLOC`] are backed by dedicated spans.
//! The class spacing trades internal fragmentation against the number of
//! distinct partial-page lists — the same balance "a simple textbook
//! memory allocator" (§5) strikes.

use crate::page::PAGE_SIZE;

/// Slot sizes of the slab classes, ascending.
pub const CLASS_SIZES: [usize; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// Largest allocation served from a slab page; bigger requests get spans.
pub const MAX_SLAB_ALLOC: usize = PAGE_SIZE;

/// A slab size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SizeClass(u8);

impl SizeClass {
    /// Number of classes.
    pub const COUNT: usize = CLASS_SIZES.len();

    /// The smallest class whose slots fit `size` bytes, or `None` if the
    /// request needs a span.
    pub fn for_size(size: usize) -> Option<SizeClass> {
        CLASS_SIZES
            .iter()
            .position(|&s| s >= size)
            .map(|i| SizeClass(i as u8))
    }

    /// Builds a class from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= SizeClass::COUNT`.
    pub fn from_index(index: usize) -> SizeClass {
        assert!(index < Self::COUNT, "size class index out of range");
        SizeClass(index as u8)
    }

    /// Index of this class in [`CLASS_SIZES`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Slot size in bytes.
    pub fn slot_size(self) -> usize {
        CLASS_SIZES[self.0 as usize]
    }

    /// Number of slots per 4 KiB page.
    pub fn slots_per_page(self) -> usize {
        PAGE_SIZE / self.slot_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_selection() {
        assert_eq!(SizeClass::for_size(0).unwrap().slot_size(), 64);
        assert_eq!(SizeClass::for_size(1).unwrap().slot_size(), 64);
        assert_eq!(SizeClass::for_size(64).unwrap().slot_size(), 64);
        assert_eq!(SizeClass::for_size(65).unwrap().slot_size(), 128);
        assert_eq!(SizeClass::for_size(1024).unwrap().slot_size(), 1024);
        assert_eq!(SizeClass::for_size(2049).unwrap().slot_size(), 4096);
        assert_eq!(SizeClass::for_size(4096).unwrap().slot_size(), 4096);
        assert!(SizeClass::for_size(4097).is_none());
    }

    #[test]
    fn slots_per_page() {
        assert_eq!(SizeClass::for_size(64).unwrap().slots_per_page(), 64);
        // The paper's example: two 2 KB list elements fit in a 4 KB page.
        assert_eq!(SizeClass::for_size(2048).unwrap().slots_per_page(), 2);
        assert_eq!(SizeClass::for_size(4096).unwrap().slots_per_page(), 1);
        // The stress tests use 1 KiB allocations: four per page.
        assert_eq!(SizeClass::for_size(1024).unwrap().slots_per_page(), 4);
    }

    #[test]
    fn index_roundtrip() {
        for i in 0..SizeClass::COUNT {
            assert_eq!(SizeClass::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = SizeClass::from_index(SizeClass::COUNT);
    }
}
