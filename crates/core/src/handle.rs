//! Generation-checked handles into soft memory.
//!
//! Raw pointers into revocable memory are unsound: the Soft Memory Daemon
//! may demand reclamation at any time, invalidating every pointer into the
//! reclaimed allocation (§7 of the paper). Instead of pointers, this crate
//! hands out *handles* — small, `Copy`-able coordinates (SDS, page, slot)
//! tagged with a *generation*. Every access revalidates the generation, so
//! an access through a stale handle yields [`crate::SoftError::Revoked`]
//! rather than undefined behaviour.

use std::marker::PhantomData;

/// Identifier of a registered Soft Data Structure within one SMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SdsId(pub(crate) u32);

impl SdsId {
    /// Returns the raw index value (useful for logging and tests).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Builds an id from a raw index.
    ///
    /// Only meaningful for ids previously obtained from
    /// [`crate::Sma::register_sds`]; a fabricated id is rejected at use
    /// time with [`crate::SoftError::UnknownSds`].
    pub fn from_index(index: u32) -> Self {
        SdsId(index)
    }
}

/// User-defined reclamation priority of an SDS.
///
/// Higher values mean *more important*: during reclamation the SMA visits
/// SDSs in ascending priority order, so low-priority structures give up
/// memory first (§3.1, "Non-Disruptiveness").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Priority(pub u32);

impl Priority {
    /// Lowest priority: first in line for reclamation.
    pub const MIN: Priority = Priority(0);
    /// Highest priority: last in line for reclamation.
    pub const MAX: Priority = Priority(u32::MAX);

    /// Creates a priority with the given level.
    pub const fn new(level: u32) -> Self {
        Priority(level)
    }

    /// Returns the numeric level.
    pub const fn level(self) -> u32 {
        self.0
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority(16)
    }
}

/// Whether a handle points into a slab slot or a multi-page span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocKind {
    /// A slot within a size-class slab page.
    Slab,
    /// A dedicated, contiguous multi-page span (allocations > 4 KiB, and
    /// [`crate::heap`] span requests such as `SoftArray` backing stores).
    Span,
}

/// The raw coordinates of a soft allocation inside one SMA.
///
/// `RawHandle` is the untyped currency of the allocator; most code uses
/// the typed wrapper [`SoftSlot`] or byte-level [`SoftHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RawHandle {
    /// Which SDS heap the allocation lives in.
    pub sds: SdsId,
    /// Heap-local page-table index (slab page or span).
    pub page: u32,
    /// Slot index within a slab page (0 for spans).
    pub slot: u16,
    /// Slab/span discriminator.
    pub kind: AllocKind,
    /// Generation at allocation time; mismatch ⇒ the slot was freed or
    /// reclaimed since. Generations are unique per heap for the lifetime
    /// of the process (64-bit counter), so stale handles can never
    /// alias a newer allocation.
    pub generation: u64,
}

/// An untyped handle to a byte allocation in soft memory.
///
/// Obtained from [`crate::Sma::alloc_bytes`]; access the bytes with
/// [`crate::Sma::with_bytes`] / [`crate::Sma::with_bytes_mut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SoftHandle {
    pub(crate) raw: RawHandle,
    /// Requested length in bytes (≤ the slot/span capacity).
    pub(crate) len: usize,
}

impl SoftHandle {
    /// The SDS this allocation belongs to.
    pub fn sds(&self) -> SdsId {
        self.raw.sds
    }

    /// Requested allocation length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the allocation has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw coordinates (for diagnostics).
    pub fn raw(&self) -> RawHandle {
        self.raw
    }
}

/// A typed handle to a value of type `T` stored in soft memory.
///
/// The value is reached through [`crate::Sma::with_value`] /
/// [`crate::Sma::with_value_mut`], and recovered (moved out) with
/// [`crate::Sma::take_value`]. If the allocation is reclaimed, all of
/// these return [`crate::SoftError::Revoked`].
///
/// `SoftSlot` is deliberately *not* `Clone`: exactly one handle owns the
/// logical slot, mirroring `Box<T>`-style ownership. Use
/// [`SoftSlot::shared_view`] for read-only aliases.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct SoftSlot<T> {
    pub(crate) raw: RawHandle,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> SoftSlot<T> {
    pub(crate) fn new(raw: RawHandle) -> Self {
        SoftSlot {
            raw,
            _marker: PhantomData,
        }
    }

    /// Reconstructs a typed slot from raw coordinates.
    ///
    /// Intended for intrusive soft data structures (e.g. linked lists
    /// whose nodes store the raw coordinates of their successor in soft
    /// memory) that need to round-trip handles through plain data.
    ///
    /// # Safety
    ///
    /// `raw` must have been produced by [`SoftSlot::into_raw`] (or
    /// [`SoftSlot::raw`]) on a slot of the *same* `T`, within the same
    /// SMA. Constructing a slot with a mismatched type leads to reads of
    /// the payload at the wrong type, which is undefined behaviour.
    /// Stale coordinates are fine: generation checking turns them into
    /// [`crate::SoftError::Revoked`].
    pub unsafe fn from_raw(raw: RawHandle) -> Self {
        SoftSlot::new(raw)
    }

    /// Dissolves the slot into its raw coordinates (see
    /// [`SoftSlot::from_raw`]).
    pub fn into_raw(self) -> RawHandle {
        self.raw
    }

    /// The SDS this slot belongs to.
    pub fn sds(&self) -> SdsId {
        self.raw.sds
    }

    /// The raw coordinates (for diagnostics and logging).
    pub fn raw(&self) -> RawHandle {
        self.raw
    }

    /// Creates a read-only alias of this slot.
    ///
    /// Views do not confer ownership: freeing through the owning slot (or
    /// reclamation) revokes every view, whose accesses then return
    /// [`crate::SoftError::Revoked`].
    pub fn shared_view(&self) -> SoftView<T> {
        SoftView {
            raw: self.raw,
            _marker: PhantomData,
        }
    }
}

/// A read-only, copyable alias of a [`SoftSlot`].
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct SoftView<T> {
    pub(crate) raw: RawHandle,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for SoftView<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SoftView<T> {}

impl<T> SoftView<T> {
    /// The raw coordinates of the viewed slot.
    pub fn raw(&self) -> RawHandle {
        self.raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_raw() -> RawHandle {
        RawHandle {
            sds: SdsId(3),
            page: 7,
            slot: 2,
            kind: AllocKind::Slab,
            generation: 9,
        }
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::MIN < Priority::default());
        assert!(Priority::default() < Priority::MAX);
        assert_eq!(Priority::new(4).level(), 4);
    }

    #[test]
    fn handle_accessors() {
        let h = SoftHandle {
            raw: sample_raw(),
            len: 128,
        };
        assert_eq!(h.sds(), SdsId::from_index(3));
        assert_eq!(h.len(), 128);
        assert!(!h.is_empty());
        assert_eq!(h.raw().generation, 9);
    }

    #[test]
    fn views_are_copyable() {
        let slot: SoftSlot<u32> = SoftSlot::new(sample_raw());
        let v1 = slot.shared_view();
        let v2 = v1;
        assert_eq!(v1.raw(), v2.raw());
        assert_eq!(v1.raw(), slot.raw());
    }
}
