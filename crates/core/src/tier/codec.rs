//! The cold tier's value codec: a dependency-free LZ77-family byte
//! compressor plus an FNV-1a content checksum.
//!
//! Demoted values sit in the cold arena (and on disk) for a long time,
//! so density matters more than compression speed — but the container
//! vendors no compression crates, so the codec is written here from
//! scratch. Two properties are load-bearing for the rest of the tier:
//!
//! * **Decompression never panics.** The chaos campaign flips bytes in
//!   the arena and truncates the spill file; a malformed stream must
//!   surface as `None` (a clean miss), never as an out-of-bounds copy.
//!   Every read below is bounds-checked and the output is capped at the
//!   recorded raw length.
//! * **Compression never expands past raw + framing.** When the LZ
//!   stream would be larger than the input, the caller stores the value
//!   raw ([`Encoding::Raw`]) — so a demotion's arena footprint is at
//!   most `len + len/128 + 1` bytes even for incompressible data.

/// How a demoted value's bytes are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Stored verbatim (the LZ stream would have been larger).
    Raw,
    /// Stored as an LZ token stream (see module docs for the format).
    Lz,
}

/// Maximum literal run per control byte (control `0x00..=0x7F` means a
/// run of `control + 1` literals).
const MAX_LITERAL_RUN: usize = 128;
/// Minimum/maximum match length (control `0x80..=0xFF` means a match of
/// `(control & 0x7F) + MIN_MATCH` bytes at a 2-byte LE back-offset).
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 0x7F + MIN_MATCH;
/// Offsets are 16-bit and 1-based.
const MAX_OFFSET: usize = u16::MAX as usize;

/// 64-bit FNV-1a over `bytes` — the tier's content checksum.
///
/// Computed over the *raw* (uncompressed) value at demotion and
/// re-verified after decompression at promotion, so it catches both
/// storage bit-flips and codec corruption in one check.
pub fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Compresses `input`, choosing whichever of raw/LZ is smaller.
///
/// Returns the stored bytes and the encoding the caller must record to
/// decode them again.
pub fn encode(input: &[u8]) -> (Vec<u8>, Encoding) {
    let lz = compress_lz(input);
    if lz.len() < input.len() {
        (lz, Encoding::Lz)
    } else {
        (input.to_vec(), Encoding::Raw)
    }
}

/// Decodes `stored` back into the raw value.
///
/// `raw_len` is the length recorded at demotion; any stream that does
/// not decode to exactly that many bytes is malformed. Returns `None`
/// on any inconsistency — the caller treats that as a corrupt entry.
pub fn decode(stored: &[u8], encoding: Encoding, raw_len: usize) -> Option<Vec<u8>> {
    match encoding {
        Encoding::Raw => (stored.len() == raw_len).then(|| stored.to_vec()),
        Encoding::Lz => decompress_lz(stored, raw_len),
    }
}

/// Greedy LZ with a last-position hash table over 4-byte prefixes.
fn compress_lz(input: &[u8]) -> Vec<u8> {
    const TABLE_BITS: usize = 12;
    const TABLE_SIZE: usize = 1 << TABLE_BITS;
    let hash = |window: &[u8]| -> usize {
        let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
        (v.wrapping_mul(0x9E37_79B1) >> (32 - TABLE_BITS)) as usize
    };

    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = [usize::MAX; TABLE_SIZE];
    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut run = from;
        while run < to {
            let n = (to - run).min(MAX_LITERAL_RUN);
            out.push((n - 1) as u8);
            out.extend_from_slice(&input[run..run + n]);
            run += n;
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash(&input[i..]);
        let candidate = table[h];
        table[h] = i;
        let found = candidate != usize::MAX
            && i - candidate <= MAX_OFFSET
            && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH];
        if !found {
            i += 1;
            continue;
        }
        let mut len = MIN_MATCH;
        let limit = (input.len() - i).min(MAX_MATCH);
        while len < limit && input[candidate + len] == input[i + len] {
            len += 1;
        }
        flush_literals(&mut out, literal_start, i);
        let offset = (i - candidate) as u16;
        out.push(0x80 | (len - MIN_MATCH) as u8);
        out.extend_from_slice(&offset.to_le_bytes());
        i += len;
        literal_start = i;
    }
    flush_literals(&mut out, literal_start, input.len());
    out
}

/// Fully bounds-checked LZ decoder. Any malformed token — truncated
/// stream, zero or out-of-range offset, output overrun, or a final
/// length that is not exactly `raw_len` — yields `None`.
fn decompress_lz(stored: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while i < stored.len() {
        let control = stored[i];
        i += 1;
        if control < 0x80 {
            let n = control as usize + 1;
            let lit = stored.get(i..i + n)?;
            if out.len() + n > raw_len {
                return None;
            }
            out.extend_from_slice(lit);
            i += n;
        } else {
            let len = (control & 0x7F) as usize + MIN_MATCH;
            let off_bytes = stored.get(i..i + 2)?;
            i += 2;
            let offset = u16::from_le_bytes([off_bytes[0], off_bytes[1]]) as usize;
            if offset == 0 || offset > out.len() || out.len() + len > raw_len {
                return None;
            }
            // Byte-at-a-time copy: overlapping matches (offset < len)
            // are legal LZ and replicate the most recent bytes.
            let start = out.len() - offset;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    (out.len() == raw_len).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) {
        let (stored, enc) = encode(input);
        let back = decode(&stored, enc, input.len()).expect("decode");
        assert_eq!(back, input);
    }

    #[test]
    fn roundtrips_varied_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcd");
        roundtrip(&vec![0x5A; 10_000]);
        roundtrip(
            b"the quick brown fox jumps over the lazy dog \
                    the quick brown fox jumps over the lazy dog",
        );
        // Pseudo-random (incompressible) bytes fall back to Raw.
        let mut x = 0x1234_5678_u64;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let (stored, enc) = encode(&noise);
        assert_eq!(enc, Encoding::Raw);
        assert_eq!(decode(&stored, enc, noise.len()).unwrap(), noise);
    }

    #[test]
    fn repetitive_input_actually_compresses() {
        let input = vec![0x5A_u8; 64 * 1024];
        let (stored, enc) = encode(&input);
        assert_eq!(enc, Encoding::Lz);
        assert!(
            stored.len() < input.len() / 10,
            "64 KiB of one byte should compress >10x, got {} bytes",
            stored.len()
        );
    }

    #[test]
    fn decoder_rejects_malformed_streams_without_panicking() {
        // Truncated literal run.
        assert_eq!(decompress_lz(&[0x05, b'a'], 6), None);
        // Match with zero offset.
        assert_eq!(decompress_lz(&[0x00, b'a', 0x80, 0, 0], 5), None);
        // Match reaching before the start of the output.
        assert_eq!(decompress_lz(&[0x00, b'a', 0x80, 9, 0], 5), None);
        // Output overrun vs the recorded raw length.
        assert_eq!(decompress_lz(&[0x03, b'a', b'b', b'c', b'd'], 2), None);
        // Wrong final length.
        assert_eq!(decompress_lz(&[0x00, b'a'], 2), None);
        // Truncated match offset.
        assert_eq!(decompress_lz(&[0x00, b'a', 0x80, 1], 5), None);
    }

    #[test]
    fn decoder_survives_random_corruption_of_valid_streams() {
        let input: Vec<u8> = (0..2048u32)
            .flat_map(|i| {
                let b = ((i % 251) * 3 % 256) as u8;
                [b, b.wrapping_add(1), b.wrapping_add(2)]
            })
            .map(|b| b % 97)
            .collect();
        let (stored, enc) = encode(&input);
        let sum = checksum(&input);
        let mut x = 0xDEAD_BEEF_u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let mut bad = stored.clone();
            let pos = (x as usize) % bad.len();
            bad[pos] ^= (x >> 32) as u8 | 1;
            // Either the decode fails outright, or the checksum catches
            // whatever garbage it produced. Never a panic.
            if let Some(back) = decode(&bad, enc, input.len()) {
                if checksum(&back) == sum {
                    assert_eq!(back, input, "checksum collision on corrupt data");
                }
            }
        }
    }

    #[test]
    fn checksum_is_stable_and_discriminating() {
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum(b"a"), checksum(b"b"));
        assert_ne!(checksum(b"ab"), checksum(b"ba"));
    }
}
