//! # Second-chance soft memory: the cold tier
//!
//! The paper's reclamation story (§3.1) destroys evicted entries on the
//! theory that soft data is recomputable. This module implements the
//! stronger "Tidying Up the Address Space" position: eviction first
//! *demotes*. A [`ColdTier`] sits under the SMA's last-chance callback
//! and gives every evicted value two more chances before it is truly
//! gone:
//!
//! 1. **Cold arena** — the value is compressed (`codec`) and packed
//!    into a dense, append-only DRAM arena (`arena`) *outside* the
//!    soft budget, with its own hard occupancy cap and dead-byte
//!    compaction.
//! 2. **Spill log** — when the arena overflows its cap, whole oldest
//!    segments spill to an on-disk append-only log (`spill`).
//!
//! On access the owner *promotes*: [`ColdTier::take`] removes the entry
//! from whichever stage holds it and returns the decompressed bytes, so
//! the caller can reinsert them into the hot tier. A key therefore
//! lives in **exactly one** tier at a time — hot is authoritative, and
//! every demotion is eventually balanced by exactly one of promotion,
//! invalidation, replacement, drop, or corruption (the conservation law
//! [`ColdTier::audit`] and the tier proptests check).
//!
//! Every demoted entry carries an FNV-1a checksum of its raw bytes.
//! Bit-flips in the arena, a truncated spill log, or a malformed
//! compressed stream all surface as **clean misses** (plus a
//! `corruptions` count) — never torn data, never a panic. That is the
//! contract that makes the cold tier safe to bolt onto a store whose
//! values must otherwise be recomputed from ground truth.
//!
//! Locking: the tier has a single internal mutex and calls nothing that
//! takes another lock, so it is a *leaf* in the lock order — safe to
//! call from an SDS reclaim callback (which runs with the SDS inner
//! lock held) and from ordinary read paths alike.

mod arena;
pub mod codec;
mod spill;

use std::path::PathBuf;
use std::sync::Mutex;

use arena::ColdArena;
use spill::SpillFile;

/// Where a promoted value was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierHit {
    /// Served from the compressed DRAM arena.
    Arena,
    /// Served from the on-disk spill log.
    Disk,
}

/// Cold-tier sizing and placement knobs.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Hard cap on the arena's DRAM footprint (live + not-yet-compacted
    /// dead bytes). Crossing it evicts oldest segments to disk.
    pub arena_cap_bytes: usize,
    /// Arena segment size; also the eviction/spill granularity.
    pub segment_bytes: usize,
    /// Where to put the spill log. `None` disables the disk stage:
    /// arena overflow is dropped (and counted) instead of spilled.
    pub spill_path: Option<PathBuf>,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            arena_cap_bytes: 4 << 20,
            segment_bytes: 64 << 10,
            spill_path: None,
        }
    }
}

/// Snapshot of the tier's counters and occupancy.
///
/// The flow counters obey a conservation law (see [`ColdTier::audit`]):
/// `demotions == arena_hits + disk_hits + invalidations + replaced +
/// dropped + corruptions + arena_entries + disk_entries`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Values accepted by [`ColdTier::demote`].
    pub demotions: u64,
    /// Raw bytes demoted (before compression).
    pub demoted_bytes: u64,
    /// Promotions served from the arena.
    pub arena_hits: u64,
    /// Promotions served from the spill log.
    pub disk_hits: u64,
    /// Entries removed by [`ColdTier::invalidate`] / [`ColdTier::clear`].
    pub invalidations: u64,
    /// Demotions that overwrote an existing cold entry for the key.
    pub replaced: u64,
    /// Arena-overflow records written to the spill log.
    pub spill_writes: u64,
    /// Bytes appended to the spill log (headers + stored values).
    pub spill_bytes_written: u64,
    /// Overflow records dropped (no spill configured, or spill I/O
    /// failed).
    pub dropped: u64,
    /// Entries removed because their bytes failed checksum/decode.
    pub corruptions: u64,
    /// Arena compaction passes.
    pub compactions: u64,
    /// Live entries currently in the arena.
    pub arena_entries: u64,
    /// Arena DRAM footprint in bytes (live + dead awaiting compaction).
    pub arena_bytes: u64,
    /// Live entries currently in the spill log.
    pub disk_entries: u64,
    /// Spill-log bytes referenced by live entries.
    pub disk_live_bytes: u64,
    /// Total spill-log file length (including dead records).
    pub disk_file_bytes: u64,
}

struct TierInner {
    arena: ColdArena,
    spill: Option<SpillFile>,
    stats: TierStats,
}

/// The second-chance cold tier: compressed DRAM arena + disk spill.
///
/// # Examples
///
/// ```
/// use softmem_core::tier::{ColdTier, TierConfig};
///
/// let tier = ColdTier::new(TierConfig::default()).unwrap();
/// tier.demote(b"key", b"an evicted value");
/// let (bytes, hit) = tier.take(b"key").unwrap();
/// assert_eq!(bytes, b"an evicted value");
/// assert_eq!(hit, softmem_core::tier::TierHit::Arena);
/// // Promotion moves ownership: the key is no longer cold.
/// assert!(tier.take(b"key").is_none());
/// ```
pub struct ColdTier {
    inner: Mutex<TierInner>,
}

impl ColdTier {
    /// Builds a tier from `cfg`. Fails only if the spill log cannot be
    /// created at `cfg.spill_path`.
    pub fn new(cfg: TierConfig) -> std::io::Result<Self> {
        let spill = match cfg.spill_path {
            Some(path) => Some(SpillFile::create(path)?),
            None => None,
        };
        Ok(ColdTier {
            inner: Mutex::new(TierInner {
                arena: ColdArena::new(cfg.arena_cap_bytes, cfg.segment_bytes),
                spill,
                stats: TierStats::default(),
            }),
        })
    }

    /// Demotes an evicted `(key, value)` into the arena, spilling any
    /// cap overflow to disk (or dropping it when no spill is
    /// configured).
    ///
    /// Safe to call from an eviction callback: the tier lock is a leaf.
    pub fn demote(&self, key: &[u8], value: &[u8]) {
        let (stored, encoding) = codec::encode(value);
        let sum = codec::checksum(value);
        let inner = &mut *self.inner.lock().unwrap();
        inner.stats.demotions += 1;
        inner.stats.demoted_bytes += value.len() as u64;
        let (replaced, evicted) =
            inner
                .arena
                .insert(key.to_vec(), &stored, value.len(), encoding, sum);
        if replaced {
            inner.stats.replaced += 1;
        }
        // A fresh demotion supersedes any older copy of the same key
        // that already reached the spill log. Without this, promoting
        // the new arena copy would leave the stale on-disk value
        // behind — and a later read would resurface it.
        if let Some(spill) = inner.spill.as_mut() {
            if spill.remove(key) {
                inner.stats.replaced += 1;
            }
        }
        for record in evicted {
            match inner.spill.as_mut() {
                Some(spill) => match spill.append(
                    &record.key,
                    &record.stored,
                    record.raw_len,
                    record.encoding,
                    record.checksum,
                ) {
                    Ok((spill_replaced, bytes)) => {
                        inner.stats.spill_writes += 1;
                        inner.stats.spill_bytes_written += bytes;
                        if spill_replaced {
                            inner.stats.replaced += 1;
                        }
                    }
                    Err(_) => inner.stats.dropped += 1,
                },
                None => inner.stats.dropped += 1,
            }
        }
    }

    /// Promotes a key: removes it from whichever stage holds it and
    /// returns its raw bytes. `None` means a genuine miss *or* a
    /// detected corruption (counted in [`TierStats::corruptions`]) —
    /// either way the caller recomputes.
    pub fn take(&self, key: &[u8]) -> Option<(Vec<u8>, TierHit)> {
        let inner = &mut *self.inner.lock().unwrap();
        if inner.arena.contains(key) {
            let decoded = inner.arena.get(key).and_then(|(entry, stored)| {
                codec::decode(stored, entry.encoding, entry.raw_len)
                    .filter(|raw| codec::checksum(raw) == entry.checksum)
            });
            inner.arena.remove(key);
            return match decoded {
                Some(raw) => {
                    inner.stats.arena_hits += 1;
                    Some((raw, TierHit::Arena))
                }
                None => {
                    inner.stats.corruptions += 1;
                    None
                }
            };
        }
        let spill = inner.spill.as_mut()?;
        if !spill.contains(key) {
            return None;
        }
        let decoded = match spill.read(key) {
            Ok(Some((stored, raw_len, encoding, sum))) => {
                codec::decode(&stored, encoding, raw_len).filter(|raw| codec::checksum(raw) == sum)
            }
            Ok(None) | Err(()) => None,
        };
        spill.remove(key);
        match decoded {
            Some(raw) => {
                inner.stats.disk_hits += 1;
                Some((raw, TierHit::Disk))
            }
            None => {
                inner.stats.corruptions += 1;
                None
            }
        }
    }

    /// Whether the key is cold (either stage), without promoting it.
    pub fn contains(&self, key: &[u8]) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.arena.contains(key) || inner.spill.as_ref().is_some_and(|s| s.contains(key))
    }

    /// Drops a key's cold copy (the hot tier just rewrote or deleted
    /// it, making the cold bytes stale). Returns whether one existed.
    pub fn invalidate(&self, key: &[u8]) -> bool {
        let inner = &mut *self.inner.lock().unwrap();
        let mut removed = inner.arena.remove(key);
        if !removed {
            if let Some(spill) = inner.spill.as_mut() {
                removed = spill.remove(key);
            }
        }
        if removed {
            inner.stats.invalidations += 1;
        }
        removed
    }

    /// Empties both stages (FLUSHALL semantics).
    pub fn clear(&self) {
        let inner = &mut *self.inner.lock().unwrap();
        let live =
            inner.arena.entries() as u64 + inner.spill.as_ref().map_or(0, |s| s.entries() as u64);
        inner.stats.invalidations += live;
        inner.arena.clear();
        if let Some(spill) = inner.spill.as_mut() {
            spill.clear();
        }
    }

    /// Counter/occupancy snapshot.
    pub fn stats(&self) -> TierStats {
        let inner = self.inner.lock().unwrap();
        let mut stats = inner.stats.clone();
        stats.compactions = inner.arena.compactions();
        stats.arena_entries = inner.arena.entries() as u64;
        stats.arena_bytes = inner.arena.bytes() as u64;
        if let Some(spill) = inner.spill.as_ref() {
            stats.disk_entries = spill.entries() as u64;
            stats.disk_live_bytes = spill.live_bytes();
            stats.disk_file_bytes = spill.file_bytes();
        }
        stats
    }

    /// Path of the spill log, if the disk stage is enabled.
    pub fn spill_path(&self) -> Option<PathBuf> {
        self.inner
            .lock()
            .unwrap()
            .spill
            .as_ref()
            .map(|s| s.path().clone())
    }

    /// Chaos hook: flips `flips` pseudo-random bytes across the arena's
    /// segment buffers. Returns how many bytes were actually flipped.
    pub fn corrupt_arena(&self, seed: u64, flips: usize) -> usize {
        self.inner.lock().unwrap().arena.corrupt(seed, flips)
    }

    /// Chaos hook: truncates the spill log to half its length. Returns
    /// bytes cut (0 when no spill stage or the log is empty).
    pub fn truncate_spill(&self) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .spill
            .as_mut()
            .map_or(0, |s| s.truncate_for_chaos())
    }

    /// Self-audit: structural consistency of both stages plus the
    /// demotion conservation law. Returns violations (empty = sound).
    pub fn audit(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap();
        let mut violations = inner.arena.audit();
        if let Some(spill) = inner.spill.as_ref() {
            violations.extend(spill.audit());
        }
        let s = &inner.stats;
        let live =
            inner.arena.entries() as u64 + inner.spill.as_ref().map_or(0, |sp| sp.entries() as u64);
        let accounted = s.arena_hits
            + s.disk_hits
            + s.invalidations
            + s.replaced
            + s.dropped
            + s.corruptions
            + live;
        if s.demotions != accounted {
            violations.push(format!(
                "tier conservation broken: demotions {} != hits {}+{} + invalidations {} \
                 + replaced {} + dropped {} + corruptions {} + live {live}",
                s.demotions,
                s.arena_hits,
                s.disk_hits,
                s.invalidations,
                s.replaced,
                s.dropped,
                s.corruptions,
            ));
        }
        violations
    }
}

impl std::fmt::Debug for ColdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColdTier")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_spill(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("softmem-tier-test-{}-{name}", std::process::id()))
    }

    fn noise(seed: u64, n: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect()
    }

    #[test]
    fn demote_take_moves_ownership() {
        let tier = ColdTier::new(TierConfig::default()).unwrap();
        tier.demote(b"k", b"value");
        assert!(tier.contains(b"k"));
        let (bytes, hit) = tier.take(b"k").unwrap();
        assert_eq!(bytes, b"value");
        assert_eq!(hit, TierHit::Arena);
        assert!(!tier.contains(b"k"));
        assert!(tier.take(b"k").is_none());
        assert!(tier.audit().is_empty());
        let s = tier.stats();
        assert_eq!((s.demotions, s.arena_hits), (1, 1));
    }

    #[test]
    fn overflow_spills_to_disk_and_promotes_back() {
        let tier = ColdTier::new(TierConfig {
            arena_cap_bytes: 4096,
            segment_bytes: 1024,
            spill_path: Some(temp_spill("overflow")),
        })
        .unwrap();
        for i in 0..40u64 {
            tier.demote(format!("key{i}").as_bytes(), &noise(i + 1, 500));
        }
        let s = tier.stats();
        assert!(s.spill_writes > 0, "no spill under cap pressure: {s:?}");
        assert!(s.disk_entries > 0);
        assert!(s.arena_bytes <= 4096 + 1024);
        // Every demoted key is still promotable from one stage or the
        // other, byte-identical.
        let mut disk_hits = 0;
        for i in 0..40u64 {
            let (bytes, hit) = tier.take(format!("key{i}").as_bytes()).expect("promotable");
            assert_eq!(bytes, noise(i + 1, 500));
            if hit == TierHit::Disk {
                disk_hits += 1;
            }
        }
        assert!(disk_hits > 0);
        assert!(tier.audit().is_empty(), "{:?}", tier.audit());
    }

    #[test]
    fn overflow_without_spill_drops_cleanly() {
        let tier = ColdTier::new(TierConfig {
            arena_cap_bytes: 4096,
            segment_bytes: 1024,
            spill_path: None,
        })
        .unwrap();
        for i in 0..40u64 {
            tier.demote(format!("key{i}").as_bytes(), &noise(i + 1, 500));
        }
        let s = tier.stats();
        assert!(s.dropped > 0);
        assert_eq!(s.disk_entries, 0);
        assert!(tier.audit().is_empty(), "{:?}", tier.audit());
    }

    #[test]
    fn corruption_surfaces_as_clean_miss() {
        let tier = ColdTier::new(TierConfig {
            arena_cap_bytes: 4096,
            segment_bytes: 1024,
            spill_path: Some(temp_spill("corrupt")),
        })
        .unwrap();
        for i in 0..40u64 {
            tier.demote(format!("key{i}").as_bytes(), &noise(i + 1, 500));
        }
        assert!(tier.corrupt_arena(0xBAD, 64) > 0);
        assert!(tier.truncate_spill() > 0);
        let mut misses = 0;
        for i in 0..40u64 {
            match tier.take(format!("key{i}").as_bytes()) {
                None => misses += 1,
                // Anything that still decodes must be byte-identical —
                // the checksum guarantees no torn data slips through.
                Some((bytes, _)) => assert_eq!(bytes, noise(i + 1, 500)),
            }
        }
        assert!(misses > 0, "corruption never surfaced");
        let s = tier.stats();
        assert!(s.corruptions > 0);
        assert!(tier.audit().is_empty(), "{:?}", tier.audit());
    }

    #[test]
    fn invalidate_and_clear_keep_conservation() {
        let tier = ColdTier::new(TierConfig {
            arena_cap_bytes: 1 << 20,
            segment_bytes: 4096,
            spill_path: None,
        })
        .unwrap();
        for i in 0..16u64 {
            tier.demote(format!("key{i}").as_bytes(), &noise(i + 1, 100));
        }
        // Overwrite a few (replacement), invalidate a few, clear the rest.
        tier.demote(b"key0", b"fresh");
        tier.demote(b"key1", b"fresh");
        assert!(tier.invalidate(b"key2"));
        assert!(!tier.invalidate(b"nope"));
        tier.clear();
        assert!(!tier.contains(b"key0"));
        let s = tier.stats();
        assert_eq!(s.demotions, 18);
        assert_eq!(s.replaced, 2);
        assert_eq!(s.arena_entries + s.disk_entries, 0);
        assert!(tier.audit().is_empty(), "{:?}", tier.audit());
    }
}
