//! # Second-chance soft memory: the cold tier
//!
//! The paper's reclamation story (§3.1) destroys evicted entries on the
//! theory that soft data is recomputable. This module implements the
//! stronger "Tidying Up the Address Space" position: eviction first
//! *demotes*. A [`ColdTier`] sits under the SMA's last-chance callback
//! and gives every evicted value two more chances before it is truly
//! gone:
//!
//! 1. **Cold arena** — the value is compressed (`codec`) and packed
//!    into a dense, append-only DRAM arena (`arena`) *outside* the
//!    soft budget, with its own hard occupancy cap and dead-byte
//!    compaction.
//! 2. **Spill log** — when the arena overflows its cap, whole oldest
//!    segments spill to an on-disk append-only log (`spill`).
//!
//! On access the owner *promotes*: [`ColdTier::take`] removes the entry
//! from whichever stage holds it and returns the decompressed bytes, so
//! the caller can reinsert them into the hot tier. A key therefore
//! lives in **exactly one** tier at a time — hot is authoritative, and
//! every demotion is eventually balanced by exactly one of promotion,
//! invalidation, replacement, drop, or corruption (the conservation law
//! [`ColdTier::audit`] and the tier proptests check).
//!
//! Every demoted entry carries an FNV-1a checksum of its raw bytes.
//! Bit-flips in the arena, a truncated spill log, or a malformed
//! compressed stream all surface as **clean misses** (plus a
//! `corruptions` count) — never torn data, never a panic. That is the
//! contract that makes the cold tier safe to bolt onto a store whose
//! values must otherwise be recomputed from ground truth.
//!
//! Locking: the tier splits into two mutexes. `inner` guards the DRAM
//! state (arena, counters, the deferred-spill queue) and is a *leaf* —
//! it calls nothing that takes another lock, so it is safe to take from
//! an SDS reclaim callback (which runs with the SDS inner lock held).
//! `spill` guards the on-disk log and is only ever taken *before*
//! `inner`, never from a reclaim callback: [`ColdTier::demote`] does no
//! I/O at all. Arena overflow is queued in DRAM and written to disk
//! later by [`ColdTier::flush`] (or by the first read/stat that needs
//! the log), so reclamation storms never stall the owner's hot lock
//! behind disk writes.

mod arena;
pub mod codec;
mod spill;

use std::collections::{HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::Mutex;

use arena::{ColdArena, EvictedRecord};
use spill::SpillFile;

/// Where a promoted value was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierHit {
    /// Served from the compressed DRAM arena.
    Arena,
    /// Served from the on-disk spill log.
    Disk,
}

/// Cold-tier sizing and placement knobs.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Hard cap on the arena's DRAM footprint (live + not-yet-compacted
    /// dead bytes). Crossing it evicts oldest segments to disk.
    pub arena_cap_bytes: usize,
    /// Arena segment size; also the eviction/spill granularity.
    pub segment_bytes: usize,
    /// Where to put the spill log. `None` disables the disk stage:
    /// arena overflow is dropped (and counted) instead of spilled.
    pub spill_path: Option<PathBuf>,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            arena_cap_bytes: 4 << 20,
            segment_bytes: 64 << 10,
            spill_path: None,
        }
    }
}

/// Snapshot of the tier's counters and occupancy.
///
/// The flow counters obey a conservation law (see [`ColdTier::audit`]):
/// `demotions == arena_hits + disk_hits + invalidations + replaced +
/// dropped + corruptions + arena_entries + disk_entries`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Values accepted by [`ColdTier::demote`].
    pub demotions: u64,
    /// Raw bytes demoted (before compression).
    pub demoted_bytes: u64,
    /// Promotions served from the arena.
    pub arena_hits: u64,
    /// Promotions served from the spill log.
    pub disk_hits: u64,
    /// Entries removed by [`ColdTier::invalidate`] / [`ColdTier::clear`].
    pub invalidations: u64,
    /// Demotions that overwrote an existing cold entry for the key.
    pub replaced: u64,
    /// Arena-overflow records written to the spill log.
    pub spill_writes: u64,
    /// Bytes appended to the spill log (headers + stored values).
    pub spill_bytes_written: u64,
    /// Overflow records dropped (no spill configured, or spill I/O
    /// failed).
    pub dropped: u64,
    /// Entries removed because their bytes failed checksum/decode.
    pub corruptions: u64,
    /// Arena compaction passes.
    pub compactions: u64,
    /// Spill-log compaction passes (dead-byte rewrites of the log).
    pub spill_compactions: u64,
    /// Live entries currently in the arena.
    pub arena_entries: u64,
    /// Arena DRAM footprint in bytes (live + dead awaiting compaction).
    pub arena_bytes: u64,
    /// Live entries currently in the spill log.
    pub disk_entries: u64,
    /// Spill-log bytes referenced by live entries.
    pub disk_live_bytes: u64,
    /// Total spill-log file length (including dead records).
    pub disk_file_bytes: u64,
}

struct TierInner {
    arena: ColdArena,
    /// Arena-overflow records awaiting their deferred disk write
    /// ([`ColdTier::flush`]). Queuing here is what keeps
    /// [`ColdTier::demote`] free of I/O — it can run inside an eviction
    /// callback that holds the owner's map lock. Queued records are
    /// fully live: `take`/`contains` serve them as DRAM hits.
    pending: VecDeque<EvictedRecord>,
    /// Keys whose on-disk record is stale (a newer demotion superseded
    /// it, or will — see `demote`). The records are purged from the
    /// spill index at the next sync; the set exists because `demote`
    /// must never take the spill lock to do the purge itself.
    /// Invariant: `superseded ⊆ spilled`.
    superseded: HashSet<Vec<u8>>,
    /// Mirror of the spill index's key set, maintained under this leaf
    /// lock so `demote`/`contains`/`take` can answer "is this key on
    /// disk?" without touching the I/O lock.
    spilled: HashSet<Vec<u8>>,
    /// Whether a disk stage exists (fixed at construction).
    has_spill: bool,
    stats: TierStats,
}

impl TierInner {
    /// Removes a key's queued overflow record, if any.
    fn unqueue(&mut self, key: &[u8]) -> Option<EvictedRecord> {
        let pos = self.pending.iter().position(|r| r.key == key)?;
        self.pending.remove(pos)
    }

    /// Whether the key has a *live* record on the spill log (a stale,
    /// superseded record does not count).
    fn live_on_disk(&self, key: &[u8]) -> bool {
        self.spilled.contains(key) && !self.superseded.contains(key)
    }

    /// Decodes a record's stored bytes, counting a hit or a corruption.
    fn finish_dram_hit(&mut self, decoded: Option<Vec<u8>>) -> Option<(Vec<u8>, TierHit)> {
        match decoded {
            Some(raw) => {
                self.stats.arena_hits += 1;
                Some((raw, TierHit::Arena))
            }
            None => {
                self.stats.corruptions += 1;
                None
            }
        }
    }

    /// Promotes out of the DRAM stages (arena, then the overflow
    /// queue). `None` means "not resident in DRAM — try the disk";
    /// `Some(inner)` is the final answer (hit, or corruption-miss).
    fn take_dram(&mut self, key: &[u8]) -> Option<Option<(Vec<u8>, TierHit)>> {
        if self.arena.contains(key) {
            let decoded = self.arena.get(key).and_then(|(entry, stored)| {
                codec::decode(stored, entry.encoding, entry.raw_len)
                    .filter(|raw| codec::checksum(raw) == entry.checksum)
            });
            self.arena.remove(key);
            return Some(self.finish_dram_hit(decoded));
        }
        if let Some(rec) = self.unqueue(key) {
            let decoded = codec::decode(&rec.stored, rec.encoding, rec.raw_len)
                .filter(|raw| codec::checksum(raw) == rec.checksum);
            return Some(self.finish_dram_hit(decoded));
        }
        None
    }

    /// Folds a spill-compaction result in: records that could not be
    /// copied forward are gone — live ones count as corruptions, stale
    /// (superseded) ones were already accounted as replacements.
    fn note_compaction(&mut self, dropped: Vec<Vec<u8>>) {
        for key in dropped {
            self.spilled.remove(&key);
            if !self.superseded.remove(&key) {
                self.stats.corruptions += 1;
            }
        }
    }
}

/// The second-chance cold tier: compressed DRAM arena + disk spill.
///
/// # Examples
///
/// ```
/// use softmem_core::tier::{ColdTier, TierConfig};
///
/// let tier = ColdTier::new(TierConfig::default()).unwrap();
/// tier.demote(b"key", b"an evicted value");
/// let (bytes, hit) = tier.take(b"key").unwrap();
/// assert_eq!(bytes, b"an evicted value");
/// assert_eq!(hit, softmem_core::tier::TierHit::Arena);
/// // Promotion moves ownership: the key is no longer cold.
/// assert!(tier.take(b"key").is_none());
/// ```
pub struct ColdTier {
    /// I/O lock: guards the spill file and its index. Lock order is
    /// `spill` before `inner`, and nothing that may run under an
    /// owner's hot lock (i.e. [`ColdTier::demote`]) ever takes it, so
    /// reclamation never waits on disk.
    spill: Mutex<Option<SpillFile>>,
    /// Leaf lock: DRAM state and counters only, no I/O under it.
    inner: Mutex<TierInner>,
}

impl ColdTier {
    /// Builds a tier from `cfg`. Fails only if the spill log cannot be
    /// created at `cfg.spill_path`.
    pub fn new(cfg: TierConfig) -> std::io::Result<Self> {
        let spill = match cfg.spill_path {
            Some(path) => Some(SpillFile::create(path, cfg.segment_bytes)?),
            None => None,
        };
        Ok(ColdTier {
            inner: Mutex::new(TierInner {
                arena: ColdArena::new(cfg.arena_cap_bytes, cfg.segment_bytes),
                pending: VecDeque::new(),
                superseded: HashSet::new(),
                spilled: HashSet::new(),
                has_spill: spill.is_some(),
                stats: TierStats::default(),
            }),
            spill: Mutex::new(spill),
        })
    }

    /// Demotes an evicted `(key, value)` into the arena. Any cap
    /// overflow is *queued* for the spill log (or dropped, and counted,
    /// when no spill is configured) — no disk I/O happens here, ever.
    ///
    /// Safe to call from an eviction callback: only the leaf lock is
    /// taken, so a reclamation storm packs the arena at memory speed
    /// while the queued overflow waits for the next [`ColdTier::flush`].
    pub fn demote(&self, key: &[u8], value: &[u8]) {
        let (stored, encoding) = codec::encode(value);
        let sum = codec::checksum(value);
        let inner = &mut *self.inner.lock().unwrap();
        inner.stats.demotions += 1;
        inner.stats.demoted_bytes += value.len() as u64;
        let (replaced, evicted) =
            inner
                .arena
                .insert(key.to_vec(), &stored, value.len(), encoding, sum);
        if replaced {
            inner.stats.replaced += 1;
        }
        // A fresh demotion supersedes any older copy of the same key
        // still queued for — or already on — the spill log. The queued
        // copy is dropped right here; the on-disk record is only
        // *marked* (removing it needs the I/O lock, which demote must
        // never take) and purged at the next sync. Until then, reads
        // treat a marked record as absent, so the stale value can
        // never resurface.
        let superseded_older = inner.unqueue(key).is_some()
            || (inner.spilled.contains(key) && inner.superseded.insert(key.to_vec()));
        if superseded_older {
            inner.stats.replaced += 1;
        }
        if inner.has_spill {
            inner.pending.extend(evicted);
        } else {
            inner.stats.dropped += evicted.len() as u64;
        }
    }

    /// Drains deferred spill work: purges superseded on-disk records
    /// and appends queued arena-overflow records to the log, then lets
    /// the log compact itself. Cheap no-op when nothing is queued.
    ///
    /// [`ColdTier::demote`] queues this work instead of doing it inline
    /// because it may run inside an eviction callback, under the
    /// owner's hot lock; owners call `flush` from their own call sites
    /// once that lock is released ([`ColdTier::stats`] and disk reads
    /// also sync, so queued records are never stranded).
    pub fn flush(&self) {
        {
            let inner = self.inner.lock().unwrap();
            if inner.pending.is_empty() && inner.superseded.is_empty() {
                return;
            }
        }
        let mut spill_guard = self.spill.lock().unwrap();
        if let Some(spill) = spill_guard.as_mut() {
            self.sync_spill(spill);
        }
    }

    /// Applies the deferred queue to the log. Caller holds the spill
    /// lock; the leaf lock is only taken in short bursts around the
    /// I/O, never across it, so `demote` stays wait-free during writes.
    fn sync_spill(&self, spill: &mut SpillFile) {
        let (markers, batch) = {
            let inner = &mut *self.inner.lock().unwrap();
            let markers: Vec<Vec<u8>> = inner.superseded.drain().collect();
            let batch: Vec<EvictedRecord> = inner.pending.drain(..).collect();
            // Pre-update the mirror so a concurrent demote already sees
            // the post-sync disk state while the writes are in flight;
            // readers that race this window serialize on the spill lock.
            for key in &markers {
                inner.spilled.remove(key);
            }
            for rec in &batch {
                inner.spilled.insert(rec.key.clone());
            }
            (markers, batch)
        };
        if markers.is_empty() && batch.is_empty() {
            return;
        }
        for key in &markers {
            spill.remove(key);
        }
        let mut writes = 0u64;
        let mut bytes = 0u64;
        let mut failed: Vec<Vec<u8>> = Vec::new();
        for rec in &batch {
            match spill.append(
                &rec.key,
                &rec.stored,
                rec.raw_len,
                rec.encoding,
                rec.checksum,
            ) {
                Ok((_, n)) => {
                    writes += 1;
                    bytes += n;
                }
                Err(_) => failed.push(rec.key.clone()),
            }
        }
        let dropped = spill.maybe_compact();
        let inner = &mut *self.inner.lock().unwrap();
        inner.stats.spill_writes += writes;
        inner.stats.spill_bytes_written += bytes;
        for key in failed {
            inner.spilled.remove(&key);
            inner.stats.dropped += 1;
        }
        inner.note_compaction(dropped);
    }

    /// Promotes a key: removes it from whichever stage holds it and
    /// returns its raw bytes. `None` means a genuine miss *or* a
    /// detected corruption (counted in [`TierStats::corruptions`]) —
    /// either way the caller recomputes.
    ///
    /// A take racing a `demote` of the *same* key may return the value
    /// demoted earlier; callers that need per-key ordering serialize
    /// promotion against their own writes (the KV store's key stripes
    /// do exactly that).
    pub fn take(&self, key: &[u8]) -> Option<(Vec<u8>, TierHit)> {
        // DRAM stages first, under the leaf lock only.
        {
            let inner = &mut *self.inner.lock().unwrap();
            if let Some(answer) = inner.take_dram(key) {
                return answer;
            }
            if !inner.live_on_disk(key) {
                return None;
            }
        }
        // Disk stage. Re-check DRAM once the I/O lock is held: the key
        // may have moved (an in-flight sync landed it, a re-demotion
        // overtook it, or another promoter won) while we waited.
        let mut spill_guard = self.spill.lock().unwrap();
        let spill = spill_guard.as_mut()?;
        {
            let inner = &mut *self.inner.lock().unwrap();
            if let Some(answer) = inner.take_dram(key) {
                return answer;
            }
            if !inner.live_on_disk(key) {
                return None;
            }
        }
        let read = spill.read(key);
        spill.remove(key);
        let decoded = match read {
            Ok(Some((stored, raw_len, encoding, sum))) => {
                codec::decode(&stored, encoding, raw_len).filter(|raw| codec::checksum(raw) == sum)
            }
            Ok(None) | Err(()) => None,
        };
        let dropped = spill.maybe_compact();
        let inner = &mut *self.inner.lock().unwrap();
        inner.spilled.remove(key);
        inner.superseded.remove(key);
        inner.note_compaction(dropped);
        match decoded {
            Some(raw) => {
                inner.stats.disk_hits += 1;
                Some((raw, TierHit::Disk))
            }
            None => {
                inner.stats.corruptions += 1;
                None
            }
        }
    }

    /// Whether the key is cold (any stage, queued overflow included),
    /// without promoting it.
    pub fn contains(&self, key: &[u8]) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.arena.contains(key)
            || inner.pending.iter().any(|r| r.key == key)
            || inner.live_on_disk(key)
    }

    /// Drops a key's cold copy (the hot tier just rewrote or deleted
    /// it, making the cold bytes stale). Returns whether one existed.
    pub fn invalidate(&self, key: &[u8]) -> bool {
        {
            let inner = &mut *self.inner.lock().unwrap();
            if inner.arena.remove(key) {
                // Any on-disk record for this key is already marked
                // superseded (demote's invariant), so it is unreadable
                // and will be purged at the next sync.
                inner.stats.invalidations += 1;
                return true;
            }
            if inner.unqueue(key).is_some() {
                inner.stats.invalidations += 1;
                return true;
            }
            if !inner.live_on_disk(key) {
                return false;
            }
        }
        // Live copy on disk: drop it under the I/O lock.
        let mut spill_guard = self.spill.lock().unwrap();
        let Some(spill) = spill_guard.as_mut() else {
            return false;
        };
        let removed = {
            let inner = &mut *self.inner.lock().unwrap();
            // Same re-check as take(): the key may have moved while we
            // waited for the I/O lock.
            if inner.arena.remove(key) || inner.unqueue(key).is_some() {
                inner.stats.invalidations += 1;
                return true;
            }
            if inner.live_on_disk(key) {
                spill.remove(key);
                inner.spilled.remove(key);
                inner.stats.invalidations += 1;
                true
            } else {
                false
            }
        };
        if removed {
            let dropped = spill.maybe_compact();
            let inner = &mut *self.inner.lock().unwrap();
            inner.note_compaction(dropped);
        }
        removed
    }

    /// Empties every stage (FLUSHALL semantics), queued overflow
    /// included.
    pub fn clear(&self) {
        let mut spill_guard = self.spill.lock().unwrap();
        {
            let inner = &mut *self.inner.lock().unwrap();
            let live = inner.arena.entries() as u64
                + inner.pending.len() as u64
                + (inner.spilled.len() - inner.superseded.len()) as u64;
            inner.stats.invalidations += live;
            inner.arena.clear();
            inner.pending.clear();
            inner.superseded.clear();
            inner.spilled.clear();
        }
        if let Some(spill) = spill_guard.as_mut() {
            spill.clear();
        }
    }

    /// Counter/occupancy snapshot. Syncs the deferred spill queue
    /// first, so the disk gauges reflect every demotion that happened
    /// before the call.
    pub fn stats(&self) -> TierStats {
        let mut spill_guard = self.spill.lock().unwrap();
        if let Some(spill) = spill_guard.as_mut() {
            self.sync_spill(spill);
        }
        let inner = self.inner.lock().unwrap();
        let mut stats = inner.stats.clone();
        stats.compactions = inner.arena.compactions();
        stats.arena_entries = inner.arena.entries() as u64;
        stats.arena_bytes = inner.arena.bytes() as u64;
        if let Some(spill) = spill_guard.as_ref() {
            stats.spill_compactions = spill.compactions();
            stats.disk_entries = spill.entries() as u64;
            stats.disk_live_bytes = spill.live_bytes();
            stats.disk_file_bytes = spill.file_bytes();
        }
        stats
    }

    /// Path of the spill log, if the disk stage is enabled.
    pub fn spill_path(&self) -> Option<PathBuf> {
        self.spill
            .lock()
            .unwrap()
            .as_ref()
            .map(|s| s.path().clone())
    }

    /// Chaos hook: flips `flips` pseudo-random bytes across the arena's
    /// segment buffers. Returns how many bytes were actually flipped.
    pub fn corrupt_arena(&self, seed: u64, flips: usize) -> usize {
        self.inner.lock().unwrap().arena.corrupt(seed, flips)
    }

    /// Chaos hook: truncates the spill log to half its length. Syncs
    /// the deferred queue first so there is a log to damage. Returns
    /// bytes cut (0 when no spill stage or the log is empty).
    pub fn truncate_spill(&self) -> u64 {
        let mut spill_guard = self.spill.lock().unwrap();
        let Some(spill) = spill_guard.as_mut() else {
            return 0;
        };
        self.sync_spill(spill);
        spill.truncate_for_chaos()
    }

    /// Self-audit: structural consistency of every stage plus the
    /// demotion conservation law. Returns violations (empty = sound).
    pub fn audit(&self) -> Vec<String> {
        let spill_guard = self.spill.lock().unwrap();
        let inner = self.inner.lock().unwrap();
        let mut violations = inner.arena.audit();
        let mut disk_live = 0u64;
        match spill_guard.as_ref() {
            Some(spill) => {
                violations.extend(spill.audit());
                if inner.spilled.len() != spill.entries() {
                    violations.push(format!(
                        "spill mirror tracks {} keys but the index holds {}",
                        inner.spilled.len(),
                        spill.entries()
                    ));
                }
                if !inner.superseded.is_subset(&inner.spilled) {
                    violations
                        .push("superseded markers exist for keys not on the spill log".to_string());
                }
                disk_live = (inner.spilled.len() - inner.superseded.len()) as u64;
            }
            None => {
                if !inner.pending.is_empty()
                    || !inner.spilled.is_empty()
                    || !inner.superseded.is_empty()
                {
                    violations
                        .push("tier has no disk stage but holds queued spill state".to_string());
                }
            }
        }
        let s = &inner.stats;
        let live = inner.arena.entries() as u64 + inner.pending.len() as u64 + disk_live;
        let accounted = s.arena_hits
            + s.disk_hits
            + s.invalidations
            + s.replaced
            + s.dropped
            + s.corruptions
            + live;
        if s.demotions != accounted {
            violations.push(format!(
                "tier conservation broken: demotions {} != hits {}+{} + invalidations {} \
                 + replaced {} + dropped {} + corruptions {} + live {live}",
                s.demotions,
                s.arena_hits,
                s.disk_hits,
                s.invalidations,
                s.replaced,
                s.dropped,
                s.corruptions,
            ));
        }
        violations
    }
}

impl std::fmt::Debug for ColdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColdTier")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_spill(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("softmem-tier-test-{}-{name}", std::process::id()))
    }

    fn noise(seed: u64, n: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect()
    }

    #[test]
    fn demote_take_moves_ownership() {
        let tier = ColdTier::new(TierConfig::default()).unwrap();
        tier.demote(b"k", b"value");
        assert!(tier.contains(b"k"));
        let (bytes, hit) = tier.take(b"k").unwrap();
        assert_eq!(bytes, b"value");
        assert_eq!(hit, TierHit::Arena);
        assert!(!tier.contains(b"k"));
        assert!(tier.take(b"k").is_none());
        assert!(tier.audit().is_empty());
        let s = tier.stats();
        assert_eq!((s.demotions, s.arena_hits), (1, 1));
    }

    #[test]
    fn overflow_spills_to_disk_and_promotes_back() {
        let tier = ColdTier::new(TierConfig {
            arena_cap_bytes: 4096,
            segment_bytes: 1024,
            spill_path: Some(temp_spill("overflow")),
        })
        .unwrap();
        for i in 0..40u64 {
            tier.demote(format!("key{i}").as_bytes(), &noise(i + 1, 500));
        }
        let s = tier.stats();
        assert!(s.spill_writes > 0, "no spill under cap pressure: {s:?}");
        assert!(s.disk_entries > 0);
        assert!(s.arena_bytes <= 4096 + 1024);
        // Every demoted key is still promotable from one stage or the
        // other, byte-identical.
        let mut disk_hits = 0;
        for i in 0..40u64 {
            let (bytes, hit) = tier.take(format!("key{i}").as_bytes()).expect("promotable");
            assert_eq!(bytes, noise(i + 1, 500));
            if hit == TierHit::Disk {
                disk_hits += 1;
            }
        }
        assert!(disk_hits > 0);
        assert!(tier.audit().is_empty(), "{:?}", tier.audit());
    }

    #[test]
    fn overflow_without_spill_drops_cleanly() {
        let tier = ColdTier::new(TierConfig {
            arena_cap_bytes: 4096,
            segment_bytes: 1024,
            spill_path: None,
        })
        .unwrap();
        for i in 0..40u64 {
            tier.demote(format!("key{i}").as_bytes(), &noise(i + 1, 500));
        }
        let s = tier.stats();
        assert!(s.dropped > 0);
        assert_eq!(s.disk_entries, 0);
        assert!(tier.audit().is_empty(), "{:?}", tier.audit());
    }

    #[test]
    fn corruption_surfaces_as_clean_miss() {
        let tier = ColdTier::new(TierConfig {
            arena_cap_bytes: 4096,
            segment_bytes: 1024,
            spill_path: Some(temp_spill("corrupt")),
        })
        .unwrap();
        for i in 0..40u64 {
            tier.demote(format!("key{i}").as_bytes(), &noise(i + 1, 500));
        }
        assert!(tier.corrupt_arena(0xBAD, 64) > 0);
        assert!(tier.truncate_spill() > 0);
        let mut misses = 0;
        for i in 0..40u64 {
            match tier.take(format!("key{i}").as_bytes()) {
                None => misses += 1,
                // Anything that still decodes must be byte-identical —
                // the checksum guarantees no torn data slips through.
                Some((bytes, _)) => assert_eq!(bytes, noise(i + 1, 500)),
            }
        }
        assert!(misses > 0, "corruption never surfaced");
        let s = tier.stats();
        assert!(s.corruptions > 0);
        assert!(tier.audit().is_empty(), "{:?}", tier.audit());
    }

    #[test]
    fn demote_defers_spill_io_until_flush() {
        let path = temp_spill("deferred");
        let tier = ColdTier::new(TierConfig {
            arena_cap_bytes: 4096,
            segment_bytes: 1024,
            spill_path: Some(path.clone()),
        })
        .unwrap();
        for i in 0..40u64 {
            tier.demote(format!("key{i}").as_bytes(), &noise(i + 1, 500));
        }
        // Demote never touches the disk: the log is still empty even
        // though the tiny arena overflowed many times over.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            0,
            "demote performed spill I/O"
        );
        // Queued overflow is fully live: promoting an early (evicted
        // out of the arena) key is served from DRAM, not the disk.
        let (bytes, hit) = tier.take(b"key0").expect("queued record promotable");
        assert_eq!(bytes, noise(1, 500));
        assert_eq!(hit, TierHit::Arena);
        assert!(tier.audit().is_empty(), "{:?}", tier.audit());
        tier.flush();
        assert!(
            std::fs::metadata(&path).unwrap().len() > 0,
            "flush never reached the disk"
        );
        let s = tier.stats();
        assert!(s.spill_writes > 0, "{s:?}");
        assert!(s.disk_entries > 0, "{s:?}");
        assert!(tier.audit().is_empty(), "{:?}", tier.audit());
    }

    #[test]
    fn invalidate_and_clear_keep_conservation() {
        let tier = ColdTier::new(TierConfig {
            arena_cap_bytes: 1 << 20,
            segment_bytes: 4096,
            spill_path: None,
        })
        .unwrap();
        for i in 0..16u64 {
            tier.demote(format!("key{i}").as_bytes(), &noise(i + 1, 100));
        }
        // Overwrite a few (replacement), invalidate a few, clear the rest.
        tier.demote(b"key0", b"fresh");
        tier.demote(b"key1", b"fresh");
        assert!(tier.invalidate(b"key2"));
        assert!(!tier.invalidate(b"nope"));
        tier.clear();
        assert!(!tier.contains(b"key0"));
        let s = tier.stats();
        assert_eq!(s.demotions, 18);
        assert_eq!(s.replaced, 2);
        assert_eq!(s.arena_entries + s.disk_entries, 0);
        assert!(tier.audit().is_empty(), "{:?}", tier.audit());
    }
}
