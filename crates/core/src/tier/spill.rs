//! The on-disk spill segment: a log-structured append-only file that
//! takes cold-arena overflow under deep memory pressure.
//!
//! Layout is a sequence of records, each `[klen u32 LE][vlen u32 LE]
//! [key][value]`, with all decode metadata (offset, lengths, encoding,
//! raw-value checksum) kept in an in-memory index. The on-disk header
//! exists only so a human (or a recovery tool) can walk the log; reads
//! here go straight to the value bytes via the index.
//!
//! Removals and replacements leave dead records behind, so the log
//! compacts itself ([`SpillFile::maybe_compact`]) once more than half
//! of it is garbage: live records stream into a fresh file that is
//! renamed over the old one. Without this the file would grow without
//! bound under sustained demote/promote/invalidate churn even while
//! the live set stays small.
//!
//! Every failure mode — I/O error, short read, truncated file, decoder
//! rejection, checksum mismatch — must surface to the tier as a clean
//! miss, so every read path returns `Option`/`Result` and nothing here
//! panics on file contents.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use super::codec::Encoding;

struct SpillEntry {
    /// Offset of the *value* bytes (header and key already skipped).
    value_off: u64,
    stored_len: u32,
    raw_len: u32,
    encoding: Encoding,
    checksum: u64,
}

/// Append-only spill log plus its in-memory index.
pub(crate) struct SpillFile {
    path: PathBuf,
    file: File,
    index: HashMap<Vec<u8>, SpillEntry>,
    /// Next append offset.
    tail: u64,
    /// Value+header bytes still referenced by the index.
    live_bytes: u64,
    /// Below this file length compaction never runs (mirrors the
    /// arena's `2 * segment_bytes` floor).
    compact_floor: u64,
    /// Completed compaction passes.
    compactions: u64,
}

impl SpillFile {
    /// Creates (truncating any stale file from a previous run) the
    /// spill log at `path`. `segment_bytes` is the owning tier's
    /// segment size; it only tunes the compaction floor.
    pub(crate) fn create(path: PathBuf, segment_bytes: usize) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(SpillFile {
            path,
            file,
            index: HashMap::new(),
            tail: 0,
            live_bytes: 0,
            compact_floor: 2 * segment_bytes.max(64) as u64,
            compactions: 0,
        })
    }

    pub(crate) fn path(&self) -> &PathBuf {
        &self.path
    }

    pub(crate) fn entries(&self) -> usize {
        self.index.len()
    }

    /// Bytes of the log still referenced by live entries.
    pub(crate) fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Total log length including dead (overwritten/removed) records.
    pub(crate) fn file_bytes(&self) -> u64 {
        self.tail
    }

    pub(crate) fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Rewrites live records into a fresh log when more than half of
    /// the file is dead bytes (removed or superseded records) — the
    /// disk analogue of [`super::arena::ColdArena`]'s `maybe_compact`,
    /// and the only thing that ever shrinks the log under sustained
    /// demote/promote/invalidate churn. Returns the keys of records
    /// that could no longer be read back and were dropped (the caller
    /// counts them as corruptions); on any other I/O failure the log is
    /// left untouched and compaction is simply retried later.
    ///
    /// Callers must invoke this at a quiescent point — never from
    /// inside `append`'s replace path, where a half-written record is
    /// not yet indexed and would be silently discarded.
    pub(crate) fn maybe_compact(&mut self) -> Vec<Vec<u8>> {
        if self.tail < self.compact_floor || self.live_bytes * 2 > self.tail {
            return Vec::new();
        }
        let tmp_path = self.path.with_extension("compact");
        let mut dropped = Vec::new();
        let mut new_index = HashMap::with_capacity(self.index.len());
        let mut tail = 0u64;
        let built = (|| -> std::io::Result<File> {
            let mut out = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            for (key, entry) in &self.index {
                let mut stored = vec![0u8; entry.stored_len as usize];
                let readable = self
                    .file
                    .seek(SeekFrom::Start(entry.value_off))
                    .and_then(|_| self.file.read_exact(&mut stored))
                    .is_ok();
                if !readable {
                    dropped.push(key.clone());
                    continue;
                }
                let mut header = Vec::with_capacity(8 + key.len());
                header.extend_from_slice(&(key.len() as u32).to_le_bytes());
                header.extend_from_slice(&(stored.len() as u32).to_le_bytes());
                header.extend_from_slice(key);
                out.write_all(&header)?;
                out.write_all(&stored)?;
                new_index.insert(
                    key.clone(),
                    SpillEntry {
                        value_off: tail + header.len() as u64,
                        stored_len: entry.stored_len,
                        raw_len: entry.raw_len,
                        encoding: entry.encoding,
                        checksum: entry.checksum,
                    },
                );
                tail += header.len() as u64 + stored.len() as u64;
            }
            std::fs::rename(&tmp_path, &self.path)?;
            Ok(out)
        })();
        match built {
            Ok(file) => {
                self.file = file;
                self.index = new_index;
                self.tail = tail;
                // Every surviving record is live by construction.
                self.live_bytes = tail;
                self.compactions += 1;
                dropped
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp_path);
                Vec::new()
            }
        }
    }

    /// Appends one record. Returns `(replaced, bytes_written)`; on I/O
    /// failure the entry is simply not indexed (caller counts a drop).
    pub(crate) fn append(
        &mut self,
        key: &[u8],
        stored: &[u8],
        raw_len: usize,
        encoding: Encoding,
        checksum: u64,
    ) -> std::io::Result<(bool, u64)> {
        let mut header = Vec::with_capacity(8 + key.len());
        header.extend_from_slice(&(key.len() as u32).to_le_bytes());
        header.extend_from_slice(&(stored.len() as u32).to_le_bytes());
        header.extend_from_slice(key);
        self.file.seek(SeekFrom::Start(self.tail))?;
        self.file.write_all(&header)?;
        self.file.write_all(stored)?;
        let value_off = self.tail + header.len() as u64;
        let record_len = header.len() as u64 + stored.len() as u64;
        self.tail += record_len;
        let replaced = self.remove(key);
        self.index.insert(
            key.to_vec(),
            SpillEntry {
                value_off,
                stored_len: stored.len() as u32,
                raw_len: raw_len as u32,
                encoding,
                checksum,
            },
        );
        self.live_bytes += record_len;
        Ok((replaced, record_len))
    }

    /// Reads one entry's stored bytes plus decode metadata.
    ///
    /// `Ok(None)` means the key is not spilled; `Err(())` means the key
    /// *is* indexed but its bytes cannot be read back (truncation or
    /// I/O failure) — the caller must treat that as corruption.
    #[allow(clippy::type_complexity)]
    pub(crate) fn read(
        &mut self,
        key: &[u8],
    ) -> Result<Option<(Vec<u8>, usize, Encoding, u64)>, ()> {
        let Some(entry) = self.index.get(key) else {
            return Ok(None);
        };
        let mut stored = vec![0u8; entry.stored_len as usize];
        let ok = self
            .file
            .seek(SeekFrom::Start(entry.value_off))
            .and_then(|_| self.file.read_exact(&mut stored))
            .is_ok();
        if !ok {
            return Err(());
        }
        Ok(Some((
            stored,
            entry.raw_len as usize,
            entry.encoding,
            entry.checksum,
        )))
    }

    /// Drops a key from the index (bytes stay in the log as garbage).
    pub(crate) fn remove(&mut self, key: &[u8]) -> bool {
        let Some(entry) = self.index.remove(key) else {
            return false;
        };
        let record = 8 + key.len() as u64 + entry.stored_len as u64;
        self.live_bytes = self.live_bytes.saturating_sub(record);
        true
    }

    /// Empties the log and index, resetting the file to zero length.
    pub(crate) fn clear(&mut self) {
        self.index.clear();
        self.tail = 0;
        self.live_bytes = 0;
        let _ = self.file.set_len(0);
    }

    /// Chaos hook: truncates the file to half its current length, so
    /// reads of later records fail. Returns bytes cut off.
    pub(crate) fn truncate_for_chaos(&mut self) -> u64 {
        let cut = self.tail / 2;
        if self.file.set_len(cut).is_ok() {
            self.tail - cut
        } else {
            0
        }
    }

    /// Internal-consistency check for the tier audit.
    pub(crate) fn audit(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let mut indexed: u64 = 0;
        for (key, entry) in &self.index {
            let end = entry.value_off + entry.stored_len as u64;
            if end > self.tail {
                violations.push(format!(
                    "spill entry ends at {} past tail {}",
                    end, self.tail
                ));
            }
            indexed += 8 + key.len() as u64 + entry.stored_len as u64;
        }
        if indexed != self.live_bytes {
            violations.push(format!(
                "spill live_bytes {} != indexed record bytes {indexed}",
                self.live_bytes
            ));
        }
        if self.live_bytes > self.tail {
            violations.push(format!(
                "spill live_bytes {} > file tail {}",
                self.live_bytes, self.tail
            ));
        }
        violations
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        // The spill log has no meaning across restarts (soft memory is
        // recomputable by contract) — clean up after ourselves,
        // including any temp file a crashed compaction left behind.
        let _ = std::fs::remove_file(&self.path);
        let _ = std::fs::remove_file(self.path.with_extension("compact"));
    }
}

#[cfg(test)]
mod tests {
    use super::super::codec;
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("softmem-spill-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn append_read_roundtrip_and_cleanup() {
        let path = temp_path("roundtrip");
        {
            let mut spill = SpillFile::create(path.clone(), 4096).unwrap();
            let value = b"spilled value bytes".repeat(7);
            let (stored, enc) = codec::encode(&value);
            spill
                .append(b"key", &stored, value.len(), enc, codec::checksum(&value))
                .unwrap();
            let (got, raw_len, enc2, sum) = spill.read(b"key").unwrap().expect("present");
            let back = codec::decode(&got, enc2, raw_len).unwrap();
            assert_eq!(back, value);
            assert_eq!(codec::checksum(&back), sum);
            assert!(spill.audit().is_empty());
            assert!(spill.remove(b"key"));
            assert!(spill.read(b"key").unwrap().is_none());
            assert!(spill.audit().is_empty());
        }
        assert!(!path.exists(), "spill file must be removed on drop");
    }

    #[test]
    fn truncation_surfaces_as_read_error_not_garbage() {
        let path = temp_path("truncate");
        let mut spill = SpillFile::create(path, 4096).unwrap();
        for i in 0..32 {
            let value = vec![i as u8; 512];
            let (stored, enc) = codec::encode(&value);
            spill
                .append(
                    format!("key{i}").as_bytes(),
                    &stored,
                    value.len(),
                    enc,
                    codec::checksum(&value),
                )
                .unwrap();
        }
        let cut = spill.truncate_for_chaos();
        assert!(cut > 0);
        let mut errs = 0;
        for i in 0..32 {
            match spill.read(format!("key{i}").as_bytes()) {
                Err(()) => errs += 1,
                Ok(Some((stored, raw_len, enc, sum))) => {
                    // Early records still read back clean.
                    let back = codec::decode(&stored, enc, raw_len).expect("intact record");
                    assert_eq!(codec::checksum(&back), sum);
                }
                Ok(None) => panic!("indexed key vanished"),
            }
        }
        assert!(errs > 0, "truncation should break tail reads");
    }

    #[test]
    fn compaction_reclaims_dead_log_bytes() {
        let path = temp_path("compact");
        let mut spill = SpillFile::create(path.clone(), 512).unwrap();
        let value = |i: usize| -> Vec<u8> { (0..200).map(|j| (i * 131 + j * 29) as u8).collect() };
        for i in 0..64 {
            let v = value(i);
            let (stored, enc) = codec::encode(&v);
            spill
                .append(
                    format!("key{i}").as_bytes(),
                    &stored,
                    v.len(),
                    enc,
                    codec::checksum(&v),
                )
                .unwrap();
        }
        let before = spill.file_bytes();
        for i in 0..60 {
            spill.remove(format!("key{i}").as_bytes());
        }
        let dropped = spill.maybe_compact();
        assert!(dropped.is_empty(), "all survivors readable: {dropped:?}");
        assert!(spill.compactions() > 0, "compaction never triggered");
        assert!(
            spill.file_bytes() < before / 2,
            "dead log bytes not reclaimed: {} vs {before}",
            spill.file_bytes()
        );
        assert_eq!(spill.live_bytes(), spill.file_bytes());
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            spill.file_bytes(),
            "on-disk length matches the compacted tail"
        );
        // Survivors still read back byte-identical through the
        // rewritten offsets.
        for i in 60..64 {
            let (stored, raw_len, enc, sum) =
                spill.read(format!("key{i}").as_bytes()).unwrap().unwrap();
            let back = codec::decode(&stored, enc, raw_len).expect("survivor intact");
            assert_eq!(back, value(i));
            assert_eq!(codec::checksum(&back), sum);
        }
        assert!(spill.audit().is_empty(), "{:?}", spill.audit());
        // A small or mostly-live log never compacts.
        let passes = spill.compactions();
        spill.maybe_compact();
        assert_eq!(spill.compactions(), passes);
    }
}
