//! The dense in-DRAM cold arena: append-only segments of compressed
//! value bytes plus an in-memory index.
//!
//! The arena is deliberately *not* soft memory — it is the landing pad
//! for values the SMA just evicted, so charging it to the same budget
//! would make demotion self-defeating. Instead it has its own hard
//! occupancy cap: when appending a record would exceed
//! [`super::TierConfig::arena_cap_bytes`], whole *oldest segments* are
//! surrendered (their live entries handed back to the caller, which
//! spills them to disk or drops them). Eviction at segment granularity
//! keeps the arena dense without per-entry bookkeeping on the hot path.
//!
//! Only the value bytes live in segment buffers; keys and record
//! metadata (offset, lengths, encoding, checksum) live in the index.
//! Chaos byte-flips therefore land on stored values, exactly the bytes
//! the checksum protects.

use std::collections::{HashMap, VecDeque};

use super::codec::Encoding;

/// Where one cold entry's bytes live inside the arena.
#[derive(Debug, Clone)]
pub(crate) struct ArenaEntry {
    /// Owning segment's id (monotonic; segments never renumber).
    seg: u64,
    /// Byte offset of the stored value within the segment buffer.
    off: usize,
    /// Stored (possibly compressed) length.
    pub(crate) stored_len: usize,
    /// Raw value length before compression.
    pub(crate) raw_len: usize,
    pub(crate) encoding: Encoding,
    /// FNV-1a over the raw value (see [`super::codec::checksum`]).
    pub(crate) checksum: u64,
}

/// A record evicted from the arena by cap pressure, ready to spill.
#[derive(Debug)]
pub(crate) struct EvictedRecord {
    pub(crate) key: Vec<u8>,
    pub(crate) stored: Vec<u8>,
    pub(crate) raw_len: usize,
    pub(crate) encoding: Encoding,
    pub(crate) checksum: u64,
}

struct Segment {
    id: u64,
    buf: Vec<u8>,
    /// Bytes in `buf` still referenced by the index.
    live_bytes: usize,
}

/// Dense append-only storage for demoted values.
pub(crate) struct ColdArena {
    cap_bytes: usize,
    segment_bytes: usize,
    segments: VecDeque<Segment>,
    next_seg_id: u64,
    index: HashMap<Vec<u8>, ArenaEntry>,
    compactions: u64,
    /// Running sum of every segment's `buf.len()` — every cold hit and
    /// cap check consults the footprint, so it must not cost a walk of
    /// the segment list (the tier mutex is held throughout).
    total_bytes: usize,
    /// Running sum of every segment's `live_bytes`.
    total_live: usize,
}

impl ColdArena {
    pub(crate) fn new(cap_bytes: usize, segment_bytes: usize) -> Self {
        ColdArena {
            cap_bytes: cap_bytes.max(segment_bytes),
            segment_bytes: segment_bytes.max(64),
            segments: VecDeque::new(),
            next_seg_id: 0,
            index: HashMap::new(),
            compactions: 0,
            total_bytes: 0,
            total_live: 0,
        }
    }

    pub(crate) fn entries(&self) -> usize {
        self.index.len()
    }

    /// Total buffer bytes held (live + dead), i.e. real DRAM footprint.
    pub(crate) fn bytes(&self) -> usize {
        self.total_bytes
    }

    /// Segment position by id. Ids are assigned monotonically and
    /// segments only leave from the front, so the deque is always
    /// sorted by id and a binary search suffices.
    fn seg_pos(&self, id: u64) -> Option<usize> {
        self.segments.binary_search_by_key(&id, |s| s.id).ok()
    }

    pub(crate) fn compactions(&self) -> u64 {
        self.compactions
    }

    pub(crate) fn contains(&self, key: &[u8]) -> bool {
        self.index.contains_key(key)
    }

    /// Appends a record, evicting oldest segments if the cap would be
    /// exceeded. Returns `(replaced, evicted)`: whether the key
    /// overwrote a previous cold entry, and the live records pushed out
    /// by cap pressure (never including the one just inserted).
    pub(crate) fn insert(
        &mut self,
        key: Vec<u8>,
        stored: &[u8],
        raw_len: usize,
        encoding: Encoding,
        checksum: u64,
    ) -> (bool, Vec<EvictedRecord>) {
        let replaced = self.remove(&key);
        let seg_id = self.writable_segment(stored.len());
        let seg = self.segments.back_mut().expect("writable segment exists");
        debug_assert_eq!(seg.id, seg_id);
        let off = seg.buf.len();
        seg.buf.extend_from_slice(stored);
        seg.live_bytes += stored.len();
        self.total_bytes += stored.len();
        self.total_live += stored.len();
        self.index.insert(
            key,
            ArenaEntry {
                seg: seg_id,
                off,
                stored_len: stored.len(),
                raw_len,
                encoding,
                checksum,
            },
        );
        let evicted = self.enforce_cap(seg_id);
        (replaced, evicted)
    }

    /// Looks up an entry's metadata and stored bytes without removing
    /// it. Missing segments (already evicted) are treated as absent.
    pub(crate) fn get(&self, key: &[u8]) -> Option<(&ArenaEntry, &[u8])> {
        let entry = self.index.get(key)?;
        let seg = &self.segments[self.seg_pos(entry.seg)?];
        let bytes = seg.buf.get(entry.off..entry.off + entry.stored_len)?;
        Some((entry, bytes))
    }

    /// Drops an entry from the index, returning whether it existed.
    /// Dead bytes stay in the segment until compaction or segment
    /// eviction reclaims them.
    pub(crate) fn remove(&mut self, key: &[u8]) -> bool {
        let Some(entry) = self.index.remove(key) else {
            return false;
        };
        if let Some(pos) = self.seg_pos(entry.seg) {
            let seg = &mut self.segments[pos];
            seg.live_bytes = seg.live_bytes.saturating_sub(entry.stored_len);
            self.total_live = self.total_live.saturating_sub(entry.stored_len);
        }
        self.maybe_compact();
        true
    }

    pub(crate) fn clear(&mut self) {
        self.segments.clear();
        self.index.clear();
        self.total_bytes = 0;
        self.total_live = 0;
    }

    /// Chaos hook: flips one pseudo-random byte per `flips` iteration
    /// across segment buffers. Returns how many bytes were flipped.
    pub(crate) fn corrupt(&mut self, seed: u64, flips: usize) -> usize {
        let total = self.bytes();
        if total == 0 {
            return 0;
        }
        let mut x = seed | 1;
        let mut flipped = 0;
        for _ in 0..flips {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let mut pos = (x as usize) % total;
            for seg in self.segments.iter_mut() {
                if pos < seg.buf.len() {
                    seg.buf[pos] ^= ((x >> 32) as u8) | 1;
                    flipped += 1;
                    break;
                }
                pos -= seg.buf.len();
            }
        }
        flipped
    }

    /// Internal-consistency check used by the tier audit. Returns
    /// human-readable violations (empty = consistent).
    pub(crate) fn audit(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let sum_bytes: usize = self.segments.iter().map(|s| s.buf.len()).sum();
        let sum_live: usize = self.segments.iter().map(|s| s.live_bytes).sum();
        if sum_bytes != self.total_bytes {
            violations.push(format!(
                "arena total_bytes {} != recomputed {sum_bytes}",
                self.total_bytes
            ));
        }
        if sum_live != self.total_live {
            violations.push(format!(
                "arena total_live {} != recomputed {sum_live}",
                self.total_live
            ));
        }
        if !self
            .segments
            .iter()
            .zip(self.segments.iter().skip(1))
            .all(|(a, b)| a.id < b.id)
        {
            violations.push("arena segment ids out of order (binary search broken)".to_string());
        }
        let mut live_by_seg: HashMap<u64, usize> = HashMap::new();
        for (key, entry) in &self.index {
            match self.segments.iter().find(|s| s.id == entry.seg) {
                None => violations.push(format!(
                    "arena index key ({} bytes) points at missing segment {}",
                    key.len(),
                    entry.seg
                )),
                Some(seg) => {
                    if entry.off + entry.stored_len > seg.buf.len() {
                        violations.push(format!(
                            "arena entry overruns segment {}: off {} + len {} > {}",
                            entry.seg,
                            entry.off,
                            entry.stored_len,
                            seg.buf.len()
                        ));
                    }
                    *live_by_seg.entry(entry.seg).or_default() += entry.stored_len;
                }
            }
        }
        for seg in &self.segments {
            let indexed = live_by_seg.get(&seg.id).copied().unwrap_or(0);
            if indexed != seg.live_bytes {
                violations.push(format!(
                    "segment {} live_bytes {} != indexed bytes {}",
                    seg.id, seg.live_bytes, indexed
                ));
            }
            if seg.live_bytes > seg.buf.len() {
                violations.push(format!(
                    "segment {} live_bytes {} > buffer {}",
                    seg.id,
                    seg.live_bytes,
                    seg.buf.len()
                ));
            }
        }
        violations
    }

    /// Ensures the back segment can take `need` more bytes, sealing a
    /// full one and opening a fresh segment as required. Returns the
    /// writable segment's id.
    fn writable_segment(&mut self, need: usize) -> u64 {
        let open_new = match self.segments.back() {
            None => true,
            Some(seg) => !seg.buf.is_empty() && seg.buf.len() + need > self.segment_bytes,
        };
        if open_new {
            let id = self.next_seg_id;
            self.next_seg_id += 1;
            self.segments.push_back(Segment {
                id,
                buf: Vec::with_capacity(self.segment_bytes.min(need.max(64))),
                live_bytes: 0,
            });
        }
        self.segments.back().expect("just ensured").id
    }

    /// Evicts oldest segments until the arena fits its cap, never
    /// touching `protect` (the segment that just received an insert —
    /// evicting it would hand the caller back the record it is trying
    /// to demote).
    fn enforce_cap(&mut self, protect: u64) -> Vec<EvictedRecord> {
        let mut evicted = Vec::new();
        while self.total_bytes > self.cap_bytes && self.segments.len() > 1 {
            if self.segments.front().map(|s| s.id) == Some(protect) {
                break;
            }
            let seg = self.segments.pop_front().expect("non-empty");
            self.total_bytes -= seg.buf.len();
            self.total_live = self.total_live.saturating_sub(seg.live_bytes);
            // Collect the evicted segment's live entries by scanning
            // the index; segment eviction is rare (cap-crossing only)
            // so the scan cost is acceptable and keeps inserts O(1).
            let keys: Vec<Vec<u8>> = self
                .index
                .iter()
                .filter(|(_, e)| e.seg == seg.id)
                .map(|(k, _)| k.clone())
                .collect();
            for key in keys {
                let entry = self.index.remove(&key).expect("just listed");
                let stored = seg.buf[entry.off..entry.off + entry.stored_len].to_vec();
                evicted.push(EvictedRecord {
                    key,
                    stored,
                    raw_len: entry.raw_len,
                    encoding: entry.encoding,
                    checksum: entry.checksum,
                });
            }
        }
        evicted
    }

    /// Rewrites live entries into fresh segments when more than half of
    /// the arena is dead bytes — keeps the DRAM footprint proportional
    /// to live data after heavy invalidation/promotion churn.
    fn maybe_compact(&mut self) {
        let total = self.total_bytes;
        let live = self.total_live;
        if total < 2 * self.segment_bytes || live * 2 > total {
            return;
        }
        self.compactions += 1;
        let old_index = std::mem::take(&mut self.index);
        let old_segments = std::mem::take(&mut self.segments);
        self.total_bytes = 0;
        self.total_live = 0;
        for (key, entry) in old_index {
            // Rebuild walks the old list once; a per-key binary search
            // is not worth it here since compaction is already O(live).
            let Some(seg) = old_segments.iter().find(|s| s.id == entry.seg) else {
                continue;
            };
            let Some(stored) = seg.buf.get(entry.off..entry.off + entry.stored_len) else {
                continue;
            };
            let stored = stored.to_vec();
            let seg_id = self.writable_segment(stored.len());
            let back = self.segments.back_mut().expect("writable segment exists");
            debug_assert_eq!(back.id, seg_id);
            let off = back.buf.len();
            back.buf.extend_from_slice(&stored);
            back.live_bytes += stored.len();
            self.total_bytes += stored.len();
            self.total_live += stored.len();
            self.index.insert(
                key,
                ArenaEntry {
                    seg: seg_id,
                    off,
                    stored_len: entry.stored_len,
                    raw_len: entry.raw_len,
                    encoding: entry.encoding,
                    checksum: entry.checksum,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::codec;
    use super::*;

    fn put(arena: &mut ColdArena, key: &[u8], value: &[u8]) -> (bool, Vec<EvictedRecord>) {
        let (stored, enc) = codec::encode(value);
        arena.insert(
            key.to_vec(),
            &stored,
            value.len(),
            enc,
            codec::checksum(value),
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = ColdArena::new(1 << 20, 4096);
        let value = b"hello cold world".repeat(10);
        put(&mut arena, b"k1", &value);
        let (entry, stored) = arena.get(b"k1").expect("present");
        let back = codec::decode(stored, entry.encoding, entry.raw_len).unwrap();
        assert_eq!(back, value);
        assert_eq!(codec::checksum(&back), entry.checksum);
        assert!(arena.remove(b"k1"));
        assert!(arena.get(b"k1").is_none());
        assert!(!arena.remove(b"k1"));
        assert!(arena.audit().is_empty());
    }

    #[test]
    fn cap_pressure_evicts_oldest_segments() {
        // Incompressible values so stored size ~= raw size.
        let mut arena = ColdArena::new(4096, 1024);
        let mut x = 7u64;
        let mut noise = |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u8
                })
                .collect()
        };
        let mut evicted_total = 0;
        for i in 0..40 {
            let key = format!("key{i}");
            let (_, evicted) = put(&mut arena, key.as_bytes(), &noise(500));
            evicted_total += evicted.len();
        }
        assert!(evicted_total > 0, "cap never enforced");
        assert!(
            arena.bytes() <= 4096 + 1024,
            "arena over cap: {}",
            arena.bytes()
        );
        // Newest key always survives its own insert.
        assert!(arena.contains(b"key39"));
        assert!(arena.audit().is_empty());
    }

    #[test]
    fn compaction_reclaims_dead_bytes() {
        let mut arena = ColdArena::new(1 << 20, 512);
        for i in 0..64 {
            let key = format!("key{i}");
            // Incompressible-ish unique values big enough that dead
            // bytes dominate once most keys are removed.
            let value: Vec<u8> = (0..96u32)
                .map(|j| (i as u32 * 131 + j * 29 + j * j) as u8)
                .collect();
            put(&mut arena, key.as_bytes(), &value);
        }
        let before = arena.bytes();
        for i in 0..60 {
            arena.remove(format!("key{i}").as_bytes());
        }
        assert!(arena.compactions() > 0, "compaction never triggered");
        assert!(arena.bytes() < before / 2, "dead bytes not reclaimed");
        for i in 60..64 {
            let key = format!("key{i}");
            let (entry, stored) = arena.get(key.as_bytes()).expect("survivor");
            let back = codec::decode(stored, entry.encoding, entry.raw_len).unwrap();
            let expect: Vec<u8> = (0..96u32)
                .map(|j| (i as u32 * 131 + j * 29 + j * j) as u8)
                .collect();
            assert_eq!(back, expect);
        }
        assert!(arena.audit().is_empty());
    }

    #[test]
    fn corruption_flips_bytes_in_place() {
        let mut arena = ColdArena::new(1 << 20, 4096);
        put(&mut arena, b"k", &[0x5A; 256]);
        let flipped = arena.corrupt(0xBAD_5EED, 8);
        assert!(flipped > 0);
        let (entry, stored) = arena.get(b"k").expect("still indexed");
        // The decoded bytes (if any) must now fail the checksum.
        match codec::decode(stored, entry.encoding, entry.raw_len) {
            None => {}
            Some(back) => assert_ne!(codec::checksum(&back), entry.checksum),
        }
    }
}
