//! # softmem-core — the Soft Memory Allocator (SMA)
//!
//! This crate implements the per-application half of *soft memory* as
//! described in "Towards Increased Datacenter Efficiency with Soft Memory"
//! (HotOS '23): an opt-in memory abstraction whose allocations are
//! *revocable* under memory pressure.
//!
//! The building blocks, bottom-up:
//!
//! * [`page`] — the primary-storage substrate: 4 KiB [`page::PageFrame`]s,
//!   a machine-wide physical capacity model ([`page::MachineMemory`]) and a
//!   per-process [`page::PagePool`] that tracks pages released back to the
//!   OS (so they can be re-backed before the heap grows again, as in §4 of
//!   the paper).
//! * [`heap`] — one isolated heap per Soft Data Structure (SDS): size-class
//!   slab pages plus multi-page spans, with per-page live counters so that
//!   wholly-free pages can be harvested for reclamation.
//! * [`handle`] — generation-checked handles ([`handle::SoftHandle`],
//!   [`handle::SoftSlot`]). Reclaiming an allocation bumps its slot
//!   generation, so stale handles observe [`SoftError::Revoked`] instead of
//!   undefined behaviour — the crate's answer to the paper's "all pointers
//!   become invalid" open question (§7).
//! * [`smr`] — epoch-based safe memory reclamation: per-thread read
//!   guards pin an epoch so the read path can hand out borrowed
//!   `&[u8]` slices with zero copies, while frees of observed slots
//!   defer to a limbo list until every guard has advanced.
//! * [`tier`] — the second-chance cold tier: a last-chance eviction
//!   callback can *demote* a value into a compressed DRAM arena (and,
//!   under deeper pressure, an on-disk spill log) instead of destroying
//!   it, and promote it back on access — checksummed end to end so
//!   corruption is a clean miss, never torn data.
//! * [`sma`] — the allocator proper: an SDS registry, a process-global free
//!   pool, a soft-memory budget granted by the machine-wide daemon, and the
//!   two-tier reclamation protocol (the SMA picks SDSs by priority, each
//!   SDS picks allocations to give up).
//!
//! The machine-wide Soft Memory Daemon (SMD) lives in the companion
//! `softmem-daemon` crate; ready-made Soft Data Structures live in
//! `softmem-sds`.
//!
//! # Examples
//!
//! ```
//! use softmem_core::{Sma, SmaConfig, Priority};
//!
//! let sma = Sma::with_config(SmaConfig::for_testing(256));
//! let sds = sma.register_sds("example", Priority::new(5));
//! let slot = sma.alloc_value(sds, 42u64).unwrap();
//! assert_eq!(sma.with_value(&slot, |v| *v).unwrap(), 42);
//! sma.free_value(slot).unwrap();
//! ```

pub mod budget;
pub mod config;
pub mod error;
pub mod handle;
pub mod heap;
pub mod page;
pub mod sma;
pub mod smr;
pub mod stats;
pub mod tier;

pub use budget::{BudgetFault, BudgetSource, BudgetTap, Grant, InterposedBudget};
pub use config::SmaConfig;
pub use error::{SoftError, SoftResult};
pub use handle::{Priority, RawHandle, SdsId, SoftHandle, SoftSlot};
pub use page::{MachineMemory, PAGE_SIZE};
pub use sma::{ReclaimReport, SdsReclaimer, SdsStats, Sma, SmaMetrics, MAX_ALLOC_BYTES};
pub use smr::{ReadGuard, SmrRegistry};
pub use stats::SmaStats;
pub use tier::{ColdTier, TierConfig, TierHit, TierStats};

/// Converts a byte count to the number of 4 KiB pages needed to hold it.
///
/// # Examples
///
/// ```
/// assert_eq!(softmem_core::bytes_to_pages(1), 1);
/// assert_eq!(softmem_core::bytes_to_pages(4096), 1);
/// assert_eq!(softmem_core::bytes_to_pages(4097), 2);
/// assert_eq!(softmem_core::bytes_to_pages(0), 0);
/// ```
pub const fn bytes_to_pages(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

/// Converts a page count to bytes.
pub const fn pages_to_bytes(pages: usize) -> usize {
    pages * PAGE_SIZE
}

/// Formats a byte count with a binary-unit suffix for log/report output.
///
/// # Examples
///
/// ```
/// assert_eq!(softmem_core::fmt_bytes(512), "512 B");
/// assert_eq!(softmem_core::fmt_bytes(10 * 1024 * 1024), "10.00 MiB");
/// ```
pub fn fmt_bytes(bytes: usize) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b < KIB {
        format!("{bytes} B")
    } else if b < KIB * KIB {
        format!("{:.2} KiB", b / KIB)
    } else if b < KIB * KIB * KIB {
        format!("{:.2} MiB", b / (KIB * KIB))
    } else {
        format!("{:.2} GiB", b / (KIB * KIB * KIB))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_pages_roundtrip() {
        for pages in [0usize, 1, 2, 17, 1024] {
            assert_eq!(bytes_to_pages(pages_to_bytes(pages)), pages);
        }
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(1023), "1023 B");
        assert_eq!(fmt_bytes(1024), "1.00 KiB");
        assert_eq!(fmt_bytes(1536), "1.50 KiB");
        assert_eq!(fmt_bytes(3 << 30), "3.00 GiB");
    }
}
