//! The budget-growth hook connecting an SMA to the machine-wide daemon.
//!
//! The SMA never talks to the Soft Memory Daemon directly (that would
//! invert the crate dependency); instead a [`BudgetSource`] is attached by
//! the `softmem-daemon` crate's process runtime. When an allocation
//! exceeds the current budget, the SMA drops its internal lock, asks the
//! budget source for more pages, and retries — reproducing §5 case (2) of
//! the paper, where "communication with the memory daemon to increase
//! resource budget is amortized over many allocations".

use crate::error::SoftResult;

/// Outcome of a budget-growth request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Pages granted (0 ⇒ denied).
    pub pages: usize,
    /// Whether the source already applied the grant to the SMA's
    /// budget. The daemon client applies grants itself *under the
    /// daemon lock* (so a subsequent reclamation demand can never
    /// observe a granted-but-unapplied budget); standalone sources
    /// leave application to the SMA.
    pub already_applied: bool,
}

impl Grant {
    /// A grant the SMA should apply itself.
    pub fn unapplied(pages: usize) -> Self {
        Grant {
            pages,
            already_applied: false,
        }
    }

    /// A grant the source has already applied.
    pub fn applied(pages: usize) -> Self {
        Grant {
            pages,
            already_applied: true,
        }
    }
}

/// A provider of additional soft-memory budget.
///
/// Implemented by the daemon client in `softmem-daemon`; test code can
/// supply closures or fixed-grant stubs.
pub trait BudgetSource: Send + Sync {
    /// Requests additional budget: at least `need` pages (the
    /// allocation's shortfall — worth triggering machine-wide
    /// reclamation for), opportunistically up to `want` pages (the
    /// SMA's growth chunk, taken only from uncontended capacity so
    /// daemon round-trips amortise over many allocations).
    ///
    /// Returns the grant; `Grant { pages: 0, .. }` makes the
    /// triggering allocation fail with
    /// [`crate::SoftError::BudgetExceeded`].
    fn grant_more(&self, need: usize, want: usize) -> SoftResult<Grant>;
}

impl<F> BudgetSource for F
where
    F: Fn(usize, usize) -> SoftResult<usize> + Send + Sync,
{
    fn grant_more(&self, need: usize, want: usize) -> SoftResult<Grant> {
        self(need, want).map(Grant::unapplied)
    }
}

/// A budget source that always grants the full `want` (for tests and
/// standalone examples without a daemon).
#[derive(Debug, Default, Clone, Copy)]
pub struct UnlimitedBudget;

impl BudgetSource for UnlimitedBudget {
    fn grant_more(&self, _need: usize, want: usize) -> SoftResult<Grant> {
        Ok(Grant::unapplied(want))
    }
}

/// A budget source that always denies (for failure-injection tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct DeniedBudget;

impl BudgetSource for DeniedBudget {
    fn grant_more(&self, _need: usize, _want: usize) -> SoftResult<Grant> {
        Ok(Grant::unapplied(0))
    }
}

/// What a [`BudgetTap`] does with one budget-growth request.
///
/// The benign variants model real protocol failures the stack must
/// survive with its accounting intact; [`ForgeGrant`] deliberately
/// corrupts accounting so invariant checkers can prove they detect it.
///
/// [`ForgeGrant`]: BudgetFault::ForgeGrant
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetFault {
    /// Forward the request to the inner source unchanged.
    PassThrough,
    /// Deny without consulting the inner source (a daemon denial as
    /// seen from the SMA).
    Deny,
    /// Sleep this many milliseconds, then forward (a slow daemon).
    DelayMs(u64),
    /// Forward the request but discard the reply: the caller sees a
    /// zero grant even though the source may have committed one (a
    /// reply lost after the daemon applied the grant — the applied
    /// pages are still accounted on both sides, only this allocation's
    /// retry is lost).
    DropReply,
    /// Fabricate an unapplied grant of this many pages without
    /// consulting the inner source. The SMA's budget grows without any
    /// daemon assignment — this deliberately BREAKS budget
    /// conservation and exists so checkers can prove they catch it.
    ForgeGrant(usize),
}

/// Interposes on every budget-growth request of an
/// [`InterposedBudget`]. Implementations decide per call which
/// [`BudgetFault`] to apply and may observe outcomes for accounting.
pub trait BudgetTap: Send + Sync {
    /// Decides what happens to this request.
    fn intercept(&self, need: usize, want: usize) -> BudgetFault;

    /// Observes the outcome actually returned to the SMA (after any
    /// fault was applied).
    fn observe(&self, need: usize, want: usize, outcome: &SoftResult<Grant>) {
        let _ = (need, want, outcome);
    }
}

/// A [`BudgetSource`] wrapper that routes every request through a
/// [`BudgetTap`] — the protocol point where testing harnesses inject
/// daemon denials, delayed or dropped grants, and (deliberately
/// corrupt) forged grants between an SMA and its real budget source.
pub struct InterposedBudget {
    inner: std::sync::Arc<dyn BudgetSource>,
    tap: std::sync::Arc<dyn BudgetTap>,
}

impl InterposedBudget {
    /// Wraps `inner` so every request passes through `tap`.
    pub fn new(
        inner: std::sync::Arc<dyn BudgetSource>,
        tap: std::sync::Arc<dyn BudgetTap>,
    ) -> Self {
        InterposedBudget { inner, tap }
    }
}

impl BudgetSource for InterposedBudget {
    fn grant_more(&self, need: usize, want: usize) -> SoftResult<Grant> {
        let outcome = match self.tap.intercept(need, want) {
            BudgetFault::PassThrough => self.inner.grant_more(need, want),
            BudgetFault::Deny => Ok(Grant::unapplied(0)),
            BudgetFault::DelayMs(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                self.inner.grant_more(need, want)
            }
            BudgetFault::DropReply => {
                let inner = self.inner.grant_more(need, want);
                // Report nothing, but never un-apply what the source
                // committed: an applied grant stays applied (and stays
                // consistently accounted); only the reply is lost.
                inner.map(|g| Grant {
                    pages: 0,
                    already_applied: g.already_applied,
                })
            }
            BudgetFault::ForgeGrant(pages) => Ok(Grant::unapplied(pages)),
        };
        self.tap.observe(need, want, &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_a_budget_source() {
        let src = |need: usize, _want: usize| Ok(need * 2);
        assert_eq!(src.grant_more(10, 64).unwrap(), Grant::unapplied(20));
    }

    #[test]
    fn stub_sources() {
        assert_eq!(UnlimitedBudget.grant_more(7, 32).unwrap().pages, 32);
        assert_eq!(DeniedBudget.grant_more(7, 32).unwrap().pages, 0);
        assert!(!UnlimitedBudget.grant_more(1, 1).unwrap().already_applied);
    }

    #[test]
    fn interposed_budget_applies_each_fault() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        struct ScriptedTap {
            calls: AtomicUsize,
            script: Vec<BudgetFault>,
        }

        impl BudgetTap for ScriptedTap {
            fn intercept(&self, _need: usize, _want: usize) -> BudgetFault {
                let i = self.calls.fetch_add(1, Ordering::Relaxed);
                self.script[i % self.script.len()]
            }
        }

        let tap = Arc::new(ScriptedTap {
            calls: AtomicUsize::new(0),
            script: vec![
                BudgetFault::PassThrough,
                BudgetFault::Deny,
                BudgetFault::DropReply,
                BudgetFault::ForgeGrant(99),
            ],
        });
        let src = InterposedBudget::new(Arc::new(UnlimitedBudget), tap);
        assert_eq!(src.grant_more(4, 16).unwrap(), Grant::unapplied(16));
        assert_eq!(src.grant_more(4, 16).unwrap(), Grant::unapplied(0));
        assert_eq!(src.grant_more(4, 16).unwrap(), Grant::unapplied(0));
        assert_eq!(src.grant_more(4, 16).unwrap(), Grant::unapplied(99));
    }

    #[test]
    fn drop_reply_preserves_applied_flag() {
        use std::sync::Arc;

        struct AppliedSource;
        impl BudgetSource for AppliedSource {
            fn grant_more(&self, _need: usize, want: usize) -> SoftResult<Grant> {
                Ok(Grant::applied(want))
            }
        }

        struct AlwaysDrop;
        impl BudgetTap for AlwaysDrop {
            fn intercept(&self, _need: usize, _want: usize) -> BudgetFault {
                BudgetFault::DropReply
            }
        }

        let src = InterposedBudget::new(Arc::new(AppliedSource), Arc::new(AlwaysDrop));
        let g = src.grant_more(8, 8).unwrap();
        assert_eq!(g.pages, 0, "the reply is lost");
        assert!(
            g.already_applied,
            "what the source committed is never silently un-applied"
        );
    }
}
