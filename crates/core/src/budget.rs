//! The budget-growth hook connecting an SMA to the machine-wide daemon.
//!
//! The SMA never talks to the Soft Memory Daemon directly (that would
//! invert the crate dependency); instead a [`BudgetSource`] is attached by
//! the `softmem-daemon` crate's process runtime. When an allocation
//! exceeds the current budget, the SMA drops its internal lock, asks the
//! budget source for more pages, and retries — reproducing §5 case (2) of
//! the paper, where "communication with the memory daemon to increase
//! resource budget is amortized over many allocations".

use crate::error::SoftResult;

/// Outcome of a budget-growth request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Pages granted (0 ⇒ denied).
    pub pages: usize,
    /// Whether the source already applied the grant to the SMA's
    /// budget. The daemon client applies grants itself *under the
    /// daemon lock* (so a subsequent reclamation demand can never
    /// observe a granted-but-unapplied budget); standalone sources
    /// leave application to the SMA.
    pub already_applied: bool,
}

impl Grant {
    /// A grant the SMA should apply itself.
    pub fn unapplied(pages: usize) -> Self {
        Grant {
            pages,
            already_applied: false,
        }
    }

    /// A grant the source has already applied.
    pub fn applied(pages: usize) -> Self {
        Grant {
            pages,
            already_applied: true,
        }
    }
}

/// A provider of additional soft-memory budget.
///
/// Implemented by the daemon client in `softmem-daemon`; test code can
/// supply closures or fixed-grant stubs.
pub trait BudgetSource: Send + Sync {
    /// Requests additional budget: at least `need` pages (the
    /// allocation's shortfall — worth triggering machine-wide
    /// reclamation for), opportunistically up to `want` pages (the
    /// SMA's growth chunk, taken only from uncontended capacity so
    /// daemon round-trips amortise over many allocations).
    ///
    /// Returns the grant; `Grant { pages: 0, .. }` makes the
    /// triggering allocation fail with
    /// [`crate::SoftError::BudgetExceeded`].
    fn grant_more(&self, need: usize, want: usize) -> SoftResult<Grant>;
}

impl<F> BudgetSource for F
where
    F: Fn(usize, usize) -> SoftResult<usize> + Send + Sync,
{
    fn grant_more(&self, need: usize, want: usize) -> SoftResult<Grant> {
        self(need, want).map(Grant::unapplied)
    }
}

/// A budget source that always grants the full `want` (for tests and
/// standalone examples without a daemon).
#[derive(Debug, Default, Clone, Copy)]
pub struct UnlimitedBudget;

impl BudgetSource for UnlimitedBudget {
    fn grant_more(&self, _need: usize, want: usize) -> SoftResult<Grant> {
        Ok(Grant::unapplied(want))
    }
}

/// A budget source that always denies (for failure-injection tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct DeniedBudget;

impl BudgetSource for DeniedBudget {
    fn grant_more(&self, _need: usize, _want: usize) -> SoftResult<Grant> {
        Ok(Grant::unapplied(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_a_budget_source() {
        let src = |need: usize, _want: usize| Ok(need * 2);
        assert_eq!(src.grant_more(10, 64).unwrap(), Grant::unapplied(20));
    }

    #[test]
    fn stub_sources() {
        assert_eq!(UnlimitedBudget.grant_more(7, 32).unwrap().pages, 32);
        assert_eq!(DeniedBudget.grant_more(7, 32).unwrap().pages, 0);
        assert!(!UnlimitedBudget.grant_more(1, 1).unwrap().already_applied);
    }
}
