//! Safe memory reclamation (SMR) for guarded zero-copy reads.
//!
//! The allocator's read path hands callers a borrowed `&[u8]` that
//! points straight into a slab page. Nothing in the type system stops
//! a concurrent free (or reclamation pass) from recycling that page
//! while the borrow is alive, so the allocator needs a runtime grace
//! protocol. This module provides the epoch-based variant described by
//! DEBRA and Hyaline, specialised to the SMA's needs:
//!
//! - a per-[`crate::Sma`] [`SmrRegistry`] holding a global epoch
//!   counter and a fixed table of reader slots;
//! - [`ReadGuard`]s that *pin* the current epoch in a reader slot for
//!   the duration of a borrow;
//! - retirement: a writer that invalidates memory calls
//!   [`SmrRegistry::retire`], which advances the global epoch and
//!   returns the epoch `E` the memory was retired at. The memory may
//!   be recycled once [`SmrRegistry::safe_to_reclaim`]`(E)` — i.e.
//!   every pinned reader entered at an epoch strictly greater than
//!   `E`, so none of them can have resolved the retired slot.
//!
//! ## Why this is sound
//!
//! Readers pin **while holding the shard lock** that serialises every
//! free of the slots they are about to resolve; frees and their
//! retirement `fetch_add` happen under the same lock. A reader that
//! successfully resolved a slot therefore published its pin before
//! the freeing thread could acquire the lock, so the pinned epoch is
//! `<=` the retirement epoch `E` (epochs are monotonic). Waiting for
//! `min_pinned() > E` covers every reader that could possibly observe
//! the retired bytes. Readers that lock *after* the free fail to
//! resolve instead (the slot's generation is already zeroed, yielding
//! `Revoked`).
//!
//! Pinning inside the lock (rather than before it) also makes the
//! writer-side grace wait deadlock-free: a reader blocked on the
//! shard lock holds no pin yet, so a writer spinning on
//! [`SmrRegistry::synchronize`] while holding that lock can never be
//! waiting for a reader that is in turn waiting for the writer.
//!
//! ## Fast paths
//!
//! `active_guards` counts live guards; when it is zero at retire time
//! the writer can skip the grace machinery entirely — a reader that
//! has not pinned yet is still queued on the shard lock and will
//! observe the zeroed generation. This keeps the no-reader free path
//! as cheap as it was before the SMR layer existed.
//!
//! Pinning itself is one CAS to claim a slot plus a store/validate
//! pair, all on a cache line owned by the pinning thread.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of reader slots. Pins beyond this many *concurrent* guards
/// on one SMA spin for a slot; 128 comfortably covers every
/// deployment we model, because guards are scoped to a read closure
/// and never cross a park or an await.
const READER_SLOTS: usize = 128;

/// Slot epoch value meaning "no reader pinned here".
const IDLE: u64 = 0;

/// Placeholder stored by the claim CAS before the real epoch lands.
/// Treated as "pinned at infinity": it can never hold back a retire.
const CLAIMED: u64 = u64::MAX;

#[repr(align(64))]
struct ReaderSlot {
    /// Epoch the owning reader pinned at; [`IDLE`] when unclaimed.
    epoch: AtomicU64,
    /// Token of the thread holding the slot (0 = none). Lets
    /// writer-side grace waits skip the current thread's own guards.
    owner: AtomicU64,
}

/// The per-SMA pinned-epoch registry.
pub struct SmrRegistry {
    /// Monotonic global epoch. Starts at 1 so [`IDLE`] (0) can never
    /// collide with a real pinned epoch.
    global_epoch: AtomicU64,
    slots: Box<[ReaderSlot]>,
    /// Live [`ReadGuard`] count — the no-readers fast path.
    active_guards: AtomicUsize,
    /// Times a writer or the reclaimer was held up (waited, or parked
    /// work on a limbo list) by an active guard. Ground truth for the
    /// `smr_guard_stalls_total` telemetry mirror; bumped via
    /// [`SmrRegistry::note_stall`] by the SMA at the same sites that
    /// increment the telemetry counter.
    guard_stalls: AtomicU64,
}

impl Default for SmrRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable nonzero token for the current thread.
fn thread_token() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: Cell<u64> = const { Cell::new(0) };
    }
    TOKEN.with(|t| {
        let mut v = t.get();
        if v == 0 {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(v);
        }
        v
    })
}

impl SmrRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        let slots = (0..READER_SLOTS)
            .map(|_| ReaderSlot {
                epoch: AtomicU64::new(IDLE),
                owner: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SmrRegistry {
            global_epoch: AtomicU64::new(1),
            slots,
            active_guards: AtomicUsize::new(0),
            guard_stalls: AtomicU64::new(0),
        }
    }

    /// Pins the current epoch, returning a guard that unpins on drop.
    ///
    /// While the guard is alive, no slot retired at an epoch `>=` the
    /// pinned epoch will be recycled, so borrows resolved under it
    /// stay valid. Callers inside the allocator pin while holding the
    /// shard lock (see the module docs for why that ordering is the
    /// load-bearing one).
    pub fn pin(self: &Arc<Self>) -> ReadGuard {
        self.active_guards.fetch_add(1, Ordering::SeqCst);
        let token = thread_token();
        // Claim a slot. Start the scan at a thread-derived offset so
        // unrelated threads don't all contend on slot 0.
        let start = (token as usize) % READER_SLOTS;
        let idx = 'claim: loop {
            for i in 0..READER_SLOTS {
                let idx = (start + i) % READER_SLOTS;
                let slot = &self.slots[idx];
                if slot.epoch.load(Ordering::Relaxed) == IDLE
                    && slot
                        .epoch
                        .compare_exchange(IDLE, CLAIMED, Ordering::SeqCst, Ordering::Relaxed)
                        .is_ok()
                {
                    break 'claim idx;
                }
            }
            std::hint::spin_loop();
        };
        let slot = &self.slots[idx];
        slot.owner.store(token, Ordering::SeqCst);
        // Store-then-validate: if the global epoch moved between the
        // load and the store, re-publish so retiring writers on other
        // shards never miss this pin.
        loop {
            let e = self.global_epoch.load(Ordering::SeqCst);
            slot.epoch.store(e, Ordering::SeqCst);
            if self.global_epoch.load(Ordering::SeqCst) == e {
                break;
            }
        }
        ReadGuard {
            registry: Arc::clone(self),
            slot: idx,
        }
    }

    /// Retires memory invalidated *before* this call (under the same
    /// shard lock its readers resolve under): advances the global
    /// epoch and returns the retirement epoch `E`. The memory may be
    /// recycled once [`Self::safe_to_reclaim`]`(E)`.
    pub fn retire(&self) -> u64 {
        self.global_epoch.fetch_add(1, Ordering::SeqCst)
    }

    /// The current global epoch (diagnostics / tests).
    pub fn current_epoch(&self) -> u64 {
        self.global_epoch.load(Ordering::SeqCst)
    }

    /// Number of live guards right now.
    pub fn active_guards(&self) -> usize {
        self.active_guards.load(Ordering::SeqCst)
    }

    /// Cumulative guard-stall count (ground truth for telemetry).
    pub fn guard_stalls(&self) -> u64 {
        self.guard_stalls.load(Ordering::SeqCst)
    }

    /// Records that a writer or reclaimer was held up by a guard. The
    /// SMA calls this alongside the matching telemetry increment so
    /// the mirror certifies.
    pub fn note_stall(&self) {
        self.guard_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Minimum epoch pinned by any reader, or `u64::MAX` when no
    /// reader is pinned. `exclude_current_thread` skips slots owned by
    /// the calling thread — used by writer-side grace waits so a read
    /// closure that writes *another* handle cannot deadlock on its own
    /// guard (mutating the handle you are reading remains a contract
    /// violation; see `Sma::with_bytes`).
    pub fn min_pinned(&self, exclude_current_thread: bool) -> u64 {
        let me = if exclude_current_thread {
            thread_token()
        } else {
            0
        };
        let mut min = u64::MAX;
        for slot in self.slots.iter() {
            let e = slot.epoch.load(Ordering::SeqCst);
            if e == IDLE {
                continue;
            }
            if me != 0 && slot.owner.load(Ordering::SeqCst) == me {
                continue;
            }
            min = min.min(e);
        }
        min
    }

    /// Whether memory retired at epoch `retire_epoch` can be recycled:
    /// no reader at all is pinned, or every pinned reader entered
    /// after the retirement. This is the predicate limbo flushes use,
    /// so it does **not** exclude the calling thread's own guards —
    /// a flush must never free bytes its own thread is still reading.
    pub fn safe_to_reclaim(&self, retire_epoch: u64) -> bool {
        if self.active_guards.load(Ordering::SeqCst) == 0 {
            return true;
        }
        self.min_pinned(false) > retire_epoch
    }

    /// Like [`Self::safe_to_reclaim`] but ignoring guards held by the
    /// calling thread — the predicate writer grace waits spin on.
    pub fn safe_excluding_self(&self, retire_epoch: u64) -> bool {
        if self.active_guards.load(Ordering::SeqCst) == 0 {
            return true;
        }
        self.min_pinned(true) > retire_epoch
    }

    /// Blocks (spin then yield) until memory retired at `retire_epoch`
    /// is no longer observable by any *other* thread's guard. Guards
    /// held by the calling thread are excluded so a writer cannot
    /// deadlock on its own read closure — see [`Self::min_pinned`].
    ///
    /// Does not count stalls; callers that want the stall recorded
    /// check [`Self::safe_excluding_self`] first and pair
    /// [`Self::note_stall`] with their telemetry increment.
    pub fn synchronize(&self, retire_epoch: u64) {
        let mut spins = 0u32;
        while !self.safe_excluding_self(retire_epoch) {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// A pinned reader epoch. Keeps every slot retired at or after the
/// pinned epoch observable until dropped.
///
/// Deliberately `!Send`-in-practice: the guard records the pinning
/// thread's token so writer-side grace waits can exclude their own
/// thread, and moving a guard across threads would corrupt that
/// exclusion. Guards are scoped to read closures inside the
/// allocator, which never cross threads.
pub struct ReadGuard {
    registry: Arc<SmrRegistry>,
    slot: usize,
}

impl ReadGuard {
    /// The epoch this guard pinned.
    pub fn epoch(&self) -> u64 {
        self.registry.slots[self.slot].epoch.load(Ordering::SeqCst)
    }
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        let slot = &self.registry.slots[self.slot];
        slot.owner.store(0, Ordering::SeqCst);
        slot.epoch.store(IDLE, Ordering::SeqCst);
        self.registry.active_guards.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpinned_registry_is_always_safe() {
        let r = Arc::new(SmrRegistry::new());
        let e = r.retire();
        assert!(r.safe_to_reclaim(e));
        assert_eq!(r.active_guards(), 0);
    }

    #[test]
    fn pinned_guard_blocks_reclaim_until_drop() {
        let r = Arc::new(SmrRegistry::new());
        let g = r.pin();
        assert_eq!(r.active_guards(), 1);
        let e = r.retire();
        // The guard pinned at an epoch <= e, so reclaim must wait...
        assert!(!r.safe_to_reclaim(e));
        drop(g);
        // ...and becomes safe the moment the guard drops.
        assert!(r.safe_to_reclaim(e));
        assert_eq!(r.active_guards(), 0);
    }

    #[test]
    fn guard_pinned_after_retire_does_not_block_it() {
        let r = Arc::new(SmrRegistry::new());
        let e = r.retire();
        let _g = r.pin();
        // Pinned epoch is strictly greater than the retire epoch: this
        // reader can never have resolved the retired slot.
        assert!(r.min_pinned(false) > e);
        assert!(r.safe_to_reclaim(e));
    }

    #[test]
    fn own_guard_blocks_flush_but_not_synchronize() {
        let r = Arc::new(SmrRegistry::new());
        let _g = r.pin();
        let e = r.retire();
        // A flush on this thread must not free what we are reading...
        assert!(!r.safe_to_reclaim(e));
        // ...but a writer grace wait excludes our own guard, so it
        // returns immediately instead of deadlocking.
        assert!(r.safe_excluding_self(e) || r.min_pinned(true) == u64::MAX);
        r.synchronize(e);
    }

    #[test]
    fn epochs_are_monotonic_across_retires() {
        let r = Arc::new(SmrRegistry::new());
        let mut last = 0;
        for _ in 0..100 {
            let e = r.retire();
            assert!(e > last || last == 0);
            last = e;
        }
        assert_eq!(r.current_epoch(), last + 1);
    }

    #[test]
    fn many_guards_on_one_thread_reuse_slots_cleanly() {
        let r = Arc::new(SmrRegistry::new());
        for _ in 0..1000 {
            let g1 = r.pin();
            let g2 = r.pin();
            assert_eq!(r.active_guards(), 2);
            drop(g1);
            drop(g2);
        }
        assert_eq!(r.active_guards(), 0);
        assert_eq!(r.min_pinned(false), u64::MAX);
    }

    #[test]
    fn note_stall_feeds_the_counter() {
        let r = Arc::new(SmrRegistry::new());
        assert_eq!(r.guard_stalls(), 0);
        r.note_stall();
        r.note_stall();
        assert_eq!(r.guard_stalls(), 2);
    }

    #[test]
    fn cross_thread_guard_blocks_and_releases() {
        use std::sync::mpsc;
        let r = Arc::new(SmrRegistry::new());
        let (pinned_tx, pinned_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let r2 = Arc::clone(&r);
        let t = std::thread::spawn(move || {
            let g = r2.pin();
            pinned_tx.send(()).unwrap();
            release_rx.recv().unwrap();
            drop(g);
        });
        pinned_rx.recv().unwrap();
        let e = r.retire();
        // Another thread's guard is *not* excluded.
        assert!(!r.safe_to_reclaim(e));
        assert!(!r.safe_excluding_self(e));
        release_tx.send(()).unwrap();
        r.synchronize(e);
        assert!(r.safe_to_reclaim(e));
        t.join().unwrap();
    }
}
