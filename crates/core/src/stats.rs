//! Allocator-level statistics.

use crate::page::PoolStats;

/// A point-in-time snapshot of one SMA's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SmaStats {
    /// Soft-memory budget currently granted (pages).
    pub budget_pages: usize,
    /// Pages physically held by the process's soft memory (SDS heaps +
    /// process-global free pool).
    pub held_pages: usize,
    /// Idle pages in the process-global free pool (the lock-free frame
    /// depot).
    pub free_pool_pages: usize,
    /// Idle pages held across all per-SDS magazines.
    pub magazine_pages: usize,
    /// Sum of requested lengths of live allocations (bytes).
    pub live_bytes: usize,
    /// Live allocation count across all SDSs.
    pub live_allocs: usize,
    /// Registered SDS count.
    pub sds_count: usize,
    /// Cumulative allocations served.
    pub allocs_total: u64,
    /// Cumulative frees (application frees + reclaimed allocations).
    pub frees_total: u64,
    /// Reclamation demands served.
    pub reclaims_total: u64,
    /// Pages yielded to reclamation demands (slack + physical).
    pub pages_reclaimed_total: u64,
    /// Budget pages received from the budget source (daemon).
    pub budget_granted_total: u64,
    /// Magazine refill operations (fast-path pulls from the depot).
    /// Survives SDS destruction, unlike the per-SDS counters.
    pub magazine_refills_total: u64,
    /// Pages stolen back from magazines by reclamation. Survives SDS
    /// destruction, unlike the per-SDS counters.
    pub magazine_steal_backs_total: u64,
    /// Pages parked on the SMR limbo list: detached from their SDS
    /// heap but not yet recyclable because a read guard pinned at or
    /// before their retirement is still active. Counted in
    /// `held_pages` (the process still holds them) and *not* in
    /// `free_pool_pages`.
    pub smr_limbo_pages: usize,
    /// Times a writer or reclamation pass had to wait out (or defer
    /// around) an active read guard.
    pub smr_guard_stalls_total: u64,
    /// Page-pool accounting (OS interface).
    pub pool: PoolStats,
}

impl SmaStats {
    /// Budget pages not yet backed by held pages (headroom before the
    /// next daemon request).
    pub fn slack_pages(&self) -> usize {
        self.budget_pages.saturating_sub(self.held_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_is_saturating() {
        let mut s = SmaStats {
            budget_pages: 10,
            held_pages: 4,
            ..SmaStats::default()
        };
        assert_eq!(s.slack_pages(), 6);
        s.held_pages = 12;
        assert_eq!(s.slack_pages(), 0);
    }
}
