//! Configuration knobs for the Soft Memory Allocator.

use std::sync::Arc;

use crate::page::MachineMemory;

/// Configuration for an [`crate::Sma`] instance.
///
/// The defaults mirror the prototype described in §4 of the paper; the
/// knobs exist so that the ablation benches can vary individual design
/// decisions (free-pool retention, auto-grow chunking, self-reclaim).
#[derive(Clone)]
pub struct SmaConfig {
    /// Soft-memory budget (in pages) granted at startup, before any daemon
    /// interaction. The daemon later grows/shrinks the live budget.
    pub initial_budget_pages: usize,
    /// How many wholly-free pages the process-global free pool may retain
    /// before surplus frames are released back to the OS.
    ///
    /// §4: "Each SDS ... periodically transfers free pages back to the
    /// global free pool of transferable, on-demand soft memory." Retained
    /// pages make re-allocation cheap; surplus is given back.
    pub free_pool_retain_pages: usize,
    /// Capacity of each SDS's page *magazine*: the small per-SDS stash
    /// of wholly-free pages an SDS keeps for lock-free re-allocation
    /// before overflowing frames to the process-global depot.
    ///
    /// (Before the magazine refactor this was the count of wholly-free
    /// pages a heap kept *attached*; the accounting is unchanged — the
    /// pages still count against `held_pages` — only their parking spot
    /// moved from the heap's page table to the magazine.)
    pub sds_retain_pages: usize,
    /// Pages requested from the daemon per budget-growth round when an
    /// allocation hits [`crate::SoftError::BudgetExceeded`] and a
    /// [`crate::BudgetSource`] is attached. Growth is chunked so daemon
    /// communication amortises over many allocations (§5, case 2).
    pub auto_grow_chunk_pages: usize,
    /// Budget floor (in pages) the process voluntarily shrinks toward
    /// while its daemon connection is down (fail-local degraded mode).
    ///
    /// An orphaned process cannot be reached by reclamation demands, so
    /// holding slack would silently starve the rest of the machine. The
    /// degraded-mode heartbeat sheds slack until the budget reaches
    /// `max(held_pages, orphan_budget_pages)`; held pages are never
    /// revoked locally.
    pub orphan_budget_pages: usize,
    /// Shared machine-wide physical capacity model. SMAs on the same
    /// simulated machine share one instance.
    pub machine: Arc<MachineMemory>,
}

impl SmaConfig {
    /// A configuration backed by the given machine model with an initial
    /// budget of `budget_pages`.
    pub fn new(machine: Arc<MachineMemory>, budget_pages: usize) -> Self {
        SmaConfig {
            initial_budget_pages: budget_pages,
            free_pool_retain_pages: 64,
            sds_retain_pages: 4,
            auto_grow_chunk_pages: 256,
            orphan_budget_pages: 16,
            machine,
        }
    }

    /// A standalone configuration for unit tests: a private machine with
    /// ample capacity and the given initial budget.
    pub fn for_testing(budget_pages: usize) -> Self {
        SmaConfig::new(MachineMemory::unbounded(), budget_pages)
    }

    /// Sets the free-pool retention watermark.
    pub fn free_pool_retain(mut self, pages: usize) -> Self {
        self.free_pool_retain_pages = pages;
        self
    }

    /// Sets the per-SDS magazine capacity (free-page retention).
    pub fn sds_retain(mut self, pages: usize) -> Self {
        self.sds_retain_pages = pages;
        self
    }

    /// Sets the budget auto-growth chunk.
    pub fn auto_grow_chunk(mut self, pages: usize) -> Self {
        self.auto_grow_chunk_pages = pages.max(1);
        self
    }

    /// Sets the degraded-mode budget floor (see
    /// [`SmaConfig::orphan_budget_pages`]).
    pub fn orphan_budget(mut self, pages: usize) -> Self {
        self.orphan_budget_pages = pages;
        self
    }
}

impl std::fmt::Debug for SmaConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmaConfig")
            .field("initial_budget_pages", &self.initial_budget_pages)
            .field("free_pool_retain_pages", &self.free_pool_retain_pages)
            .field("sds_retain_pages", &self.sds_retain_pages)
            .field("auto_grow_chunk_pages", &self.auto_grow_chunk_pages)
            .field("orphan_budget_pages", &self.orphan_budget_pages)
            .field("machine_capacity_pages", &self.machine.capacity_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = SmaConfig::for_testing(100)
            .free_pool_retain(8)
            .sds_retain(2)
            .auto_grow_chunk(32)
            .orphan_budget(4);
        assert_eq!(cfg.initial_budget_pages, 100);
        assert_eq!(cfg.free_pool_retain_pages, 8);
        assert_eq!(cfg.sds_retain_pages, 2);
        assert_eq!(cfg.auto_grow_chunk_pages, 32);
        assert_eq!(cfg.orphan_budget_pages, 4);
    }

    #[test]
    fn auto_grow_chunk_is_nonzero() {
        let cfg = SmaConfig::for_testing(1).auto_grow_chunk(0);
        assert_eq!(cfg.auto_grow_chunk_pages, 1);
    }
}
