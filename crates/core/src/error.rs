//! Error types shared across the soft-memory stack.

use crate::handle::SdsId;

/// Convenience alias for results returned by soft-memory operations.
pub type SoftResult<T> = Result<T, SoftError>;

/// Errors produced by the soft-memory allocator and its clients.
///
/// Soft memory is *revocable*, so unlike a conventional allocator the error
/// surface includes conditions like [`SoftError::Revoked`] (an allocation
/// was reclaimed underneath a handle) and [`SoftError::BudgetExceeded`]
/// (the process must ask the machine-wide daemon for more budget).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoftError {
    /// The process's soft-memory budget cannot cover the request.
    ///
    /// Callers typically react by requesting additional budget from the
    /// Soft Memory Daemon (the SMA does this automatically when a
    /// [`crate::BudgetSource`] is attached) and retrying.
    BudgetExceeded {
        /// Pages the operation needed to acquire.
        requested_pages: usize,
        /// Pages still available under the current budget.
        available_pages: usize,
    },
    /// The machine's physical memory is exhausted.
    ///
    /// This models a `mmap`/`sbrk` failure: the budget allowed the growth
    /// but no physical pages exist. The daemon escapes this state by
    /// reclaiming soft memory from other processes.
    MachineFull {
        /// Pages the operation attempted to reserve.
        requested_pages: usize,
    },
    /// The allocation behind a handle was reclaimed; the handle is stale.
    ///
    /// This is the *safe* manifestation of the paper's "all pointers into a
    /// reclaimed allocation become invalid" problem: generation checking
    /// turns a dangling access into this error instead of undefined
    /// behaviour.
    Revoked,
    /// The handle does not refer to a live allocation in this SMA:
    /// fabricated coordinates (wrong SDS, out-of-range page, kind
    /// mismatch) — or a *stale* handle whose page has since been
    /// re-formatted for another size class (where [`SoftError::Revoked`]
    /// can no longer be distinguished). Both cases are safe failures;
    /// callers should treat `Revoked` and `InvalidHandle` alike when
    /// probing old handles.
    InvalidHandle,
    /// The allocation was reclaimed or freed *while* an optimistic
    /// (lock-free) read was in flight.
    ///
    /// Unlike [`SoftError::Revoked`] — the handle was already stale when
    /// the access began — `Reclaimed` means the access started against a
    /// live allocation and lost a race with reclamation: the epoch or
    /// generation check after the optimistic copy failed. Callers treat
    /// it like a miss (the paper's "client re-fetches" path); retrying
    /// the access returns `Revoked` from then on.
    Reclaimed,
    /// No SDS with this id is registered.
    UnknownSds(SdsId),
    /// The requested allocation exceeds the maximum supported size.
    AllocTooLarge {
        /// Requested size in bytes.
        requested: usize,
        /// Largest supported allocation in bytes.
        max: usize,
    },
    /// A reclamation demand could not be fully satisfied.
    ReclaimShortfall {
        /// Pages demanded.
        requested_pages: usize,
        /// Pages actually reclaimed.
        reclaimed_pages: usize,
    },
    /// The Soft Memory Daemon denied a budget request.
    Denied {
        /// Human-readable reason recorded by the daemon.
        reason: DenyReason,
    },
    /// The daemon connection is gone (shut down or never attached).
    DaemonUnavailable,
    /// The process is not registered with the daemon.
    UnknownProcess(u64),
}

/// Why the Soft Memory Daemon denied a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyReason {
    /// Machine-wide reclamation could not free enough pages within the
    /// target cap (the paper's "denies the soft memory request that
    /// triggered the reclamation").
    ReclaimShortfall,
    /// The request exceeded the per-process budget cap configured on the
    /// daemon.
    PerProcessCap,
    /// The daemon is shutting down.
    ShuttingDown,
    /// The request carried an epoch from a previous daemon incarnation.
    ///
    /// The daemon restarted since the grant was issued; the client must
    /// reconnect and reconcile its holdings before the new daemon will
    /// serve it. Clients treat this deny as a connection failure, not a
    /// policy decision.
    StaleEpoch,
    /// The process is operating in fail-local degraded mode: the daemon
    /// connection is down, so budget growth is locally refused while the
    /// allocator keeps serving from its existing budget and free pool.
    ///
    /// Unlike [`crate::SoftError::DaemonUnavailable`] this is a *transient,
    /// supervised* state — a reconnect supervisor is retrying in the
    /// background and in-budget operations continue to succeed.
    Degraded,
    /// A testing hook forcibly denied the request (fault injection).
    Injected,
}

impl core::fmt::Display for DenyReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DenyReason::ReclaimShortfall => {
                write!(f, "machine-wide reclamation fell short of the request")
            }
            DenyReason::PerProcessCap => write!(f, "per-process soft budget cap reached"),
            DenyReason::ShuttingDown => write!(f, "daemon is shutting down"),
            DenyReason::StaleEpoch => {
                write!(f, "request carried a stale daemon epoch (daemon restarted)")
            }
            DenyReason::Degraded => write!(
                f,
                "daemon connection down; serving locally in degraded mode"
            ),
            DenyReason::Injected => write!(f, "denied by an injected fault"),
        }
    }
}

impl core::fmt::Display for SoftError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SoftError::BudgetExceeded {
                requested_pages,
                available_pages,
            } => write!(
                f,
                "soft budget exceeded: requested {requested_pages} page(s), \
                 {available_pages} available"
            ),
            SoftError::MachineFull { requested_pages } => {
                write!(
                    f,
                    "machine out of physical memory ({requested_pages} page(s) requested)"
                )
            }
            SoftError::Revoked => write!(f, "allocation was reclaimed; handle is stale"),
            SoftError::InvalidHandle => write!(f, "handle does not refer to a live allocation"),
            SoftError::Reclaimed => {
                write!(f, "allocation was reclaimed during an in-flight access")
            }
            SoftError::UnknownSds(id) => write!(f, "no registered SDS with id {id:?}"),
            SoftError::AllocTooLarge { requested, max } => {
                write!(f, "allocation of {requested} bytes exceeds maximum {max}")
            }
            SoftError::ReclaimShortfall {
                requested_pages,
                reclaimed_pages,
            } => write!(
                f,
                "reclamation shortfall: demanded {requested_pages} page(s), \
                 reclaimed {reclaimed_pages}"
            ),
            SoftError::Denied { reason } => write!(f, "request denied: {reason}"),
            SoftError::DaemonUnavailable => write!(f, "soft memory daemon unavailable"),
            SoftError::UnknownProcess(pid) => write!(f, "process {pid} not registered"),
        }
    }
}

impl std::error::Error for SoftError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = SoftError::BudgetExceeded {
            requested_pages: 3,
            available_pages: 1,
        };
        let msg = err.to_string();
        assert!(msg.contains('3') && msg.contains('1'), "{msg}");

        assert!(SoftError::Revoked.to_string().contains("reclaimed"));
        assert!(SoftError::Reclaimed.to_string().contains("in-flight"));
        assert!(SoftError::Denied {
            reason: DenyReason::ReclaimShortfall
        }
        .to_string()
        .contains("fell short"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SoftError::Revoked, SoftError::Revoked);
        assert_ne!(
            SoftError::Revoked,
            SoftError::MachineFull { requested_pages: 1 }
        );
    }
}
