//! The lock-free global frame depot — the process-wide free pool the
//! SMA fast path refills per-SDS magazines from.
//!
//! Before the magazine refactor the free pool was a `Vec<PageFrame>`
//! inside the `SmaInner` mutex, so *every* page hand-off serialised on
//! the allocator lock. The depot replaces it with a fixed array of
//! atomic slots: a push CAS-installs a frame into an empty slot, a pop
//! swaps one out. Each slot transitions only `empty → frame → empty`
//! with value-carrying CAS/swap, so the classic Treiber-stack ABA
//! problem cannot arise — a slot never holds a pointer that is
//! simultaneously owned by someone else, because frames are unique
//! leases and the encoded word is the lease itself.
//!
//! Capacity is the configured free-pool retention watermark: a push
//! that finds every slot occupied hands the frame back to the caller,
//! which releases it to the OS under the slow-path lock — exactly the
//! old retention-overflow behaviour, minus the lock on the hit path.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};

use super::frame::PageFrame;
use super::PAGE_SIZE;

/// Slot value meaning "empty".
const EMPTY: usize = 0;

/// Tag bit carrying [`PageFrame`]'s `owned` flag. Page pointers are
/// `PAGE_SIZE`-aligned, so the low bits are guaranteed free.
const OWNED_BIT: usize = 1;

fn encode(frame: PageFrame) -> usize {
    let (ptr, owned) = frame.into_raw_parts();
    let addr = ptr.as_ptr() as usize;
    debug_assert_eq!(addr % PAGE_SIZE, 0, "page pointers are page-aligned");
    addr | if owned { OWNED_BIT } else { 0 }
}

/// # Safety
///
/// `word` must be a non-`EMPTY` value produced by [`encode`] whose frame
/// has not been decoded yet (decoding transfers the unique lease).
unsafe fn decode(word: usize) -> PageFrame {
    let ptr = NonNull::new((word & !OWNED_BIT) as *mut u8).expect("encoded frames are non-null");
    // SAFETY: per the caller contract, `word` came from exactly one
    // `encode` whose frame ownership we now take back.
    unsafe { PageFrame::from_raw_parts(ptr, word & OWNED_BIT != 0) }
}

/// A bounded, lock-free pool of idle page frames.
pub(crate) struct FrameDepot {
    slots: Box<[AtomicUsize]>,
    /// Occupied-slot count, maintained with `fetch_add`/`fetch_sub`
    /// *after* each successful slot transition. Exact whenever the depot
    /// is quiescent; transiently behind by in-flight operations.
    len: AtomicUsize,
    /// Rotating scan hint so concurrent pushers/poppers spread across
    /// the slot array instead of all fighting over slot 0.
    hint: AtomicUsize,
}

impl FrameDepot {
    /// A depot holding at most `capacity` frames.
    pub(crate) fn new(capacity: usize) -> Self {
        FrameDepot {
            slots: (0..capacity).map(|_| AtomicUsize::new(EMPTY)).collect(),
            len: AtomicUsize::new(0),
            hint: AtomicUsize::new(0),
        }
    }

    /// Current occupancy (exact at quiescent points).
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Deposits `frame`, or returns it if every slot is occupied (the
    /// caller then releases it to the OS).
    pub(crate) fn push(&self, frame: PageFrame) -> Result<(), PageFrame> {
        if self.slots.is_empty() {
            return Err(frame);
        }
        let word = encode(frame);
        let start = self.hint.fetch_add(1, Ordering::Relaxed);
        for i in 0..self.slots.len() {
            let slot = &self.slots[(start + i) % self.slots.len()];
            if slot.load(Ordering::Relaxed) != EMPTY {
                continue;
            }
            // Release pairs with the Acquire swap in `pop`: a popper that
            // sees the word also sees every prior write to the page.
            if slot
                .compare_exchange(EMPTY, word, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                self.len.fetch_add(1, Ordering::Release);
                return Ok(());
            }
        }
        // SAFETY: `word` was encoded above and no slot accepted it, so
        // this is its only decoding.
        Err(unsafe { decode(word) })
    }

    /// Withdraws one frame, if any slot holds one.
    pub(crate) fn pop(&self) -> Option<PageFrame> {
        if self.slots.is_empty() || self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let start = self.hint.fetch_add(1, Ordering::Relaxed);
        for i in 0..self.slots.len() {
            let slot = &self.slots[(start + i) % self.slots.len()];
            if slot.load(Ordering::Relaxed) == EMPTY {
                continue;
            }
            let word = slot.swap(EMPTY, Ordering::Acquire);
            if word != EMPTY {
                self.len.fetch_sub(1, Ordering::Release);
                // SAFETY: the swap took the word out of the slot, making
                // this its only decoding.
                return Some(unsafe { decode(word) });
            }
        }
        None
    }
}

impl Drop for FrameDepot {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let word = std::mem::replace(slot.get_mut(), EMPTY);
            if word != EMPTY {
                // SAFETY: `&mut self` excludes concurrent access; each
                // occupied word is decoded exactly once.
                drop(unsafe { decode(word) });
            }
        }
    }
}

impl std::fmt::Debug for FrameDepot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameDepot")
            .field("capacity", &self.slots.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let depot = FrameDepot::new(4);
        let frame = PageFrame::new_zeroed();
        let addr = frame.as_ptr() as usize;
        depot.push(frame).unwrap();
        assert_eq!(depot.len(), 1);
        let back = depot.pop().unwrap();
        assert_eq!(back.as_ptr() as usize, addr);
        assert_eq!(depot.len(), 0);
        assert!(depot.pop().is_none());
    }

    #[test]
    fn overflow_returns_the_frame() {
        let depot = FrameDepot::new(2);
        depot.push(PageFrame::new_zeroed()).unwrap();
        depot.push(PageFrame::new_zeroed()).unwrap();
        assert!(depot.push(PageFrame::new_zeroed()).is_err());
        assert_eq!(depot.len(), 2);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let depot = FrameDepot::new(0);
        assert!(depot.push(PageFrame::new_zeroed()).is_err());
        assert!(depot.pop().is_none());
    }

    #[test]
    fn drop_frees_occupied_slots() {
        // Owned frames would leak (and Miri/asan would notice) if Drop
        // failed to decode them.
        let depot = FrameDepot::new(8);
        for _ in 0..5 {
            depot.push(PageFrame::new_zeroed()).unwrap();
        }
        drop(depot);
    }

    #[test]
    fn concurrent_push_pop_conserves_frames() {
        use std::sync::Arc;
        let depot = Arc::new(FrameDepot::new(64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let depot = Arc::clone(&depot);
            handles.push(std::thread::spawn(move || {
                let mut held = Vec::new();
                let mut overflowed = 0usize;
                for round in 0..200 {
                    if round % 3 == 0 {
                        if let Some(f) = depot.pop() {
                            held.push(f);
                        }
                    } else if let Err(f) = depot.push(PageFrame::new_zeroed()) {
                        drop(f);
                        overflowed += 1;
                    }
                    if held.len() > 8 {
                        for f in held.drain(..) {
                            if let Err(f) = depot.push(f) {
                                drop(f);
                                overflowed += 1;
                            }
                        }
                    }
                }
                (held.len(), overflowed)
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // At quiescence `len` equals the occupied-slot count exactly:
        // drain everything and both must hit zero together.
        let mut drained = 0usize;
        while let Some(f) = depot.pop() {
            drop(f);
            drained += 1;
        }
        assert_eq!(depot.len(), 0);
        assert!(drained <= 64);
    }
}
