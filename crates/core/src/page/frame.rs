//! Owned, page-aligned blocks of raw memory.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

use super::PAGE_SIZE;

/// Layout of a single 4 KiB page, aligned to its own size.
fn page_layout() -> Layout {
    // SAFETY-ADJACENT: PAGE_SIZE is a power of two and non-zero, so this
    // layout is always valid; `expect` documents the invariant.
    Layout::from_size_align(PAGE_SIZE, PAGE_SIZE).expect("PAGE_SIZE layout is valid")
}

/// Layout of a contiguous span of `pages` pages.
fn span_layout(pages: usize) -> Layout {
    Layout::from_size_align(pages * PAGE_SIZE, PAGE_SIZE).expect("span layout is valid")
}

/// An exclusively-held, zero-initialised, 4 KiB-aligned page of memory.
///
/// `PageFrame` is the unit of transfer between the OS (modelled by the
/// page pool's arenas), the process-global free pool, and SDS heaps.
///
/// Frames come in two flavours:
///
/// * **owned** (via [`PageFrame::new_zeroed`]) — backed by its own
///   allocation, freed on drop; used by unit tests and standalone
///   slab pages.
/// * **arena** (via the page pool's internal `from_arena`) — a lease
///   on one page
///   of a [`super::PagePool`] arena. The pool's arena owns the memory;
///   the frame grants exclusive access while it exists, and "releasing
///   it to the OS" returns the lease to the pool (the `madvise`-style
///   model real allocators use — virtual pages are retained and
///   re-backed later, exactly the paper's §4 mechanism).
pub struct PageFrame {
    ptr: NonNull<u8>,
    owned: bool,
}

// SAFETY: A `PageFrame` holds exclusive access to its page (unique
// lease or unique ownership) and no thread-affine state, so
// transferring it between threads is sound.
unsafe impl Send for PageFrame {}

impl PageFrame {
    /// Allocates a fresh zeroed, self-owned page from the OS.
    ///
    /// Aborts on allocation failure, like the rest of the Rust allocation
    /// machinery (a real machine-full condition is modelled by
    /// [`super::MachineMemory`], not by exhausting the host allocator).
    pub fn new_zeroed() -> Self {
        let layout = page_layout();
        // SAFETY: `layout` has non-zero size.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        PageFrame { ptr, owned: true }
    }

    /// Wraps one page of a pool arena.
    ///
    /// # Safety
    ///
    /// `ptr` must point to a `PAGE_SIZE`-byte, page-aligned region that
    /// stays live for the frame's lifetime (the pool's arenas are never
    /// freed while the pool exists), and no other `PageFrame` may alias
    /// it until this frame is returned to the pool.
    pub(crate) unsafe fn from_arena(ptr: NonNull<u8>) -> Self {
        PageFrame { ptr, owned: false }
    }

    /// Dissolves an arena frame back into its page pointer (`None` for
    /// owned frames, which keep ownership semantics).
    pub(crate) fn into_arena_ptr(self) -> Option<NonNull<u8>> {
        if self.owned {
            None
        } else {
            let ptr = self.ptr;
            std::mem::forget(self);
            Some(ptr)
        }
    }

    /// Decomposes the frame into `(page pointer, owned)` without running
    /// its destructor — the encoding used by the lock-free
    /// [`super::FrameDepot`], which packs both into one atomic word.
    pub(crate) fn into_raw_parts(self) -> (NonNull<u8>, bool) {
        let parts = (self.ptr, self.owned);
        std::mem::forget(self);
        parts
    }

    /// Reassembles a frame from [`PageFrame::into_raw_parts`] output.
    ///
    /// # Safety
    ///
    /// `ptr` and `owned` must come from exactly one `into_raw_parts`
    /// call whose frame has not been reassembled yet (unique ownership
    /// transfers back to the new frame).
    pub(crate) unsafe fn from_raw_parts(ptr: NonNull<u8>, owned: bool) -> Self {
        PageFrame { ptr, owned }
    }

    /// Base pointer of the page.
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// Zeroes the page content (used when recycling a frame between SDSs
    /// so no data leaks across soft data structures).
    pub fn zero(&mut self) {
        // SAFETY: `self.ptr` points to a live page of exactly PAGE_SIZE
        // bytes to which we hold exclusive access.
        unsafe { std::ptr::write_bytes(self.ptr.as_ptr(), 0, PAGE_SIZE) }
    }
}

impl Drop for PageFrame {
    fn drop(&mut self) {
        if self.owned {
            // SAFETY: `self.ptr` was produced by `alloc_zeroed` with the
            // same layout and has not been freed (unique ownership).
            unsafe { dealloc(self.ptr.as_ptr(), page_layout()) }
        }
        // Arena frames: the memory belongs to the pool's arena. A frame
        // dropped outside the pool (process teardown paths) just ends
        // the lease; the page is recovered when the pool goes away.
    }
}

impl std::fmt::Debug for PageFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageFrame").field("ptr", &self.ptr).finish()
    }
}

/// An owned, contiguous, page-aligned span of `pages` pages.
///
/// Spans back allocations larger than one page (and `SoftArray`-style
/// single-block data structures). Unlike slab pages, a span is freed as a
/// unit — matching the paper's observation that "an array is a single,
/// contiguous memory block" that gives up all of its memory at once.
pub struct Span {
    ptr: NonNull<u8>,
    pages: usize,
}

// SAFETY: A `Span` uniquely owns its allocation; see `PageFrame`.
unsafe impl Send for Span {}

impl Span {
    /// Allocates a zeroed span of `pages` contiguous pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0`.
    pub fn new_zeroed(pages: usize) -> Self {
        assert!(pages > 0, "span must cover at least one page");
        let layout = span_layout(pages);
        // SAFETY: `layout` has non-zero size.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        Span { ptr, pages }
    }

    /// Base pointer of the span.
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// Number of pages covered.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Span size in bytes.
    pub fn len(&self) -> usize {
        self.pages * PAGE_SIZE
    }

    /// Whether the span is empty (never true; spans cover ≥ 1 page).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        // SAFETY: `self.ptr` was produced by `alloc_zeroed` with the same
        // layout (same page count) and has not been freed.
        unsafe { dealloc(self.ptr.as_ptr(), span_layout(self.pages)) }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("ptr", &self.ptr)
            .field("pages", &self.pages)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_is_aligned_and_zeroed() {
        let frame = PageFrame::new_zeroed();
        assert_eq!(frame.as_ptr() as usize % PAGE_SIZE, 0);
        // SAFETY: the frame owns PAGE_SIZE readable bytes.
        let bytes = unsafe { std::slice::from_raw_parts(frame.as_ptr(), PAGE_SIZE) };
        assert!(bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn frame_zero_clears_writes() {
        let mut frame = PageFrame::new_zeroed();
        // SAFETY: in-bounds write to owned memory.
        unsafe { *frame.as_ptr() = 0xAB };
        frame.zero();
        // SAFETY: in-bounds read of owned memory.
        assert_eq!(unsafe { *frame.as_ptr() }, 0);
    }

    #[test]
    fn span_geometry() {
        let span = Span::new_zeroed(3);
        assert_eq!(span.pages(), 3);
        assert_eq!(span.len(), 3 * PAGE_SIZE);
        assert_eq!(span.as_ptr() as usize % PAGE_SIZE, 0);
        assert!(!span.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_page_span_panics() {
        let _ = Span::new_zeroed(0);
    }

    #[test]
    fn frames_move_across_threads() {
        let frame = PageFrame::new_zeroed();
        let handle = std::thread::spawn(move || frame.as_ptr() as usize % PAGE_SIZE);
        assert_eq!(handle.join().unwrap(), 0);
    }
}
