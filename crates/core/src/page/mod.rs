//! The primary-storage substrate: page frames, the machine-wide physical
//! capacity model, and the per-process page pool.
//!
//! The paper's prototype obtains memory from the OS and "releases pages
//! back to the operating system upon a reclamation demand, tracking the
//! released virtual pages to re-back them with physical pages before
//! extending the heap" (§4). This module reproduces that structure in a
//! portable way: [`PageFrame`]s are real 4 KiB aligned allocations,
//! [`MachineMemory`] stands in for the machine's finite physical memory
//! (shared by every simulated process on the machine), and [`PagePool`]
//! is the per-process interface that acquires, caches, releases, and
//! re-backs pages.

mod depot;
mod frame;
mod machine;
mod pool;

pub(crate) use depot::FrameDepot;
pub use frame::{PageFrame, Span};
pub use machine::{MachineMemory, MachineStats};
pub use pool::{PagePool, PoolStats};

/// Size of one memory page in bytes. Matches the ubiquitous 4 KiB page of
/// x86-64 and the paper's examples ("two 2 KB list elements fit in a 4 KB
/// page").
pub const PAGE_SIZE: usize = 4096;
