//! The machine-wide physical memory model.
//!
//! On a real deployment the OS enforces physical memory limits; in this
//! reproduction a [`MachineMemory`] instance plays that role for every
//! simulated process sharing a "machine". All page acquisitions reserve
//! capacity here first, so machine-level pressure (the trigger for the
//! entire soft-memory mechanism) is observable and deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::{SoftError, SoftResult};

/// Shared, thread-safe model of a machine's physical memory.
#[derive(Debug)]
pub struct MachineMemory {
    /// Total physical pages on the machine.
    capacity_pages: usize,
    /// Pages currently reserved (soft + traditional).
    used_pages: AtomicUsize,
    /// Pages reserved as *traditional* (non-soft) memory; a subset of
    /// `used_pages`, reported by the simulation layer.
    traditional_pages: AtomicUsize,
    /// High-watermark of `used_pages` (for reports).
    peak_pages: AtomicUsize,
}

/// A point-in-time snapshot of machine memory accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineStats {
    /// Total physical pages.
    pub capacity_pages: usize,
    /// Pages currently reserved.
    pub used_pages: usize,
    /// Pages reserved as traditional memory.
    pub traditional_pages: usize,
    /// Highest observed usage.
    pub peak_pages: usize,
}

impl MachineStats {
    /// Pages still free on the machine.
    pub fn free_pages(&self) -> usize {
        self.capacity_pages.saturating_sub(self.used_pages)
    }

    /// Utilisation in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        if self.capacity_pages == 0 {
            0.0
        } else {
            self.used_pages as f64 / self.capacity_pages as f64
        }
    }
}

impl MachineMemory {
    /// A machine with `capacity_pages` physical pages.
    pub fn new(capacity_pages: usize) -> Arc<Self> {
        Arc::new(MachineMemory {
            capacity_pages,
            used_pages: AtomicUsize::new(0),
            traditional_pages: AtomicUsize::new(0),
            peak_pages: AtomicUsize::new(0),
        })
    }

    /// A machine with `capacity_bytes` of physical memory (rounded down to
    /// whole pages).
    pub fn with_bytes(capacity_bytes: usize) -> Arc<Self> {
        Self::new(capacity_bytes / super::PAGE_SIZE)
    }

    /// An effectively unbounded machine, for unit tests that are not about
    /// machine pressure.
    pub fn unbounded() -> Arc<Self> {
        Self::new(usize::MAX / 2)
    }

    /// Total physical pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Attempts to reserve `pages` physical pages.
    ///
    /// Fails with [`SoftError::MachineFull`] (reserving nothing) if the
    /// machine lacks capacity — the condition that, in a deployment,
    /// triggers OOM kills and that soft memory exists to defuse.
    pub fn reserve(&self, pages: usize) -> SoftResult<()> {
        let mut current = self.used_pages.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(pages);
            if next > self.capacity_pages {
                return Err(SoftError::MachineFull {
                    requested_pages: pages,
                });
            }
            match self.used_pages.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak_pages.fetch_max(next, Ordering::Relaxed);
                    return Ok(());
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Releases `pages` previously reserved pages.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if more pages are released than were
    /// reserved — an accounting bug in the caller.
    pub fn release(&self, pages: usize) {
        let prev = self.used_pages.fetch_sub(pages, Ordering::AcqRel);
        debug_assert!(prev >= pages, "machine page accounting underflow");
    }

    /// Reserves `pages` as traditional (non-soft) memory.
    ///
    /// Used by the simulation layer to model the non-revocable footprint
    /// of processes; feeds the daemon's reclamation-weight policies.
    pub fn reserve_traditional(&self, pages: usize) -> SoftResult<()> {
        self.reserve(pages)?;
        self.traditional_pages.fetch_add(pages, Ordering::AcqRel);
        Ok(())
    }

    /// Releases `pages` of traditional memory.
    pub fn release_traditional(&self, pages: usize) {
        let prev = self.traditional_pages.fetch_sub(pages, Ordering::AcqRel);
        debug_assert!(prev >= pages, "traditional page accounting underflow");
        self.release(pages);
    }

    /// Pages currently free.
    pub fn free_pages(&self) -> usize {
        self.capacity_pages
            .saturating_sub(self.used_pages.load(Ordering::Acquire))
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            capacity_pages: self.capacity_pages,
            used_pages: self.used_pages.load(Ordering::Acquire),
            traditional_pages: self.traditional_pages.load(Ordering::Acquire),
            peak_pages: self.peak_pages.load(Ordering::Acquire),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let m = MachineMemory::new(10);
        m.reserve(4).unwrap();
        m.reserve(6).unwrap();
        assert_eq!(m.free_pages(), 0);
        assert_eq!(
            m.reserve(1),
            Err(SoftError::MachineFull { requested_pages: 1 })
        );
        m.release(5);
        assert_eq!(m.free_pages(), 5);
        m.reserve(5).unwrap();
    }

    #[test]
    fn failed_reserve_reserves_nothing() {
        let m = MachineMemory::new(3);
        m.reserve(2).unwrap();
        assert!(m.reserve(2).is_err());
        assert_eq!(m.stats().used_pages, 2);
    }

    #[test]
    fn traditional_accounting() {
        let m = MachineMemory::new(100);
        m.reserve_traditional(30).unwrap();
        m.reserve(20).unwrap();
        let s = m.stats();
        assert_eq!(s.used_pages, 50);
        assert_eq!(s.traditional_pages, 30);
        m.release_traditional(30);
        assert_eq!(m.stats().used_pages, 20);
        assert_eq!(m.stats().traditional_pages, 0);
    }

    #[test]
    fn peak_tracks_high_watermark() {
        let m = MachineMemory::new(100);
        m.reserve(60).unwrap();
        m.release(50);
        m.reserve(10).unwrap();
        let s = m.stats();
        assert_eq!(s.peak_pages, 60);
        assert_eq!(s.used_pages, 20);
        assert!((s.utilisation() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn concurrent_reservations_never_oversubscribe() {
        let m = MachineMemory::new(1000);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut held = 0usize;
                for _ in 0..1000 {
                    if m.reserve(1).is_ok() {
                        held += 1;
                    }
                }
                held
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total <= 1000);
        assert_eq!(m.stats().used_pages, total);
    }
}
