//! The per-process page pool: the SMA's interface to "the OS".
//!
//! The pool mediates every frame and span acquisition against the shared
//! [`MachineMemory`] capacity model, caches a bounded number of free
//! frames for cheap re-allocation, and reproduces the §4 mechanism of the
//! paper's prototype: pages released to the OS during reclamation are
//! tracked as *unbacked virtual pages* and re-backed with physical pages
//! before the heap is extended again.
//!
//! Frames are carved from multi-page **arenas** (like any production
//! allocator): "releasing a page to the OS" returns its physical claim
//! to the machine model and marks the virtual page unbacked — the
//! `madvise(DONTNEED)` model — while the arena's virtual range stays
//! mapped, ready to be re-backed. This keeps steady-state frame churn
//! at memset cost instead of an mmap round-trip per page.

use std::ptr::NonNull;
use std::sync::Arc;

use super::{MachineMemory, PageFrame, Span, PAGE_SIZE};
use crate::error::SoftResult;

/// Pages per arena (256 KiB growth granule).
const ARENA_PAGES: usize = 64;

/// Per-process page pool.
///
/// Not internally synchronised; the owning [`crate::Sma`] serialises
/// access.
#[derive(Debug)]
pub struct PagePool {
    machine: Arc<MachineMemory>,
    /// Cached free frames, still counted against the machine (backed).
    cached: Vec<PageFrame>,
    /// Maximum frames to keep in `cached`; surplus goes back to the OS.
    retain: usize,
    /// Arena blocks owning the frames' memory. Never freed while the
    /// pool lives (outstanding frames lease pages out of them).
    arenas: Vec<Span>,
    /// Arena pages never leased yet (still calloc-zeroed).
    fresh: Vec<NonNull<u8>>,
    /// Arena pages returned to the OS (unbacked virtual pages awaiting
    /// re-backing; content is stale and re-zeroed on lease).
    dirty: Vec<NonNull<u8>>,
    /// Virtual pages currently released to the OS (§4 accounting;
    /// includes span pages, whose memory really is unmapped).
    unbacked_virtual: usize,
    /// Cumulative counters for stats.
    acquired_total: u64,
    released_total: u64,
    rebacked_total: u64,
}

// SAFETY: the raw arena-page pointers in `fresh`/`dirty` are exclusive
// leases into `arenas`, which the pool owns; no aliasing or
// thread-affinity is involved, so moving the pool between threads is
// sound.
unsafe impl Send for PagePool {}

/// Snapshot of pool accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Frames currently cached (backed, idle).
    pub cached_pages: usize,
    /// Virtual pages currently released to the OS awaiting re-backing.
    pub unbacked_virtual_pages: usize,
    /// Pages ever acquired from the machine.
    pub acquired_total: u64,
    /// Pages ever released back to the machine.
    pub released_total: u64,
    /// Pages re-backed after having been released (§4 path).
    pub rebacked_total: u64,
}

impl PagePool {
    /// A pool drawing from `machine`, caching at most `retain` free
    /// frames.
    pub fn new(machine: Arc<MachineMemory>, retain: usize) -> Self {
        PagePool {
            machine,
            cached: Vec::new(),
            retain,
            arenas: Vec::new(),
            fresh: Vec::new(),
            dirty: Vec::new(),
            unbacked_virtual: 0,
            acquired_total: 0,
            released_total: 0,
            rebacked_total: 0,
        }
    }

    /// The machine this pool draws from.
    pub fn machine(&self) -> &Arc<MachineMemory> {
        &self.machine
    }

    /// Acquires one page frame, reusing a cached frame if available.
    ///
    /// Fails with [`crate::SoftError::MachineFull`] when the machine has
    /// no free physical pages (cached frames are already backed, so they
    /// never fail).
    pub fn acquire(&mut self) -> SoftResult<PageFrame> {
        if let Some(mut frame) = self.cached.pop() {
            frame.zero();
            return Ok(frame);
        }
        self.machine.reserve(1)?;
        // Re-backing: growth first consumes the pool of previously
        // released virtual pages (§4).
        if self.unbacked_virtual > 0 {
            self.unbacked_virtual -= 1;
            self.rebacked_total += 1;
        }
        self.acquired_total += 1;
        if let Some(ptr) = self.dirty.pop() {
            // SAFETY: `ptr` is an un-leased page of an arena this pool
            // owns; leasing it out again is exclusive by construction.
            let mut frame = unsafe { PageFrame::from_arena(ptr) };
            frame.zero();
            return Ok(frame);
        }
        if self.fresh.is_empty() {
            self.grow_arena();
        }
        let ptr = self.fresh.pop().expect("arena growth refilled `fresh`");
        // SAFETY: as above; fresh pages are additionally still zeroed.
        Ok(unsafe { PageFrame::from_arena(ptr) })
    }

    /// Maps a new arena and carves it into fresh pages.
    fn grow_arena(&mut self) {
        let span = Span::new_zeroed(ARENA_PAGES);
        let base = span.as_ptr();
        for i in (0..ARENA_PAGES).rev() {
            // SAFETY: `base + i * PAGE_SIZE` is within the span's
            // allocation for every `i < ARENA_PAGES`.
            let ptr = unsafe { base.add(i * PAGE_SIZE) };
            self.fresh
                .push(NonNull::new(ptr).expect("span base is non-null"));
        }
        self.arenas.push(span);
    }

    /// Acquires a contiguous span of `pages` pages.
    ///
    /// Spans bypass the frame arenas (cached frames are not contiguous)
    /// but still reserve machine capacity.
    pub fn acquire_span(&mut self, pages: usize) -> SoftResult<Span> {
        self.machine.reserve(pages)?;
        let rebacked = pages.min(self.unbacked_virtual);
        self.unbacked_virtual -= rebacked;
        self.rebacked_total += rebacked as u64;
        self.acquired_total += pages as u64;
        Ok(Span::new_zeroed(pages))
    }

    /// Returns a frame to the pool.
    ///
    /// The frame is cached for reuse up to the retention watermark;
    /// beyond it, the frame is released to the OS (machine capacity
    /// freed, virtual page recorded as unbacked).
    pub fn recycle(&mut self, frame: PageFrame) {
        if self.cached.len() < self.retain {
            self.cached.push(frame);
        } else {
            self.release_to_os(frame);
        }
    }

    /// Releases a frame straight back to the OS, freeing machine capacity
    /// immediately. Used on the reclamation path, where the whole point
    /// is to hand physical memory to another process.
    pub fn release_to_os(&mut self, frame: PageFrame) {
        if let Some(ptr) = frame.into_arena_ptr() {
            self.dirty.push(ptr);
        }
        // Owned (non-arena) frames free their memory on drop.
        self.machine.release(1);
        self.unbacked_virtual += 1;
        self.released_total += 1;
    }

    /// Releases a span back to the OS.
    pub fn release_span(&mut self, span: Span) {
        let pages = span.pages();
        drop(span);
        self.machine.release(pages);
        self.unbacked_virtual += pages;
        self.released_total += pages as u64;
    }

    /// Releases every cached frame to the OS (used when the daemon
    /// reclaims the free pool itself).
    ///
    /// Returns how many pages were released.
    pub fn flush_cache(&mut self) -> usize {
        self.shed_cached(usize::MAX)
    }

    /// Releases up to `pages` cached frames to the OS; returns how many
    /// were actually released.
    pub fn shed_cached(&mut self, pages: usize) -> usize {
        let n = pages.min(self.cached.len());
        for _ in 0..n {
            let frame = self.cached.pop().expect("bounded by len");
            self.release_to_os(frame);
        }
        n
    }

    /// Number of idle cached frames.
    pub fn cached_pages(&self) -> usize {
        self.cached.len()
    }

    /// Current pool accounting snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            cached_pages: self.cached.len(),
            unbacked_virtual_pages: self.unbacked_virtual,
            acquired_total: self.acquired_total,
            released_total: self.released_total,
            rebacked_total: self.rebacked_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SoftError;

    #[test]
    fn acquire_respects_machine_capacity() {
        let machine = MachineMemory::new(2);
        let mut pool = PagePool::new(machine, 8);
        let a = pool.acquire().unwrap();
        let _b = pool.acquire().unwrap();
        assert_eq!(
            pool.acquire().unwrap_err(),
            SoftError::MachineFull { requested_pages: 1 }
        );
        // Recycling makes capacity available again through the cache.
        pool.recycle(a);
        assert!(pool.acquire().is_ok());
    }

    #[test]
    fn recycle_caches_up_to_retain_then_releases() {
        let machine = MachineMemory::new(10);
        let mut pool = PagePool::new(Arc::clone(&machine), 2);
        let frames: Vec<_> = (0..4).map(|_| pool.acquire().unwrap()).collect();
        assert_eq!(machine.stats().used_pages, 4);
        for f in frames {
            pool.recycle(f);
        }
        let s = pool.stats();
        assert_eq!(s.cached_pages, 2);
        assert_eq!(s.unbacked_virtual_pages, 2);
        assert_eq!(machine.stats().used_pages, 2);
    }

    #[test]
    fn released_pages_are_rebacked_before_growth() {
        let machine = MachineMemory::new(10);
        let mut pool = PagePool::new(machine, 0);
        let f = pool.acquire().unwrap();
        pool.release_to_os(f);
        assert_eq!(pool.stats().unbacked_virtual_pages, 1);
        let _f2 = pool.acquire().unwrap();
        let s = pool.stats();
        assert_eq!(s.unbacked_virtual_pages, 0);
        assert_eq!(s.rebacked_total, 1);
    }

    #[test]
    fn rebacked_pages_come_back_zeroed() {
        let machine = MachineMemory::new(4);
        let mut pool = PagePool::new(machine, 0);
        let f = pool.acquire().unwrap();
        // SAFETY: in-bounds write to a leased page.
        unsafe { *f.as_ptr() = 0x5A };
        pool.release_to_os(f);
        let f2 = pool.acquire().unwrap();
        // SAFETY: in-bounds read of a leased page.
        assert_eq!(unsafe { *f2.as_ptr() }, 0);
    }

    #[test]
    fn spans_reserve_and_release_page_counts() {
        let machine = MachineMemory::new(8);
        let mut pool = PagePool::new(Arc::clone(&machine), 0);
        let span = pool.acquire_span(5).unwrap();
        assert_eq!(machine.stats().used_pages, 5);
        assert!(pool.acquire_span(4).is_err());
        pool.release_span(span);
        assert_eq!(machine.stats().used_pages, 0);
        assert_eq!(pool.stats().unbacked_virtual_pages, 5);
        let _s2 = pool.acquire_span(8).unwrap();
        assert_eq!(pool.stats().rebacked_total, 5);
    }

    #[test]
    fn recycled_frames_come_back_zeroed() {
        let machine = MachineMemory::new(4);
        let mut pool = PagePool::new(machine, 4);
        let f = pool.acquire().unwrap();
        // SAFETY: in-bounds write to a leased page.
        unsafe { *f.as_ptr() = 0x5A };
        pool.recycle(f);
        let f2 = pool.acquire().unwrap();
        // SAFETY: in-bounds read of a leased page.
        assert_eq!(unsafe { *f2.as_ptr() }, 0);
    }

    #[test]
    fn flush_and_shed_cache() {
        let machine = MachineMemory::new(10);
        let mut pool = PagePool::new(Arc::clone(&machine), 10);
        let frames: Vec<_> = (0..6).map(|_| pool.acquire().unwrap()).collect();
        for f in frames {
            pool.recycle(f);
        }
        assert_eq!(pool.cached_pages(), 6);
        assert_eq!(pool.shed_cached(2), 2);
        assert_eq!(pool.cached_pages(), 4);
        assert_eq!(pool.flush_cache(), 4);
        assert_eq!(pool.cached_pages(), 0);
        assert_eq!(machine.stats().used_pages, 0);
    }

    #[test]
    fn frames_beyond_one_arena() {
        let machine = MachineMemory::unbounded();
        let mut pool = PagePool::new(machine, 0);
        // Force multiple arena growths and verify all frames are
        // distinct, aligned pages.
        let frames: Vec<_> = (0..super::ARENA_PAGES * 2 + 3)
            .map(|_| pool.acquire().unwrap())
            .collect();
        let mut ptrs: Vec<usize> = frames.iter().map(|f| f.as_ptr() as usize).collect();
        ptrs.sort_unstable();
        ptrs.dedup();
        assert_eq!(ptrs.len(), frames.len(), "no aliasing");
        assert!(ptrs.iter().all(|p| p % PAGE_SIZE == 0));
    }

    #[test]
    fn owned_frames_survive_release_to_os() {
        // Owned frames (tests, standalone slabs) are freed rather than
        // returned to an arena.
        let machine = MachineMemory::new(4);
        let mut pool = PagePool::new(machine, 0);
        machine_reserve_and_release_owned(&mut pool);
        assert_eq!(pool.stats().unbacked_virtual_pages, 1);
    }

    fn machine_reserve_and_release_owned(pool: &mut PagePool) {
        pool.machine().reserve(1).unwrap();
        let frame = PageFrame::new_zeroed();
        pool.release_to_os(frame);
    }
}
