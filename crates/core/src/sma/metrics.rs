//! The SMA's telemetry registry.
//!
//! Every [`super::Sma`] owns one [`SmaMetrics`]: lock-free mirrors of
//! the allocator's monotonic counters, gauges synced under the SMA
//! lock at the end of every mutating operation, and latency
//! histograms. The testkit's metrics-consistency invariant family
//! cross-checks the mirrors against [`crate::stats::SmaStats`] ground
//! truth, so these numbers are certified rather than decorative.
//!
//! Hot-path cost: the alloc/free paths bump one counter and sync four
//! relaxed gauges; latency is timed one call in
//! [`softmem_telemetry::SAMPLE_EVERY`]. Reclamation and SDS callbacks
//! are rare, so they are timed on every call.

use std::sync::Arc;

use softmem_telemetry::{Counter, Gauge, Histogram, Registry, Snapshot};

use super::SmaInner;

/// The allocator's metric set (registry label `sma`).
pub struct SmaMetrics {
    registry: Registry,
    /// Allocation attempts (`alloc_bytes` / `alloc_value` calls).
    pub allocs_total: Arc<Counter>,
    /// Allocations that failed after budget retries.
    pub alloc_failures_total: Arc<Counter>,
    /// Frees (explicit, take-outs, and reclaimer-driven).
    pub frees_total: Arc<Counter>,
    /// Mirror of `SmaStats::reclaims_total`.
    pub reclaims_total: Arc<Counter>,
    /// Mirror of `SmaStats::pages_reclaimed_total`.
    pub pages_reclaimed_total: Arc<Counter>,
    /// Mirror of `SmaStats::budget_granted_total`.
    pub budget_granted_total: Arc<Counter>,
    /// SDS reclaim callbacks invoked (tier-3 rounds).
    pub sds_callbacks_total: Arc<Counter>,
    /// Mirror of `SmaStats::magazine_refills_total` (fast-path depot
    /// pulls into a magazine).
    pub magazine_refills_total: Arc<Counter>,
    /// Mirror of `SmaStats::magazine_steal_backs_total` (pages
    /// reclamation stole back out of magazines).
    pub magazine_steal_backs_total: Arc<Counter>,
    /// Mirror of `SmaStats::smr_guard_stalls_total` (grace-period
    /// waits and guard-deferred harvests).
    pub smr_guard_stalls_total: Arc<Counter>,
    /// Sampled allocation latency (ns), including budget round-trips.
    pub alloc_ns: Arc<Histogram>,
    /// Sampled free latency (ns).
    pub free_ns: Arc<Histogram>,
    /// Full-reclamation latency (ns), all tiers.
    pub reclaim_ns: Arc<Histogram>,
    /// Per-SDS reclaim-callback duration (ns).
    pub sds_callback_ns: Arc<Histogram>,
    /// Current soft budget in pages.
    pub budget_pages: Arc<Gauge>,
    /// Pages physically held (heaps + free pool).
    pub held_pages: Arc<Gauge>,
    /// Budget slack (budget − held).
    pub slack_pages: Arc<Gauge>,
    /// Free-pool (depot) occupancy in pages. Maintained by *deltas* at
    /// every depot push/pop — the depot is lock-free, so there is no
    /// critical section to recompute it in; paired `add(±1)` calls sum
    /// exactly at quiescent points.
    pub free_pool_pages: Arc<Gauge>,
    /// Pages parked across all per-SDS magazines. Delta-maintained like
    /// `free_pool_pages` (each mutation happens under that SDS's shard
    /// lock, but no global lock).
    pub magazine_pages: Arc<Gauge>,
    /// Pages on the SMR limbo list awaiting reader-epoch advance.
    /// Delta-maintained at park/flush under the limbo lock.
    pub smr_limbo_pages: Arc<Gauge>,
}

impl SmaMetrics {
    pub(crate) fn new() -> Self {
        let registry = Registry::new("sma");
        SmaMetrics {
            allocs_total: registry.counter("allocs_total"),
            alloc_failures_total: registry.counter("alloc_failures_total"),
            frees_total: registry.counter("frees_total"),
            reclaims_total: registry.counter("reclaims_total"),
            pages_reclaimed_total: registry.counter("pages_reclaimed_total"),
            budget_granted_total: registry.counter("budget_granted_total"),
            sds_callbacks_total: registry.counter("sds_callbacks_total"),
            magazine_refills_total: registry.counter("magazine_refills_total"),
            magazine_steal_backs_total: registry.counter("magazine_steal_backs_total"),
            smr_guard_stalls_total: registry.counter("smr_guard_stalls_total"),
            alloc_ns: registry.histogram("alloc_ns"),
            free_ns: registry.histogram("free_ns"),
            reclaim_ns: registry.histogram("reclaim_ns"),
            sds_callback_ns: registry.histogram("sds_callback_ns"),
            budget_pages: registry.gauge("budget_pages"),
            held_pages: registry.gauge("held_pages"),
            slack_pages: registry.gauge("slack_pages"),
            free_pool_pages: registry.gauge("free_pool_pages"),
            magazine_pages: registry.gauge("magazine_pages"),
            smr_limbo_pages: registry.gauge("smr_limbo_pages"),
            registry,
        }
    }

    /// The underlying registry (for snapshots and rendering).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Re-derives the occupancy gauges from allocator state. Called
    /// under the SMA slow-path lock at the end of every operation that
    /// changed budget or held pages, so gauge readings at a quiescent
    /// point equal `SmaStats`. The depot and magazine gauges are *not*
    /// recomputed here — those structures live outside the lock and
    /// their gauges are maintained by deltas at each mutation.
    #[inline]
    pub(crate) fn sync_occupancy(&self, inner: &SmaInner) {
        self.budget_pages.set(inner.budget_pages as i64);
        self.held_pages.set(inner.held_pages as i64);
        self.slack_pages
            .set(inner.budget_pages.saturating_sub(inner.held_pages) as i64);
    }
}

impl std::fmt::Debug for SmaMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmaMetrics")
            .field("allocs_total", &self.allocs_total.get())
            .field("reclaims_total", &self.reclaims_total.get())
            .finish_non_exhaustive()
    }
}
