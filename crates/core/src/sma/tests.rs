//! Unit tests for the Soft Memory Allocator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use super::*;
use crate::budget::{DeniedBudget, UnlimitedBudget};
use crate::error::SoftError;
use crate::page::MachineMemory;

fn sma_with_budget(pages: usize) -> Arc<Sma> {
    Sma::standalone(pages)
}

#[test]
fn value_roundtrip() {
    let sma = sma_with_budget(16);
    let sds = sma.register_sds("t", Priority::default());
    let slot = sma.alloc_value(sds, [7u8; 100]).unwrap();
    assert_eq!(sma.with_value(&slot, |v| v[99]).unwrap(), 7);
    let back = sma.take_value(slot).unwrap();
    assert_eq!(back, [7u8; 100]);
    assert_eq!(sma.stats().live_allocs, 0);
}

#[test]
fn bytes_roundtrip() {
    let sma = sma_with_budget(16);
    let sds = sma.register_sds("t", Priority::default());
    let h = sma.alloc_bytes(sds, 300).unwrap();
    sma.with_bytes_mut(&h, |b| b[0..4].copy_from_slice(&[1, 2, 3, 4]))
        .unwrap();
    let sum: u32 = sma
        .with_bytes(&h, |b| b[0..4].iter().map(|&x| x as u32).sum())
        .unwrap();
    assert_eq!(sum, 10);
    assert_eq!(h.len(), 300);
    sma.free_bytes(h).unwrap();
}

#[test]
fn drop_runs_on_free_value() {
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Probe(#[allow(dead_code)] u64);
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    DROPS.store(0, Ordering::SeqCst);
    let sma = sma_with_budget(16);
    let sds = sma.register_sds("t", Priority::default());
    let slot = sma.alloc_value(sds, Probe(1)).unwrap();
    sma.free_value(slot).unwrap();
    assert_eq!(DROPS.load(Ordering::SeqCst), 1);
}

#[test]
fn take_value_skips_in_place_drop() {
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Probe;
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    DROPS.store(0, Ordering::SeqCst);
    let sma = sma_with_budget(16);
    let sds = sma.register_sds("t", Priority::default());
    let slot = sma.alloc_value(sds, Probe).unwrap();
    let v = sma.take_value(slot).unwrap();
    assert_eq!(DROPS.load(Ordering::SeqCst), 0);
    drop(v);
    assert_eq!(DROPS.load(Ordering::SeqCst), 1);
}

#[test]
fn budget_exceeded_without_source() {
    let sma = sma_with_budget(1);
    let sds = sma.register_sds("t", Priority::default());
    // First page fits; second page exceeds the 1-page budget.
    let _a = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    let err = sma.alloc_value(sds, [0u8; 4096]).unwrap_err();
    assert!(matches!(err, SoftError::BudgetExceeded { .. }), "{err}");
}

#[test]
fn budget_source_grows_on_demand() {
    let sma = sma_with_budget(1);
    sma.set_budget_source(Arc::new(UnlimitedBudget));
    let sds = sma.register_sds("t", Priority::default());
    for _ in 0..10 {
        sma.alloc_value(sds, [0u8; 4096]).unwrap();
    }
    assert!(sma.budget_pages() >= 10);
    assert!(sma.stats().budget_granted_total > 0);
}

#[test]
fn denied_budget_surfaces_as_budget_exceeded() {
    let sma = sma_with_budget(1);
    sma.set_budget_source(Arc::new(DeniedBudget));
    let sds = sma.register_sds("t", Priority::default());
    let _a = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    let err = sma.alloc_value(sds, [0u8; 4096]).unwrap_err();
    assert!(matches!(err, SoftError::BudgetExceeded { .. }));
}

#[test]
fn budget_source_error_propagates() {
    let sma = sma_with_budget(0);
    sma.set_budget_source(Arc::new(|_need: usize, _want: usize| {
        Err(SoftError::DaemonUnavailable)
    }));
    let sds = sma.register_sds("t", Priority::default());
    assert_eq!(
        sma.alloc_bytes(sds, 8).unwrap_err(),
        SoftError::DaemonUnavailable
    );
}

#[test]
fn machine_full_is_distinct_from_budget() {
    let machine = MachineMemory::new(2);
    let cfg = crate::SmaConfig::new(machine, 100);
    let sma = Sma::with_config(cfg);
    let sds = sma.register_sds("t", Priority::default());
    let _a = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    let _b = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    let err = sma.alloc_value(sds, [0u8; 4096]).unwrap_err();
    assert!(matches!(err, SoftError::MachineFull { .. }), "{err}");
}

#[test]
fn span_allocations() {
    let sma = sma_with_budget(64);
    let sds = sma.register_sds("t", Priority::default());
    let slot = sma.alloc_value(sds, [42u8; 20_000]).unwrap();
    assert_eq!(sma.with_value(&slot, |v| v[19_999]).unwrap(), 42);
    let before = sma.held_pages();
    assert!(before >= 5);
    sma.free_value(slot).unwrap();
    assert_eq!(sma.held_pages(), before - 5);
}

#[test]
fn unknown_sds_is_rejected() {
    let sma = sma_with_budget(4);
    let bogus = SdsId::from_index(7);
    assert_eq!(
        sma.alloc_bytes(bogus, 8).unwrap_err(),
        SoftError::UnknownSds(bogus)
    );
}

#[test]
fn revoked_after_free() {
    let sma = sma_with_budget(4);
    let sds = sma.register_sds("t", Priority::default());
    let slot = sma.alloc_value(sds, 5u32).unwrap();
    let view = slot.shared_view();
    sma.free_value(slot).unwrap();
    assert_eq!(
        sma.with_view(&view, |v| *v).unwrap_err(),
        SoftError::Revoked
    );
    assert!(!sma.is_live(view.raw()));
}

#[test]
fn destroy_sds_releases_everything() {
    let sma = sma_with_budget(64);
    let sds = sma.register_sds("t", Priority::default());
    for i in 0..20 {
        sma.alloc_value(sds, [i as u8; 1000]).unwrap();
    }
    let held = sma.held_pages();
    assert!(held >= 5);
    sma.destroy_sds(sds).unwrap();
    let stats = sma.stats();
    assert_eq!(stats.live_allocs, 0);
    assert_eq!(stats.sds_count, 0);
    // Pages went to the free pool (retained) or back to the OS.
    assert_eq!(stats.held_pages, stats.free_pool_pages);
    // The id is dead now.
    assert_eq!(
        sma.alloc_bytes(sds, 8).unwrap_err(),
        SoftError::UnknownSds(sds)
    );
}

#[test]
fn sds_ids_are_recycled() {
    let sma = sma_with_budget(4);
    let a = sma.register_sds("a", Priority::default());
    sma.destroy_sds(a).unwrap();
    let b = sma.register_sds("b", Priority::default());
    assert_eq!(a, b, "vacant registry slots are reused");
    assert_eq!(sma.sds_stats(b).unwrap().name, "b");
}

// ---------------------------------------------------------------------
// Reclamation tiers
// ---------------------------------------------------------------------

#[test]
fn reclaim_prefers_budget_slack() {
    let sma = sma_with_budget(100);
    let sds = sma.register_sds("t", Priority::default());
    let _x = sma.alloc_value(sds, [0u8; 4096]).unwrap(); // 1 held page
    let report = sma.reclaim(50);
    assert_eq!(report.from_slack, 50);
    assert_eq!(report.pages_released(), 0);
    assert!(report.satisfied());
    assert_eq!(sma.budget_pages(), 50);
    // The live allocation is untouched.
    assert_eq!(sma.stats().live_allocs, 1);
}

#[test]
fn reclaim_releases_idle_pages_before_live_data() {
    let sma = Sma::with_config(crate::SmaConfig::for_testing(10).free_pool_retain(10));
    let sds = sma.register_sds("t", Priority::default());
    // Allocate 4 full pages then free 3: three idle pages remain held
    // (free pool / SDS free list), one page is live.
    let slots: Vec<_> = (0..4)
        .map(|_| sma.alloc_value(sds, [1u8; 4096]).unwrap())
        .collect();
    let mut slots = slots;
    let keep = slots.pop().unwrap();
    for s in slots {
        sma.free_value(s).unwrap();
    }
    assert_eq!(sma.held_pages(), 4);
    // Budget is 10: 6 slack + 3 idle = 9 yieldable without touching data.
    let report = sma.reclaim(9);
    assert_eq!(report.from_slack, 6);
    assert_eq!(report.from_idle, 3);
    assert!(report.from_sds.is_empty());
    assert!(report.satisfied());
    assert_eq!(sma.held_pages(), 1);
    assert_eq!(sma.budget_pages(), 1);
    assert!(sma.with_value(&keep, |v| v[0]).is_ok());
}

/// A reclaimable stack of page-sized allocations, used to exercise tier 3.
struct PageStack {
    sma: Arc<Sma>,
    sds: SdsId,
    slots: Mutex<Vec<SoftSlot<[u8; 4096]>>>,
    freed: AtomicUsize,
}

impl PageStack {
    fn install(sma: &Arc<Sma>, name: &str, priority: Priority, pages: usize) -> Arc<Self> {
        let sds = sma.register_sds(name, priority);
        let stack = Arc::new(PageStack {
            sma: Arc::clone(sma),
            sds,
            slots: Mutex::new(Vec::new()),
            freed: AtomicUsize::new(0),
        });
        for _ in 0..pages {
            let slot = sma.alloc_value(sds, [0u8; 4096]).unwrap();
            stack.slots.lock().push(slot);
        }
        let weak = Arc::downgrade(&stack);
        sma.set_reclaimer(
            sds,
            Arc::new(move |bytes: usize| {
                let Some(stack) = weak.upgrade() else {
                    return 0;
                };
                let mut freed = 0;
                while freed < bytes {
                    let Some(slot) = stack.slots.lock().pop() else {
                        break;
                    };
                    stack.sma.free_value(slot).unwrap();
                    stack.freed.fetch_add(1, Ordering::SeqCst);
                    freed += 4096;
                }
                freed
            }),
        )
        .unwrap();
        stack
    }
}

#[test]
fn reclaim_frees_live_allocations_lowest_priority_first() {
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(20)
            .free_pool_retain(0)
            .sds_retain(0),
    );
    let low = PageStack::install(&sma, "low", Priority::new(1), 8);
    let high = PageStack::install(&sma, "high", Priority::new(9), 8);
    assert_eq!(sma.held_pages(), 16);
    // Demand 10: 4 slack, then live data. Low priority must bleed first.
    let report = sma.reclaim(10);
    assert!(report.satisfied(), "{report:?}");
    assert_eq!(report.from_slack, 4);
    assert_eq!(low.freed.load(Ordering::SeqCst), 6);
    assert_eq!(high.freed.load(Ordering::SeqCst), 0);
    assert_eq!(sma.held_pages(), 10);
    assert_eq!(sma.budget_pages(), 10);
    let names: Vec<_> = report.from_sds.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, ["low"]);
}

#[test]
fn reclaim_cascades_to_higher_priority_when_needed() {
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(12)
            .free_pool_retain(0)
            .sds_retain(0),
    );
    let low = PageStack::install(&sma, "low", Priority::new(1), 4);
    let high = PageStack::install(&sma, "high", Priority::new(9), 8);
    let report = sma.reclaim(8);
    assert!(report.satisfied(), "{report:?}");
    assert_eq!(low.freed.load(Ordering::SeqCst), 4, "low exhausted");
    assert_eq!(high.freed.load(Ordering::SeqCst), 4, "high covers the rest");
}

#[test]
fn reclaim_reports_shortfall_when_everything_runs_dry() {
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(4)
            .free_pool_retain(0)
            .sds_retain(0),
    );
    let _stack = PageStack::install(&sma, "only", Priority::new(1), 4);
    let report = sma.reclaim(10);
    assert_eq!(report.total_yielded(), 4);
    assert_eq!(report.shortfall(), 6);
    assert!(!report.satisfied());
    assert_eq!(sma.held_pages(), 0);
}

#[test]
fn reclaim_invalidates_handles_safely() {
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(4)
            .free_pool_retain(0)
            .sds_retain(0),
    );
    let stack = PageStack::install(&sma, "s", Priority::new(1), 4);
    let view = stack.slots.lock()[3].shared_view();
    let report = sma.reclaim(2);
    assert!(report.satisfied());
    // The newest slot was popped first by this reclaimer; its view is
    // now revoked, not dangling.
    assert_eq!(
        sma.with_view(&view, |v| v[0]).unwrap_err(),
        SoftError::Revoked
    );
}

#[test]
fn reclaim_updates_counters() {
    let sma = sma_with_budget(10);
    let _sds = sma.register_sds("t", Priority::default());
    sma.reclaim(3);
    sma.reclaim(2);
    let s = sma.stats();
    assert_eq!(s.reclaims_total, 2);
    assert_eq!(s.pages_reclaimed_total, 5);
    assert_eq!(s.budget_pages, 5);
}

#[test]
fn stats_track_pool_interactions() {
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(8)
            .free_pool_retain(0)
            .sds_retain(0),
    );
    let sds = sma.register_sds("t", Priority::default());
    let slot = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    sma.free_value(slot).unwrap();
    let s = sma.stats();
    // With zero retention the page went straight back to the OS.
    assert_eq!(s.held_pages, 0);
    assert_eq!(s.pool.released_total, 1);
    assert_eq!(s.pool.unbacked_virtual_pages, 1);
    // Allocating again re-backs the virtual page (§4).
    let _slot = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    assert_eq!(sma.stats().pool.rebacked_total, 1);
}

#[test]
fn free_pool_reuse_avoids_machine_traffic() {
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(8)
            .free_pool_retain(8)
            .sds_retain(0),
    );
    let sds = sma.register_sds("t", Priority::default());
    let slot = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    sma.free_value(slot).unwrap();
    assert_eq!(sma.stats().free_pool_pages, 1);
    let _slot = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    let s = sma.stats();
    assert_eq!(s.free_pool_pages, 0);
    assert_eq!(s.pool.acquired_total, 1, "second alloc reused the frame");
}

#[test]
fn concurrent_alloc_free_smoke() {
    let sma = sma_with_budget(4096);
    let mut handles = Vec::new();
    for t in 0..4 {
        let sma = Arc::clone(&sma);
        handles.push(std::thread::spawn(move || {
            let sds = sma.register_sds(format!("t{t}"), Priority::default());
            for i in 0..2000u64 {
                let slot = sma.alloc_value(sds, i).unwrap();
                assert_eq!(sma.with_value(&slot, |v| *v).unwrap(), i);
                if i % 2 == 0 {
                    sma.free_value(slot).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(sma.stats().live_allocs, 4000);
}

#[test]
fn concurrent_reclaim_and_alloc() {
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(512)
            .free_pool_retain(0)
            .sds_retain(0),
    );
    let stack = PageStack::install(&sma, "s", Priority::new(1), 64);
    let reclaimer = {
        let sma = Arc::clone(&sma);
        std::thread::spawn(move || {
            for _ in 0..16 {
                sma.reclaim(2);
            }
        })
    };
    let allocator = {
        let sma = Arc::clone(&sma);
        let stack = Arc::clone(&stack);
        std::thread::spawn(move || {
            for _ in 0..64 {
                if let Ok(slot) = sma.alloc_value(stack.sds, [1u8; 4096]) {
                    stack.slots.lock().push(slot);
                }
            }
        })
    };
    reclaimer.join().unwrap();
    allocator.join().unwrap();
    // No deadlock, no panic; every remaining handle is consistent.
    let slots = stack.slots.lock();
    for slot in slots.iter() {
        match sma.with_value(slot, |v| v[0]) {
            Ok(_) | Err(SoftError::Revoked) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

/// Swaps an SDS's reclaimer for one that announces entry and then
/// parks until released — a deterministic stand-in for an expensive
/// callback (unmap storms, destructor I/O), letting tests overlap work
/// with a reclamation provably stuck mid-callback.
fn gate_reclaimer(
    stack: &Arc<PageStack>,
) -> (
    Arc<std::sync::atomic::AtomicBool>,
    Arc<std::sync::atomic::AtomicBool>,
) {
    use std::sync::atomic::AtomicBool;
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let cb_stack = Arc::clone(stack);
    let cb_entered = Arc::clone(&entered);
    let cb_release = Arc::clone(&release);
    stack
        .sma
        .set_reclaimer(
            stack.sds,
            Arc::new(move |bytes: usize| {
                cb_entered.store(true, Ordering::SeqCst);
                while !cb_release.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                let mut freed = 0;
                while freed < bytes {
                    let Some(slot) = cb_stack.slots.lock().pop() else {
                        break;
                    };
                    cb_stack.sma.free_value(slot).unwrap();
                    cb_stack.freed.fetch_add(1, Ordering::SeqCst);
                    freed += 4096;
                }
                freed
            }),
        )
        .unwrap();
    (entered, release)
}

#[test]
fn concurrent_reclaim_skips_guarded_sds() {
    // Shard A's callback is stuck; a second reclamation pass must not
    // queue behind it — it skips to the next SDS and satisfies its
    // demand from there.
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(16)
            .free_pool_retain(0)
            .sds_retain(0),
    );
    let a = PageStack::install(&sma, "a", Priority::new(1), 8);
    let b = PageStack::install(&sma, "b", Priority::new(2), 8);
    let (entered, release) = gate_reclaimer(&a);

    let first = {
        let sma = Arc::clone(&sma);
        std::thread::spawn(move || sma.reclaim(4))
    };
    while !entered.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    // "a" (lowest priority) is guarded by the stuck pass, so this pass
    // must take everything from "b" — and must return promptly rather
    // than waiting for "a"'s callback.
    let second = sma.reclaim(4);
    assert!(second.satisfied(), "{second:?}");
    let names: Vec<_> = second.from_sds.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, ["b"]);
    assert_eq!(a.freed.load(Ordering::SeqCst), 0, "a untouched so far");
    assert_eq!(b.freed.load(Ordering::SeqCst), 4);

    release.store(true, Ordering::SeqCst);
    let first = first.join().unwrap();
    assert!(first.satisfied(), "{first:?}");
    let names: Vec<_> = first.from_sds.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, ["a"]);
    assert_eq!(a.freed.load(Ordering::SeqCst), 4);

    // Per-pass accounting stayed exact under concurrency: 8 pages
    // demanded and released in total, none double-counted.
    assert_eq!(sma.held_pages(), 8);
    assert_eq!(sma.budget_pages(), 8);
    assert_eq!(
        first.pages_released() + second.pages_released(),
        8,
        "first: {first:?}, second: {second:?}"
    );
}

#[test]
fn allocation_proceeds_during_slow_reclaim_callback() {
    // The whole point of the two-phase harvest: while one SDS's
    // callback grinds away (unlocked), other SDSs keep allocating and
    // freeing — they only ever wait on page-return-sized critical
    // sections.
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(16)
            .free_pool_retain(0)
            .sds_retain(0),
    );
    let slow = PageStack::install(&sma, "slow", Priority::new(1), 8);
    let app = PageStack::install(&sma, "app", Priority::new(9), 8);
    let (entered, release) = gate_reclaimer(&slow);

    let reclaim = {
        let sma = Arc::clone(&sma);
        std::thread::spawn(move || sma.reclaim(4))
    };
    while !entered.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    // With the reclamation provably mid-callback, churn the other SDS:
    // every free and every allocation must go through.
    for i in 0..16u8 {
        let slot = app.slots.lock().pop().expect("app slot");
        sma.free_value(slot).unwrap();
        let slot = sma
            .alloc_value(app.sds, [i; 4096])
            .expect("allocation must not be blocked by the in-flight reclaim");
        app.slots.lock().push(slot);
    }
    release.store(true, Ordering::SeqCst);
    let report = reclaim.join().unwrap();
    assert!(report.satisfied(), "{report:?}");
    assert_eq!(slow.freed.load(Ordering::SeqCst), 4);
    assert_eq!(app.freed.load(Ordering::SeqCst), 0, "app kept its data");
    // The churn's own page traffic was not charged to the reclaim.
    assert_eq!(report.pages_released(), 4);
    assert_eq!(sma.held_pages(), 12);
    assert_eq!(sma.budget_pages(), 12);
    for slot in app.slots.lock().iter() {
        assert!(sma.with_value(slot, |v| v[0]).is_ok());
    }
}

// ---------------------------------------------------------------------
// Magazines, depot, and epoch-validated access
// ---------------------------------------------------------------------

#[test]
fn magazine_parks_freed_pages_for_lock_free_reuse() {
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(8)
            .free_pool_retain(0)
            .sds_retain(2),
    );
    let sds = sma.register_sds("t", Priority::default());
    let slots: Vec<_> = (0..3)
        .map(|_| sma.alloc_value(sds, [0u8; 4096]).unwrap())
        .collect();
    for slot in slots {
        sma.free_value(slot).unwrap();
    }
    let s = sma.stats();
    // Two pages park in the magazine (its capacity); the depot holds
    // nothing (capacity 0), so the third went back to the OS.
    assert_eq!(s.magazine_pages, 2);
    assert_eq!(s.free_pool_pages, 0);
    assert_eq!(s.held_pages, 2);
    assert_eq!(sma.sds_stats(sds).unwrap().magazine_pages, 2);
    let acquired_before = s.pool.acquired_total;
    // Re-allocation is served from the magazine: no OS traffic.
    let _slot = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    let s = sma.stats();
    assert_eq!(s.magazine_pages, 1);
    assert_eq!(s.pool.acquired_total, acquired_before);
}

#[test]
fn magazine_refills_from_depot_in_batches() {
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(16)
            .free_pool_retain(8)
            .sds_retain(4),
    );
    // Seed the depot: a scratch SDS's pages are recycled on destroy.
    let scratch = sma.register_sds("scratch", Priority::default());
    let slots: Vec<_> = (0..4)
        .map(|_| sma.alloc_value(scratch, [0u8; 4096]).unwrap())
        .collect();
    drop(slots);
    sma.destroy_sds(scratch).unwrap();
    assert_eq!(sma.stats().free_pool_pages, 4);

    let sds = sma.register_sds("t", Priority::default());
    let _slot = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    let s = sma.stats();
    // One refill event: one frame used by the allocation plus a batch
    // of sds_retain/2 = 2 pulled into the magazine.
    assert_eq!(s.magazine_refills_total, 1);
    assert_eq!(s.magazine_pages, 2);
    assert_eq!(s.free_pool_pages, 1);
    let per_sds = sma.sds_stats(sds).unwrap();
    assert_eq!(per_sds.magazine_refills, 1);
    assert_eq!(per_sds.magazine_pages, 2);
    // The next two allocations hit the magazine: no further refills.
    let _a = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    let _b = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    assert_eq!(sma.stats().magazine_refills_total, 1);
    assert_eq!(sma.stats().magazine_pages, 0);
}

#[test]
fn reclaim_steals_magazine_pages_back() {
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(4)
            .free_pool_retain(0)
            .sds_retain(4),
    );
    let sds = sma.register_sds("t", Priority::default());
    let slots: Vec<_> = (0..3)
        .map(|_| sma.alloc_value(sds, [0u8; 4096]).unwrap())
        .collect();
    for slot in slots {
        sma.free_value(slot).unwrap();
    }
    assert_eq!(sma.stats().magazine_pages, 3);
    assert_eq!(sma.held_pages(), 3);
    // Demand everything: 1 page of slack, then the magazine must be
    // quiesced (steal-back) — parked pages are not allowed to hide
    // from reclamation.
    let report = sma.reclaim(4);
    assert!(report.satisfied(), "{report:?}");
    assert_eq!(report.from_slack, 1);
    assert_eq!(report.from_idle, 3);
    let s = sma.stats();
    assert_eq!(s.magazine_pages, 0);
    assert_eq!(s.magazine_steal_backs_total, 3);
    assert_eq!(s.held_pages, 0);
    assert_eq!(sma.sds_stats(sds).unwrap().magazine_steal_backs, 3);
}

#[test]
fn destroy_sds_recycles_magazine_into_depot() {
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(8)
            .free_pool_retain(8)
            .sds_retain(4),
    );
    let sds = sma.register_sds("t", Priority::default());
    let slots: Vec<_> = (0..3)
        .map(|_| sma.alloc_value(sds, [0u8; 4096]).unwrap())
        .collect();
    for slot in slots {
        sma.free_value(slot).unwrap();
    }
    assert_eq!(sma.stats().magazine_pages, 3);
    sma.destroy_sds(sds).unwrap();
    let s = sma.stats();
    assert_eq!(s.magazine_pages, 0);
    assert_eq!(s.free_pool_pages, 3, "magazine recycled into the depot");
    assert_eq!(s.held_pages, 3);
}

#[test]
fn concurrent_readers_never_observe_torn_writes() {
    // The writer-grace guarantee: a zero-copy guarded read that races
    // an in-place writer always observes a fully-written buffer — the
    // writer waits out every guard pinned before its epoch bump, so a
    // torn mix of old and new bytes is impossible.
    let sma = sma_with_budget(16);
    let sds = sma.register_sds("t", Priority::default());
    let handle = sma.alloc_bytes(sds, 256).unwrap();
    sma.with_bytes_mut(&handle, |b| b.fill(0)).unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let writer = {
        let sma = Arc::clone(&sma);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0u8;
            while !stop.load(Ordering::SeqCst) {
                i = i.wrapping_add(1);
                sma.with_bytes_mut(&handle, |b| b.fill(i)).unwrap();
            }
        })
    };
    let reader = {
        let sma = Arc::clone(&sma);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::SeqCst) {
                sma.with_bytes(&handle, |b| {
                    let first = b[0];
                    assert!(
                        b.iter().all(|&x| x == first),
                        "torn read: starts with {first}, bytes {b:?}"
                    );
                })
                .unwrap();
                reads += 1;
            }
            reads
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(100));
    stop.store(true, Ordering::SeqCst);
    writer.join().unwrap();
    let reads = reader.join().unwrap();
    assert!(reads > 0);
    sma.free_bytes(handle).unwrap();
}

#[test]
fn exclusive_read_racing_free_reports_reclaimed_exactly_once() {
    // The generation check behind `with_value_exclusive`: a slot freed
    // *while* the unlocked closure runs is reported as `Reclaimed`
    // (exactly once — the free itself succeeds normally), and the
    // closure never faults or observes a destructed value: the read
    // guard pinned before the lock was released parks the racing free
    // (or the whole destroyed heap) in limbo until the closure is
    // done.
    use std::sync::atomic::AtomicBool;
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Probe(u64);
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    for destroy_instead_of_free in [false, true] {
        DROPS.store(0, Ordering::SeqCst);
        let sma = sma_with_budget(16);
        let sds = sma.register_sds("t", Priority::default());
        let slot = sma.alloc_value(sds, Probe(0xDEAD_BEEF)).unwrap();
        let raw = slot.raw();
        let entered = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));

        let reader = {
            let sma = Arc::clone(&sma);
            let entered = Arc::clone(&entered);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                // SAFETY: the racing operation is a *free*, not a
                // write — exactly the "frees are tolerated" case of
                // the contract.
                unsafe {
                    sma.with_value_exclusive(&slot, |v| {
                        entered.store(true, Ordering::SeqCst);
                        while !release.load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                        v.0
                    })
                }
            })
        };
        while !entered.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // The closure is provably in flight; revoke the slot under it.
        if destroy_instead_of_free {
            sma.destroy_sds(sds).unwrap();
        } else {
            let doomed = unsafe { SoftSlot::<Probe>::from_raw(raw) };
            sma.free_value(doomed).unwrap();
        }
        // The guard defers the destructor: the revoking call returned,
        // but the value the closure is reading must still be intact.
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            0,
            "destructor ran under an in-flight reader (destroy={destroy_instead_of_free})"
        );
        release.store(true, Ordering::SeqCst);
        let result = reader.join().unwrap();
        assert_eq!(
            result.unwrap_err(),
            SoftError::Reclaimed,
            "destroy={destroy_instead_of_free}"
        );
        // Exactly once: a fresh access through the same coordinates is
        // the ordinary stale-handle error, not `Reclaimed` again.
        if !destroy_instead_of_free {
            let stale = unsafe { SoftSlot::<Probe>::from_raw(raw) };
            assert_eq!(
                sma.with_value(&stale, |v| v.0).unwrap_err(),
                SoftError::Revoked
            );
        }
        // Guard dropped; the next flush runs the deferred destructor
        // exactly once. `reclaim(0)` flushes the parked heap of the
        // destroy arm; an alloc+free cycle on the same SDS flushes the
        // free arm's slot limbo.
        let _ = sma.reclaim(0);
        if !destroy_instead_of_free {
            let dummy = sma.alloc_value(sds, 0u8).unwrap();
            sma.free_value(dummy).unwrap();
        }
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            1,
            "deferred destructor must run exactly once (destroy={destroy_instead_of_free})"
        );
    }
}

#[test]
fn exclusive_read_without_race_revalidates_clean() {
    let sma = sma_with_budget(4);
    let sds = sma.register_sds("t", Priority::default());
    let slot = sma.alloc_value(sds, 7u64).unwrap();
    // SAFETY: single-threaded; nothing races the read.
    let v = unsafe { sma.with_value_exclusive(&slot, |v| *v) }.unwrap();
    assert_eq!(v, 7);
}

// ---------------------------------------------------------------------
// Budget-source re-entrancy (single-critical-section budget ops)
// ---------------------------------------------------------------------

#[test]
fn budget_source_callback_may_reenter_the_sma() {
    // Regression test: `grant_more` runs with no SMA locks held, so a
    // budget source that re-enters the allocator — reclaiming, shrinking,
    // reading stats, growing the budget itself — must not deadlock.
    struct ReentrantSource {
        sma: std::sync::Weak<Sma>,
    }
    impl crate::budget::BudgetSource for ReentrantSource {
        fn grant_more(&self, need: usize, want: usize) -> crate::SoftResult<crate::budget::Grant> {
            let sma = self.sma.upgrade().expect("sma alive");
            // Exercise every budget-adjacent entry point from inside
            // the callback.
            let _ = sma.reclaim(1);
            let _ = sma.shrink_budget(0);
            let _ = sma.stats();
            let _ = sma.all_sds_stats();
            sma.grow_budget(need.max(want));
            Ok(crate::budget::Grant {
                pages: need.max(want),
                already_applied: true,
            })
        }
    }
    let sma = sma_with_budget(0);
    sma.set_budget_source(Arc::new(ReentrantSource {
        sma: Arc::downgrade(&sma),
    }));
    let sds = sma.register_sds("t", Priority::default());
    let slot = sma.alloc_value(sds, [3u8; 4096]).expect("no deadlock");
    assert_eq!(sma.with_value(&slot, |v| v[0]).unwrap(), 3);
    assert!(sma.stats().budget_granted_total > 0);
}

#[test]
fn paper_workload_shape_977k_allocs() {
    // A miniature of §5 case (1): many 1 KiB allocations under ample
    // budget. Scaled down 100× for test speed; the bench harness runs
    // the full size.
    let n = 9_770;
    let sma = sma_with_budget(n / 4 + 64);
    let sds = sma.register_sds("stress", Priority::default());
    let mut slots = Vec::with_capacity(n);
    for i in 0..n {
        slots.push(sma.alloc_value(sds, [i as u8; 1024]).unwrap());
    }
    let s = sma.stats();
    assert_eq!(s.live_allocs, n);
    // 4 slots per page: tight packing.
    assert!(s.held_pages <= n / 4 + 1, "held {} pages", s.held_pages);
    for slot in slots {
        sma.free_value(slot).unwrap();
    }
    assert_eq!(sma.stats().live_allocs, 0);
}

// ---------------------------------------------------------------------
// SMR generation safety: guarded zero-copy reads vs frees and reclaim
// ---------------------------------------------------------------------

#[test]
fn guarded_read_never_observes_later_generation_bytes() {
    // The core generation-safety property: a reader that resolved a
    // slot keeps seeing *that generation's* bytes even if the slot is
    // freed and new allocations land while the closure runs — the
    // limbo'd slot cannot be recycled under the guard.
    use std::sync::atomic::AtomicBool;
    let sma = sma_with_budget(16);
    let sds = sma.register_sds("t", Priority::default());
    let handle = sma.alloc_bytes(sds, 256).unwrap();
    sma.with_bytes_mut(&handle, |b| b.fill(0xAB)).unwrap();
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let reader = {
        let sma = Arc::clone(&sma);
        let entered = Arc::clone(&entered);
        let release = Arc::clone(&release);
        std::thread::spawn(move || {
            sma.with_bytes(&handle, |b| {
                entered.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                // Read *after* the free and the follow-up writes: the
                // borrow must still show generation-1 bytes.
                b.iter().filter(|&&x| x == 0xAB).count()
            })
        })
    };
    while !entered.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    // Free the handle under the in-flight reader (defers to limbo),
    // then allocate new memory filled with a different pattern. The
    // fills go through `alloc_value` (a fresh slot cannot be guarded,
    // so allocation never grace-waits); an in-place `with_bytes_mut`
    // here would rightly stall behind the parked reader.
    sma.free_bytes(handle).unwrap();
    for _ in 0..8 {
        let _fresh = sma.alloc_value(sds, [0xCDu8; 256]).unwrap();
    }
    release.store(true, Ordering::SeqCst);
    let intact = reader.join().unwrap().unwrap();
    assert_eq!(
        intact, 256,
        "guarded reader saw bytes from a later generation"
    );
}

#[test]
fn stalled_reader_parks_page_in_limbo_until_guard_drop() {
    // Deterministic single-threaded stalled-reader scenario (also the
    // Miri-clean variant of the campaign): a pinned guard forces a
    // full reclamation pass to park the freed page in limbo rather
    // than harvest it, and the page is freed exactly once after the
    // guard drops.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct PageProbe(#[allow(dead_code)] [u8; 4096]);
    impl Drop for PageProbe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    DROPS.store(0, Ordering::SeqCst);
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(16)
            .free_pool_retain(8)
            .sds_retain(0),
    );
    let sds = sma.register_sds("t", Priority::default());
    // A no-op reclaimer so tier 3 (and with it the deferred-harvest
    // stage) runs at all.
    sma.set_reclaimer(sds, Arc::new(|_: usize| 0usize)).unwrap();
    let slot = sma.alloc_value(sds, PageProbe([7u8; 4096])).unwrap();
    assert_eq!(sma.stats().held_pages, 1);

    let guard = sma.pin();
    sma.free_value(slot).unwrap();
    // Deferred: handle revoked, destructor and page intact.
    assert_eq!(DROPS.load(Ordering::SeqCst), 0);
    assert_eq!(sma.stats().live_allocs, 0);
    assert_eq!(sma.stats().held_pages, 1);
    assert_eq!(sma.limbo_pages(), 0, "page-level limbo only after harvest");

    // Demand everything: slack covers 15, the 16th page is the limbo'd
    // one — reclamation must park it, not harvest it.
    let report = sma.reclaim(16);
    assert_eq!(report.from_slack, 15);
    assert!(!report.satisfied());
    assert_eq!(
        report.shortfall(),
        1,
        "limbo page must not count as yielded"
    );
    assert_eq!(sma.limbo_pages(), 1);
    let s = sma.stats();
    assert_eq!(s.smr_limbo_pages, 1);
    assert!(s.smr_guard_stalls_total >= 1, "deferral must be recorded");
    assert_eq!(s.held_pages, 1, "limbo page is still held by the process");
    assert_eq!(DROPS.load(Ordering::SeqCst), 0, "destructor still deferred");

    drop(guard);
    // Nothing is freed eagerly on guard drop; the next pass flushes.
    assert_eq!(DROPS.load(Ordering::SeqCst), 0);
    let report2 = sma.reclaim(1);
    assert_eq!(DROPS.load(Ordering::SeqCst), 1, "freed exactly once");
    assert!(report2.satisfied());
    assert_eq!(sma.limbo_pages(), 0);
    let s = sma.stats();
    assert_eq!(s.smr_limbo_pages, 0);
    assert_eq!(
        s.held_pages, 0,
        "page conservation: limbo drained to the OS"
    );
}

#[test]
fn limbo_pages_are_conserved_across_guarded_reclaim() {
    // Conservation across the whole lifecycle: live + limbo + free
    // pages always sum to what the process holds — parking pages in
    // limbo neither leaks nor double-frees them.
    let sma = Sma::with_config(
        crate::SmaConfig::for_testing(8)
            .free_pool_retain(8)
            .sds_retain(0),
    );
    let sds = sma.register_sds("t", Priority::default());
    sma.set_reclaimer(sds, Arc::new(|_: usize| 0usize)).unwrap();
    let slots: Vec<_> = (0..3)
        .map(|_| sma.alloc_value(sds, [1u8; 4096]).unwrap())
        .collect();
    assert_eq!(sma.stats().held_pages, 3);

    let guard = sma.pin();
    for slot in slots {
        sma.free_value(slot).unwrap();
    }
    // All three pages are slot-limbo inside the heap: still held.
    assert_eq!(sma.stats().held_pages, 3);

    let report = sma.reclaim(8);
    // Slack (8 - 3 = 5) yields; the three limbo pages park instead.
    assert_eq!(report.from_slack, 5);
    assert_eq!(report.shortfall(), 3);
    assert_eq!(sma.limbo_pages(), 3);
    assert_eq!(
        sma.stats().held_pages,
        3,
        "conservation: limbo pages stay in held_pages"
    );

    drop(guard);
    let report2 = sma.reclaim(3);
    assert!(report2.satisfied());
    let s = sma.stats();
    assert_eq!(sma.limbo_pages(), 0);
    assert_eq!(s.held_pages, 0);
    assert_eq!(s.free_pool_pages, 0);
    assert_eq!(
        s.pages_reclaimed_total, 8,
        "every machine page yielded exactly once"
    );
}

#[test]
fn writer_grace_waits_for_cross_thread_guard() {
    // An in-place writer must not mutate bytes while another thread's
    // guard (pinned before the write) can still observe them.
    use std::sync::atomic::AtomicBool;
    let sma = sma_with_budget(16);
    let sds = sma.register_sds("t", Priority::default());
    let read_handle = sma.alloc_bytes(sds, 128).unwrap();
    let write_handle = sma.alloc_bytes(sds, 128).unwrap();
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let wrote = Arc::new(AtomicBool::new(false));

    let reader = {
        let sma = Arc::clone(&sma);
        let entered = Arc::clone(&entered);
        let release = Arc::clone(&release);
        std::thread::spawn(move || {
            sma.with_bytes(&read_handle, |_| {
                entered.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        })
    };
    while !entered.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    let writer = {
        let sma = Arc::clone(&sma);
        let wrote = Arc::clone(&wrote);
        std::thread::spawn(move || {
            sma.with_bytes_mut(&write_handle, |b| b.fill(9)).unwrap();
            wrote.store(true, Ordering::SeqCst);
        })
    };
    // The writer must be stalled behind the reader's guard. (One-sided
    // check: a scheduling hiccup can only make this pass vacuously,
    // never fail spuriously.)
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        !wrote.load(Ordering::SeqCst),
        "writer mutated bytes while a prior guard was pinned"
    );
    release.store(true, Ordering::SeqCst);
    reader.join().unwrap();
    writer.join().unwrap();
    assert!(wrote.load(Ordering::SeqCst));
    assert!(
        sma.stats().smr_guard_stalls_total >= 1,
        "the grace wait must be recorded as a stall"
    );
}

#[test]
fn destroy_sds_under_guard_defers_heap_teardown() {
    // Non-blocking destroy: with a guard pinned, `destroy_sds` parks
    // the whole heap in limbo (destructors deferred) and returns
    // immediately; the flush after the guard drops tears it down.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Probe(#[allow(dead_code)] u64);
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    DROPS.store(0, Ordering::SeqCst);
    let sma = sma_with_budget(16);
    let sds = sma.register_sds("t", Priority::default());
    for i in 0..4 {
        let _ = sma.alloc_value(sds, Probe(i)).unwrap();
    }
    let guard = sma.pin();
    sma.destroy_sds(sds).unwrap();
    assert_eq!(DROPS.load(Ordering::SeqCst), 0, "teardown must defer");
    assert!(sma.limbo_pages() >= 1);
    assert!(sma.stats().smr_guard_stalls_total >= 1);
    drop(guard);
    let _ = sma.reclaim(0); // flush trigger
    assert_eq!(DROPS.load(Ordering::SeqCst), 4, "all destructors ran once");
    assert_eq!(sma.limbo_pages(), 0);
}

#[test]
fn guard_free_fast_path_is_unchanged_without_readers() {
    // With no guard pinned, frees are immediate — byte-for-byte the
    // pre-SMR fast path: no limbo, no stalls, destructor in place.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Probe(#[allow(dead_code)] u64);
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    DROPS.store(0, Ordering::SeqCst);
    let sma = sma_with_budget(16);
    let sds = sma.register_sds("t", Priority::default());
    let slot = sma.alloc_value(sds, Probe(1)).unwrap();
    sma.free_value(slot).unwrap();
    assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    let s = sma.stats();
    assert_eq!(s.smr_limbo_pages, 0);
    assert_eq!(s.smr_guard_stalls_total, 0);
    assert_eq!(sma.smr().current_epoch(), 1, "no retirement without guards");
}
