//! The Soft Memory Allocator.
//!
//! One [`Sma`] instance manages all soft memory of one (simulated or
//! real) process: it owns the process-global frame depot, the
//! soft-memory budget granted by the daemon, and one isolated heap per
//! registered Soft Data Structure. Its headline capability — the reason
//! it exists — is [`Sma::reclaim`]: yielding pages back on demand (the
//! tiered protocol is documented on that method and its
//! `ReclaimReport`).
//!
//! # Fast path
//!
//! The allocator is sharded per SDS. Each SDS owns a shard: its heap,
//! plus a small *magazine* of wholly-free page frames, behind its own
//! lock. The common alloc/free cycle therefore touches only the owning
//! shard's lock:
//!
//! * **alloc** — carve a slot from a partial page, or pop a frame from
//!   the magazine; on a magazine miss, *refill* from the lock-free
//!   global frame depot. Only a depot miss (budget growth, fresh OS
//!   pages) takes the global allocator lock.
//! * **free** — return the slot; a page that comes wholly free parks in
//!   the magazine (up to [`SmaConfig::sds_retain_pages`]), overflows to
//!   the depot (up to [`SmaConfig::free_pool_retain_pages`]), and only
//!   then is released to the OS under the global lock.
//!
//! Byte reads are *guarded and zero-copy*: [`Sma::with_bytes`] resolves
//! the slot once under the shard lock, pins an SMR read guard (see
//! [`crate::smr`]), and hands the caller a borrowed `&[u8]` straight
//! into the slab page — no copy, no retry loop, no locked fallback.
//! Frees that race an active guard defer to a per-page *limbo* list and
//! only recycle once every reader epoch has advanced. Reclamation
//! quiesces magazines with a steal-back protocol (documented in the
//! reclaim module), so parked pages remain fully reclaimable; pages
//! readers may still observe park on the SMA's limbo list instead and
//! reach the depot after their grace period.
//!
//! Pages parked in magazines and the depot still count against
//! `held_pages`: moving a frame between a heap, a magazine, and the
//! depot never changes machine-level accounting, only its parking spot.

mod metrics;
mod reclaim_impl;

pub use metrics::SmaMetrics;
pub use reclaim_impl::{ReclaimReport, SdsContribution};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use softmem_telemetry::{Gauge, Timer};

use crate::budget::BudgetSource;
use crate::config::SmaConfig;
use crate::error::{SoftError, SoftResult};
use crate::handle::{AllocKind, Priority, RawHandle, SdsId, SoftHandle, SoftSlot, SoftView};
use crate::heap::{drop_fn_for, DropFn, FreeOutcome, HeapStats, SdsHeap, SlabPage, MAX_SLAB_ALLOC};
use crate::page::{FrameDepot, PageFrame, PagePool};
use crate::smr::{ReadGuard, SmrRegistry};
use crate::stats::SmaStats;

/// How many times an allocation retries after budget grants before
/// giving up (guards against a budget source that grants tiny amounts
/// forever).
const MAX_BUDGET_RETRIES: usize = 8;

/// Largest single allocation the SMA accepts (1 GiB). Bigger requests
/// are almost certainly arithmetic bugs; failing them early with
/// [`SoftError::AllocTooLarge`] beats asking the daemon to reclaim
/// the whole machine.
pub const MAX_ALLOC_BYTES: usize = 1 << 30;

/// A data structure's hook for SMA-driven reclamation.
///
/// The SMA's reclamation is two-tiered (§3.1): the SMA picks SDSs in
/// ascending priority order; each chosen SDS picks *which allocations*
/// to give up (oldest first, least-recently-used first, everything —
/// whatever its engineer decided) by freeing them through the normal
/// allocator API.
///
/// Implementations are called **without** any SMA lock held and free
/// through the regular `Sma` methods. They should keep freeing until
/// roughly `bytes` bytes are freed or they run out of allocations.
pub trait SdsReclaimer: Send + Sync {
    /// Frees about `bytes` bytes of this SDS's soft allocations,
    /// returning the bytes actually freed (0 ⇒ nothing left to give).
    fn reclaim(&self, bytes: usize) -> usize;
}

impl<F> SdsReclaimer for F
where
    F: Fn(usize) -> usize + Send + Sync,
{
    fn reclaim(&self, bytes: usize) -> usize {
        self(bytes)
    }
}

/// Per-SDS snapshot returned by [`Sma::sds_stats`].
#[derive(Debug, Clone)]
pub struct SdsStats {
    /// SDS id.
    pub id: SdsId,
    /// Debug name given at registration.
    pub name: String,
    /// Current reclamation priority.
    pub priority: Priority,
    /// Whether this SDS demotes evictions into a cold tier (see
    /// [`Sma::set_demotable`]) — reclamation visits it earlier within
    /// its priority class because squeezing it loses no data.
    pub demotes: bool,
    /// Heap accounting.
    pub heap: HeapStats,
    /// Wholly-free pages parked in this SDS's magazine.
    pub magazine_pages: usize,
    /// Depot→magazine refill events on this SDS's alloc fast path.
    pub magazine_refills: u64,
    /// Pages reclamation stole back out of this SDS's magazine.
    pub magazine_steal_backs: u64,
}

/// The dynamically named per-SDS gauges (`sds{i}_magazine_pages` …).
/// All writes happen under the owning shard's lock, so plain `set` is
/// race-free; the gauges are zeroed when the SDS is destroyed and when
/// its registry index is recycled.
pub(crate) struct SdsGauges {
    pub(crate) magazine_pages: Arc<Gauge>,
    pub(crate) magazine_refills: Arc<Gauge>,
    pub(crate) magazine_steal_backs: Arc<Gauge>,
}

impl SdsGauges {
    fn new(registry: &softmem_telemetry::Registry, idx: usize) -> Self {
        SdsGauges {
            magazine_pages: registry.gauge(&format!("sds{idx}_magazine_pages")),
            magazine_refills: registry.gauge(&format!("sds{idx}_magazine_refills")),
            magazine_steal_backs: registry.gauge(&format!("sds{idx}_magazine_steal_backs")),
        }
    }

    fn reset(&self) {
        self.magazine_pages.set(0);
        self.magazine_refills.set(0);
        self.magazine_steal_backs.set(0);
    }
}

/// The lock-protected half of one SDS shard.
pub(crate) struct SdsState {
    pub(crate) name: String,
    pub(crate) priority: Priority,
    /// True when this SDS's reclaimer demotes evicted values into a
    /// cold tier instead of destroying them. Evicting from such an SDS
    /// is near-zero-disturbance (the data survives, compressed), so
    /// tier-3 reclamation prefers it over non-demoting peers of the
    /// same priority.
    pub(crate) demotes: bool,
    pub(crate) heap: SdsHeap,
    /// This SDS's magazine: wholly-free frames kept for lock-free
    /// (global-lock-free) re-allocation. Capacity is
    /// [`SmaConfig::sds_retain_pages`].
    pub(crate) magazine: Vec<PageFrame>,
    pub(crate) reclaimer: Option<Arc<dyn SdsReclaimer>>,
    /// Pages this SDS's frees sent straight back to the OS (retention
    /// overflow and span releases). Tier-3 reclamation reads the delta
    /// across a callback to credit the *target* SDS exactly — a global
    /// counter would cross-attribute pages between concurrent
    /// reclamation passes and double-shrink the budget.
    pub(crate) pages_auto_released: u64,
    /// Depot→magazine refill events (alloc fast-path depot pulls).
    pub(crate) magazine_refills: u64,
    /// Pages reclamation stole back out of the magazine.
    pub(crate) magazine_steal_backs: u64,
    /// Set by [`Sma::destroy_sds`] under this lock. In-flight
    /// operations that captured the shard `Arc` before the registry
    /// entry was removed observe it and bail instead of touching a
    /// dismantled heap.
    pub(crate) dead: bool,
    pub(crate) gauges: SdsGauges,
}

/// One SDS's shard: its state lock plus the lock-free reclaim guard.
pub(crate) struct SdsShard {
    pub(crate) id: SdsId,
    /// Held (CAS true) by the reclamation pass currently squeezing this
    /// SDS in tier 3. Concurrent [`Sma::reclaim`] calls skip a guarded
    /// SDS instead of queueing behind its callback, so reclamations
    /// targeting different SDSs proceed in parallel. Lives outside the
    /// state mutex by design: it is read/written around the *unlocked*
    /// callback section.
    pub(crate) reclaim_guard: AtomicBool,
    pub(crate) state: Mutex<SdsState>,
}

/// The global slow-path state: budget arithmetic and the OS interface.
/// Taken only on depot misses, page releases, budget changes, and
/// reclamation bookkeeping — never on the alloc/free/read fast paths.
pub(crate) struct SmaInner {
    /// Current soft budget in pages (held + slack).
    pub(crate) budget_pages: usize,
    /// Pages physically held (heaps + magazines + depot).
    pub(crate) held_pages: usize,
    pub(crate) reclaims_total: u64,
    pub(crate) pages_reclaimed_total: u64,
    pub(crate) budget_granted_total: u64,
    /// The OS interface owning the frame arenas.
    pub(crate) pool: PagePool,
}

impl Drop for SmaInner {
    fn drop(&mut self) {
        // Return the machine claims of every physically held page
        // (depot + magazines + SDS heaps): the frames themselves are
        // arena leases the pool recovers, but the machine model must
        // see the capacity come back when the process exits.
        self.pool.machine().release(self.held_pages);
    }
}

/// A page detached from its heap while readers may still observe its
/// slots: recycled by [`Sma`]'s limbo flush once the SMR registry
/// clears `retire_epoch`.
struct LimboPage {
    page: SlabPage,
    retire_epoch: u64,
}

/// A whole heap detached by a non-blocking [`Sma::destroy_sds`] while
/// readers may still observe its slots: destroyed (destructors run,
/// frames recycled) by the limbo flush once the SMR registry clears
/// `retire_epoch`. Keeping the heap intact — rather than waiting for
/// the guards — means destroy never blocks behind a parked reader.
struct LimboHeap {
    heap: SdsHeap,
    /// `heap.held_pages()` at park time, for the limbo-page gauge.
    pages: usize,
    retire_epoch: u64,
}

#[derive(Default)]
struct LimboState {
    pages: Vec<LimboPage>,
    heaps: Vec<LimboHeap>,
}

/// The SMA-level limbo list. A newtype so teardown can run the parked
/// entries' deferred destructors: by the time the allocator drops, no
/// guard can be live (guards borrow the `Sma` through their closures),
/// so draining is safe.
#[derive(Default)]
struct LimboList(Mutex<LimboState>);

impl Drop for LimboList {
    fn drop(&mut self) {
        let st = self.0.get_mut();
        for lp in st.pages.drain(..) {
            let _frame = lp.page.drain_limbo_and_take_frame();
        }
        // Parked heaps drop in place: `SdsHeap::drop` runs the
        // remaining payload destructors.
        st.heaps.clear();
    }
}

/// The Soft Memory Allocator for one process.
///
/// Thread-safe: share it with `Arc<Sma>`. Access closures passed to
/// [`Sma::with_value`] and friends run under the owning SDS's shard
/// lock (not a global lock) and must not call back into the same `Sma`
/// for the same SDS; [`Sma::with_bytes`] runs its closure on a
/// borrowed slice protected by an SMR read guard, with no lock held at
/// all.
pub struct Sma {
    // Field order is drop order: shards (heaps, magazines), the depot
    // and the limbo list hold arena leases, so they must drop before
    // `inner` (the pool owning the arenas).
    registry: RwLock<Vec<Option<Arc<SdsShard>>>>,
    /// The process-global free pool: a lock-free fixed-capacity depot
    /// of idle, backed page frames.
    depot: FrameDepot,
    /// Epoch registry backing guarded zero-copy reads.
    smr: Arc<SmrRegistry>,
    /// Pages harvested from heaps while a guard could still observe
    /// them; flushed to the depot once their retirement horizon clears.
    limbo: LimboList,
    /// Mirror of `limbo`'s length, readable without the limbo lock
    /// (stats, fast emptiness checks). Updated under the limbo lock.
    limbo_len: AtomicUsize,
    pub(crate) inner: Mutex<SmaInner>,
    pub(crate) cfg: SmaConfig,
    budget_source: RwLock<Option<Arc<dyn BudgetSource>>>,
    pub(crate) metrics: SmaMetrics,
    /// Ground truth for `SmaStats::magazine_refills_total`: unlike the
    /// per-SDS counters, survives SDS destruction.
    magazine_refills_total: AtomicU64,
    /// Ground truth for `SmaStats::magazine_steal_backs_total`.
    magazine_steal_backs_total: AtomicU64,
}

impl Sma {
    /// Creates an allocator with the given configuration.
    pub fn with_config(cfg: SmaConfig) -> Arc<Self> {
        // The PagePool's own cache is disabled: the SMA's depot *is*
        // the process-level cache, and budget accounting covers it.
        let pool = PagePool::new(Arc::clone(&cfg.machine), 0);
        let depot = FrameDepot::new(cfg.free_pool_retain_pages);
        let sma = Arc::new(Sma {
            registry: RwLock::new(Vec::new()),
            depot,
            smr: Arc::new(SmrRegistry::new()),
            limbo: LimboList::default(),
            limbo_len: AtomicUsize::new(0),
            inner: Mutex::new(SmaInner {
                budget_pages: cfg.initial_budget_pages,
                held_pages: 0,
                reclaims_total: 0,
                pages_reclaimed_total: 0,
                budget_granted_total: 0,
                pool,
            }),
            cfg,
            budget_source: RwLock::new(None),
            metrics: SmaMetrics::new(),
            magazine_refills_total: AtomicU64::new(0),
            magazine_steal_backs_total: AtomicU64::new(0),
        });
        sma.metrics.sync_occupancy(&sma.inner.lock());
        sma
    }

    /// Creates an allocator on a private, effectively unbounded machine
    /// with `budget_pages` of budget — convenient for tests and
    /// standalone examples.
    pub fn standalone(budget_pages: usize) -> Arc<Self> {
        Self::with_config(SmaConfig::for_testing(budget_pages))
    }

    /// The machine model this allocator draws physical pages from.
    pub fn machine(&self) -> &Arc<crate::page::MachineMemory> {
        &self.cfg.machine
    }

    /// Attaches the budget source consulted when allocations exceed the
    /// current budget (set by the daemon client at registration).
    pub fn set_budget_source(&self, source: Arc<dyn BudgetSource>) {
        *self.budget_source.write() = Some(source);
    }

    /// Detaches the budget source (daemon disconnect).
    pub fn clear_budget_source(&self) {
        *self.budget_source.write() = None;
    }

    /// This allocator's telemetry registry — lock-free mirrors the
    /// testkit certifies against [`Sma::stats`] ground truth.
    pub fn metrics(&self) -> &SmaMetrics {
        &self.metrics
    }

    /// Adds `pages` to the soft budget (a grant pushed by the daemon).
    ///
    /// One critical section, no other locks taken: safe to call from a
    /// [`BudgetSource`] callback re-entering the SMA mid-allocation.
    pub fn grow_budget(&self, pages: usize) {
        let inner = &mut *self.inner.lock();
        inner.budget_pages += pages;
        inner.budget_granted_total += pages as u64;
        self.metrics.budget_granted_total.add(pages as u64);
        self.metrics.sync_occupancy(inner);
    }

    /// Voluntarily returns up to `pages` of unused budget (slack only;
    /// held pages are untouched). Returns the pages actually shed —
    /// the caller hands them back to the daemon.
    ///
    /// Like [`Sma::grow_budget`], a single critical section that is
    /// safe to call from a re-entrant [`BudgetSource`] callback.
    pub fn shrink_budget(&self, pages: usize) -> usize {
        let inner = &mut *self.inner.lock();
        let slack = inner.budget_pages.saturating_sub(inner.held_pages);
        let take = slack.min(pages);
        inner.budget_pages -= take;
        self.metrics.sync_occupancy(inner);
        take
    }

    /// Current budget in pages.
    pub fn budget_pages(&self) -> usize {
        self.inner.lock().budget_pages
    }

    /// Pages physically held by soft memory (heaps + magazines +
    /// depot).
    pub fn held_pages(&self) -> usize {
        self.inner.lock().held_pages
    }

    // ------------------------------------------------------------------
    // SDS registry
    // ------------------------------------------------------------------

    /// Looks up the shard for `id`. Clones the `Arc` (instead of
    /// holding the registry read lock across the operation) so a
    /// long-running shard operation never blocks `destroy_sds` on an
    /// unrelated SDS.
    pub(crate) fn shard(&self, id: SdsId) -> SoftResult<Arc<SdsShard>> {
        self.registry
            .read()
            .get(id.index() as usize)
            .and_then(|slot| slot.as_ref().map(Arc::clone))
            .ok_or(SoftError::UnknownSds(id))
    }

    /// Every live shard, in registration order.
    pub(crate) fn shards(&self) -> Vec<Arc<SdsShard>> {
        self.registry.read().iter().flatten().cloned().collect()
    }

    /// Registers a Soft Data Structure, giving it an isolated heap and
    /// an empty magazine.
    pub fn register_sds(&self, name: impl Into<String>, priority: Priority) -> SdsId {
        let mut registry = self.registry.write();
        let idx = registry
            .iter()
            .position(Option::is_none)
            .unwrap_or(registry.len());
        let id = SdsId(idx as u32);
        let gauges = SdsGauges::new(self.metrics.registry(), idx);
        gauges.reset();
        let shard = Arc::new(SdsShard {
            id,
            reclaim_guard: AtomicBool::new(false),
            state: Mutex::new(SdsState {
                name: name.into(),
                priority,
                demotes: false,
                heap: SdsHeap::new(id),
                magazine: Vec::with_capacity(self.cfg.sds_retain_pages),
                reclaimer: None,
                pages_auto_released: 0,
                magazine_refills: 0,
                magazine_steal_backs: 0,
                dead: false,
                gauges,
            }),
        });
        if idx == registry.len() {
            registry.push(Some(shard));
        } else {
            registry[idx] = Some(shard);
        }
        id
    }

    /// Installs the reclaimer invoked when the SMA orders this SDS to
    /// give up memory. SDS implementations call this from their
    /// constructors.
    pub fn set_reclaimer(&self, id: SdsId, reclaimer: Arc<dyn SdsReclaimer>) -> SoftResult<()> {
        let shard = self.shard(id)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(id));
        }
        st.reclaimer = Some(reclaimer);
        Ok(())
    }

    /// Updates an SDS's reclamation priority.
    pub fn set_priority(&self, id: SdsId, priority: Priority) -> SoftResult<()> {
        let shard = self.shard(id)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(id));
        }
        st.priority = priority;
        Ok(())
    }

    /// Marks an SDS as *demoting*: its reclaim callback moves evicted
    /// values into a cold tier instead of destroying them, so evicting
    /// from it is near-zero-disturbance. Tier-3 reclamation visits
    /// demoting SDSs before non-demoting peers of the same priority
    /// (priority itself still dominates — the paper's contract that
    /// low-priority SDSs are squeezed first is unchanged).
    pub fn set_demotable(&self, id: SdsId, demotes: bool) -> SoftResult<()> {
        let shard = self.shard(id)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(id));
        }
        st.demotes = demotes;
        Ok(())
    }

    /// Unregisters an SDS, dropping all its live allocations and
    /// recycling its pages (magazine included) into the depot / OS.
    pub fn destroy_sds(&self, id: SdsId) -> SoftResult<()> {
        let shard = {
            let mut registry = self.registry.write();
            registry
                .get_mut(id.index() as usize)
                .and_then(Option::take)
                .ok_or(SoftError::UnknownSds(id))?
        };
        let mut st = shard.state.lock();
        st.dead = true;
        let magazine: Vec<PageFrame> = st.magazine.drain(..).collect();
        self.metrics.magazine_pages.add(-(magazine.len() as i64));
        let heap = std::mem::replace(&mut st.heap, SdsHeap::new(id));
        st.gauges.reset();
        drop(st);
        // A zero-copy reader that resolved before `dead` was set may
        // still hold a borrow into this heap, and destroy must not
        // wait it out (a guard can legally be parked for a long time).
        // Under active guards the intact heap is parked in limbo
        // instead — destructors deferred, pages still held — and the
        // first flush after the guards drop finishes the teardown.
        // Magazine frames hold no observable bytes, so they recycle
        // immediately either way.
        let (frames, spans) = if self.smr.active_guards() > 0 && heap.held_pages() > 0 {
            let retire_epoch = self.smr.retire();
            self.note_guard_stall();
            self.park_limbo_heap(heap, retire_epoch);
            (Vec::new(), Vec::new())
        } else {
            heap.destroy()
        };
        let mut to_os = Vec::new();
        for frame in magazine.into_iter().chain(frames) {
            match self.depot.push(frame) {
                Ok(()) => self.metrics.free_pool_pages.add(1),
                Err(frame) => to_os.push(frame),
            }
        }
        if !to_os.is_empty() || !spans.is_empty() {
            let inner = &mut *self.inner.lock();
            for frame in to_os {
                inner.pool.release_to_os(frame);
                inner.held_pages -= 1;
            }
            for span in spans {
                inner.held_pages -= span.pages();
                inner.pool.release_span(span);
            }
            self.metrics.sync_occupancy(inner);
        }
        self.flush_limbo_pages();
        Ok(())
    }

    /// Snapshot of one SDS's accounting.
    pub fn sds_stats(&self, id: SdsId) -> SoftResult<SdsStats> {
        let shard = self.shard(id)?;
        let st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(id));
        }
        Ok(Self::snapshot_sds(&shard, &st))
    }

    /// Snapshot of every registered SDS, in registration order. The
    /// testkit's metrics-consistency family uses this to cross-check
    /// the per-SDS magazine gauges.
    pub fn all_sds_stats(&self) -> Vec<SdsStats> {
        self.shards()
            .iter()
            .filter_map(|shard| {
                let st = shard.state.lock();
                if st.dead {
                    None
                } else {
                    Some(Self::snapshot_sds(shard, &st))
                }
            })
            .collect()
    }

    fn snapshot_sds(shard: &SdsShard, st: &SdsState) -> SdsStats {
        SdsStats {
            id: shard.id,
            name: st.name.clone(),
            priority: st.priority,
            demotes: st.demotes,
            heap: st.heap.stats(),
            magazine_pages: st.magazine.len(),
            magazine_refills: st.magazine_refills,
            magazine_steal_backs: st.magazine_steal_backs,
        }
    }

    // ------------------------------------------------------------------
    // Magazine / depot plumbing
    // ------------------------------------------------------------------

    /// Pops a frame from the shard's magazine, maintaining the gauges.
    fn magazine_pop(&self, st: &mut SdsState) -> Option<PageFrame> {
        let frame = st.magazine.pop()?;
        self.metrics.magazine_pages.add(-1);
        st.gauges.magazine_pages.set(st.magazine.len() as i64);
        Some(frame)
    }

    /// Pops a frame from the global depot, maintaining its gauge.
    pub(crate) fn depot_pop(&self) -> Option<PageFrame> {
        let frame = self.depot.pop()?;
        self.metrics.free_pool_pages.add(-1);
        Some(frame)
    }

    /// Parks a harvested wholly-free frame: magazine (up to capacity) →
    /// depot → `to_os` (the caller releases those under the slow-path
    /// lock).
    fn park_frame(&self, st: &mut SdsState, frame: PageFrame, to_os: &mut Vec<PageFrame>) {
        if st.magazine.len() < self.cfg.sds_retain_pages {
            st.magazine.push(frame);
            self.metrics.magazine_pages.add(1);
            st.gauges.magazine_pages.set(st.magazine.len() as i64);
        } else {
            match self.depot.push(frame) {
                Ok(()) => self.metrics.free_pool_pages.add(1),
                Err(frame) => to_os.push(frame),
            }
        }
    }

    /// Steals up to `want` parked pages out of the shard's magazine —
    /// the reclamation *steal-back* protocol. Caller holds the shard
    /// lock and releases the frames under the slow-path lock.
    pub(crate) fn steal_magazine(&self, st: &mut SdsState, want: usize) -> Vec<PageFrame> {
        let steal = st.magazine.len().min(want);
        if steal == 0 {
            return Vec::new();
        }
        let at = st.magazine.len() - steal;
        let frames: Vec<PageFrame> = st.magazine.drain(at..).collect();
        st.magazine_steal_backs += steal as u64;
        st.gauges.magazine_pages.set(st.magazine.len() as i64);
        st.gauges
            .magazine_steal_backs
            .set(st.magazine_steal_backs as i64);
        self.metrics.magazine_pages.add(-(steal as i64));
        self.magazine_steal_backs_total
            .fetch_add(steal as u64, Ordering::Relaxed);
        self.metrics.magazine_steal_backs_total.add(steal as u64);
        frames
    }

    // ------------------------------------------------------------------
    // SMR plumbing
    // ------------------------------------------------------------------

    /// Pins an SMR read guard. While the guard lives, no slot retired
    /// at or after its epoch is recycled. [`Sma::with_bytes`] pins
    /// internally; this entry point exists for tests and harnesses
    /// that need to hold a guard across other operations (the
    /// stalled-reader campaign).
    pub fn pin(&self) -> ReadGuard {
        self.smr.pin()
    }

    /// The allocator's SMR registry (tests / diagnostics).
    pub fn smr(&self) -> &Arc<SmrRegistry> {
        &self.smr
    }

    /// Pages currently parked on the SMA limbo list (ground truth for
    /// the `smr_limbo_pages` gauge).
    pub fn limbo_pages(&self) -> usize {
        self.limbo_len.load(Ordering::Relaxed)
    }

    /// Records one guard-induced stall in both the SMR ground truth
    /// and its telemetry mirror.
    pub(crate) fn note_guard_stall(&self) {
        self.smr.note_stall();
        self.metrics.smr_guard_stalls_total.add(1);
    }

    /// Retires everything invalidated so far and blocks until no other
    /// thread's guard can observe it. Used by in-place writers (their
    /// grace period before mutating bytes a zero-copy reader may be
    /// borrowing) and by destructive paths (SDS destroy) that are
    /// about to run destructors and recycle frames without limbo
    /// indirection. One atomic load when no guard is active.
    fn synchronize_readers(&self) {
        if self.smr.active_guards() == 0 {
            return;
        }
        let e = self.smr.retire();
        if !self.smr.safe_excluding_self(e) {
            self.note_guard_stall();
        }
        self.smr.synchronize(e);
    }

    /// Parks heap-detached pages on the SMA limbo list (reclamation's
    /// deferred-harvest stage).
    pub(crate) fn park_limbo_pages(&self, pages: Vec<(SlabPage, u64)>) {
        if pages.is_empty() {
            return;
        }
        let n = pages.len() as i64;
        let mut limbo = self.limbo.0.lock();
        for (page, retire_epoch) in pages {
            limbo.pages.push(LimboPage { page, retire_epoch });
        }
        let total = Self::limbo_page_total(&limbo);
        self.limbo_len.store(total, Ordering::Relaxed);
        drop(limbo);
        self.metrics.smr_limbo_pages.add(n);
    }

    /// Parks a whole detached heap (non-blocking SDS destroy under
    /// active guards) on the SMA limbo list.
    fn park_limbo_heap(&self, heap: SdsHeap, retire_epoch: u64) {
        let pages = heap.held_pages();
        let mut limbo = self.limbo.0.lock();
        limbo.heaps.push(LimboHeap {
            heap,
            pages,
            retire_epoch,
        });
        let total = Self::limbo_page_total(&limbo);
        self.limbo_len.store(total, Ordering::Relaxed);
        drop(limbo);
        self.metrics.smr_limbo_pages.add(pages as i64);
    }

    /// Pages across both kinds of limbo entry (ground truth for the
    /// `smr_limbo_pages` gauge).
    fn limbo_page_total(limbo: &LimboState) -> usize {
        limbo.pages.len() + limbo.heaps.iter().map(|h| h.pages).sum::<usize>()
    }

    /// Returns every limbo entry whose retirement horizon has cleared
    /// to the depot (overflow goes to the OS under the global lock),
    /// running its deferred destructors. Cheap no-op when the list is
    /// empty.
    pub(crate) fn flush_limbo_pages(&self) {
        if self.limbo_len.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut freed_pages = Vec::new();
        let mut freed_heaps = Vec::new();
        {
            let mut limbo = self.limbo.0.lock();
            let mut i = 0;
            while i < limbo.pages.len() {
                if self.smr.safe_to_reclaim(limbo.pages[i].retire_epoch) {
                    freed_pages.push(limbo.pages.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            let mut i = 0;
            while i < limbo.heaps.len() {
                if self.smr.safe_to_reclaim(limbo.heaps[i].retire_epoch) {
                    freed_heaps.push(limbo.heaps.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            let total = Self::limbo_page_total(&limbo);
            self.limbo_len.store(total, Ordering::Relaxed);
        }
        if freed_pages.is_empty() && freed_heaps.is_empty() {
            return;
        }
        let cleared = freed_pages.len() + freed_heaps.iter().map(|h| h.pages).sum::<usize>();
        self.metrics.smr_limbo_pages.add(-(cleared as i64));
        let mut to_os = Vec::new();
        let mut spans = Vec::new();
        for lp in freed_pages {
            let frame = lp.page.drain_limbo_and_take_frame();
            match self.depot.push(frame) {
                Ok(()) => self.metrics.free_pool_pages.add(1),
                Err(frame) => to_os.push(frame),
            }
        }
        for lh in freed_heaps {
            let (frames, heap_spans) = lh.heap.destroy();
            for frame in frames {
                match self.depot.push(frame) {
                    Ok(()) => self.metrics.free_pool_pages.add(1),
                    Err(frame) => to_os.push(frame),
                }
            }
            spans.extend(heap_spans);
        }
        if !to_os.is_empty() || !spans.is_empty() {
            let inner = &mut *self.inner.lock();
            for frame in to_os {
                inner.pool.release_to_os(frame);
                inner.held_pages -= 1;
            }
            for span in spans {
                inner.held_pages -= span.pages();
                inner.pool.release_span(span);
            }
            self.metrics.sync_occupancy(inner);
        }
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates `len` bytes of soft memory in `sds` — the `soft_malloc`
    /// of the paper's API.
    ///
    /// If the budget is insufficient and a budget source is attached,
    /// the SMA requests more budget (in configured chunks, so daemon
    /// round-trips amortise over many allocations) and retries.
    pub fn alloc_bytes(&self, sds: SdsId, len: usize) -> SoftResult<SoftHandle> {
        let raw = self.alloc_retrying(sds, len.max(1), None, |_| {})?;
        Ok(SoftHandle { raw, len })
    }

    /// Moves `value` into soft memory in `sds`.
    ///
    /// The value is dropped in place if the allocation is later
    /// reclaimed or freed without [`Sma::take_value`].
    ///
    /// # Examples
    ///
    /// ```
    /// use softmem_core::{Priority, Sma, SoftError};
    ///
    /// let sma = Sma::standalone(16);
    /// let sds = sma.register_sds("data", Priority::default());
    /// let slot = sma.alloc_value(sds, String::from("soft"))?;
    /// assert_eq!(sma.with_value(&slot, |s| s.len())?, 4);
    /// let back = sma.take_value(slot)?;
    /// assert_eq!(back, "soft");
    /// # Ok::<(), SoftError>(())
    /// ```
    pub fn alloc_value<T: Send>(&self, sds: SdsId, value: T) -> SoftResult<SoftSlot<T>> {
        let len = std::mem::size_of::<T>().max(1);
        debug_assert!(std::mem::align_of::<T>() <= 64 || len > MAX_SLAB_ALLOC);
        let mut value = Some(value);
        let raw = self.alloc_retrying(sds, len, drop_fn_for::<T>(), |ptr| {
            // SAFETY: `ptr` addresses a fresh slot of at least
            // `size_of::<T>()` bytes, aligned to the slot size (≥ the
            // value's alignment); the value is moved in exactly once.
            unsafe { ptr.cast::<T>().write(value.take().expect("init runs once")) }
        })?;
        Ok(SoftSlot::new(raw))
    }

    /// Allocation with budget-growth retry, instrumented: counts every
    /// attempt, times one in [`softmem_telemetry::SAMPLE_EVERY`]
    /// (including any daemon round-trips the retry loop incurs), and
    /// counts terminal failures.
    fn alloc_retrying(
        &self,
        sds: SdsId,
        len: usize,
        drop_fn: Option<DropFn>,
        init: impl FnMut(*mut u8),
    ) -> SoftResult<RawHandle> {
        let timer = Timer::start_sampled(self.metrics.allocs_total.inc());
        let result = self.alloc_retrying_inner(sds, len, drop_fn, init);
        match &result {
            Ok(_) => timer.observe(&self.metrics.alloc_ns),
            Err(_) => self.metrics.alloc_failures_total.add(1),
        }
        result
    }

    /// Allocation with budget-growth retry. `init` runs under the shard
    /// lock immediately after the slot is carved out, so no reclamation
    /// can observe an uninitialised slot. The budget source is invoked
    /// with **no** SMA locks held, so a callback may re-enter the SMA
    /// (reclaim, shrink, even allocate) without deadlocking.
    fn alloc_retrying_inner(
        &self,
        sds: SdsId,
        len: usize,
        drop_fn: Option<DropFn>,
        mut init: impl FnMut(*mut u8),
    ) -> SoftResult<RawHandle> {
        let mut attempts = 0;
        loop {
            let shortfall = {
                match self.try_alloc(sds, len, drop_fn, &mut init) {
                    Ok(raw) => return Ok(raw),
                    Err(SoftError::BudgetExceeded {
                        requested_pages,
                        available_pages,
                    }) => requested_pages - available_pages.min(requested_pages),
                    Err(other) => return Err(other),
                }
            };
            attempts += 1;
            if attempts > MAX_BUDGET_RETRIES {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: shortfall,
                    available_pages: 0,
                });
            }
            let source = self.budget_source.read().clone();
            let Some(source) = source else {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: shortfall,
                    available_pages: 0,
                });
            };
            let want = shortfall.max(self.cfg.auto_grow_chunk_pages);
            let grant = source.grant_more(shortfall, want)?;
            if grant.pages == 0 {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: shortfall,
                    available_pages: 0,
                });
            }
            if !grant.already_applied {
                self.grow_budget(grant.pages);
            }
        }
    }

    /// One allocation attempt. Fast path: the shard lock only. The
    /// global lock is taken just for budget-checked page acquisition
    /// when both the magazine and the depot miss.
    fn try_alloc(
        &self,
        sds: SdsId,
        len: usize,
        drop_fn: Option<DropFn>,
        init: &mut impl FnMut(*mut u8),
    ) -> SoftResult<RawHandle> {
        if len > MAX_ALLOC_BYTES {
            return Err(SoftError::AllocTooLarge {
                requested: len,
                max: MAX_ALLOC_BYTES,
            });
        }
        let shard = self.shard(sds)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(sds));
        }
        if len > MAX_SLAB_ALLOC {
            // Span path: spans always come from the OS interface, so
            // this path is global-locked by nature (and rare).
            let pages = SdsHeap::pages_needed(len);
            let span = {
                let inner = &mut *self.inner.lock();
                if inner.held_pages + pages > inner.budget_pages {
                    return Err(SoftError::BudgetExceeded {
                        requested_pages: pages,
                        available_pages: inner.budget_pages.saturating_sub(inner.held_pages),
                    });
                }
                let span = inner.pool.acquire_span(pages)?;
                inner.held_pages += pages;
                self.metrics.sync_occupancy(inner);
                span
            };
            let raw = st.heap.insert_span(span, len, drop_fn);
            let (ptr, _) = st.heap.resolve(raw).expect("just inserted");
            init(ptr);
            return Ok(raw);
        }
        // Slab path, tried in escalating order of cost:
        // attached partial/free pages → magazine → depot (with a batch
        // refill) → budget-checked OS acquisition under the global
        // lock.
        match st.heap.alloc_slab(len, drop_fn, None) {
            Ok(raw) => {
                let (ptr, _) = st.heap.resolve(raw).expect("just allocated");
                init(ptr);
                return Ok(raw);
            }
            Err(SoftError::BudgetExceeded { .. }) => {}
            Err(other) => return Err(other),
        }
        let frame = if let Some(frame) = self.magazine_pop(&mut st) {
            frame
        } else if let Some(frame) = self.depot_pop() {
            // Refill event: pull a small batch while we are at the
            // depot anyway, so the next few allocations stay on the
            // magazine fast path.
            let room = self.cfg.sds_retain_pages.saturating_sub(st.magazine.len());
            let batch = room.min(self.cfg.sds_retain_pages / 2);
            for _ in 0..batch {
                match self.depot_pop() {
                    Some(extra) => {
                        st.magazine.push(extra);
                        self.metrics.magazine_pages.add(1);
                    }
                    None => break,
                }
            }
            st.gauges.magazine_pages.set(st.magazine.len() as i64);
            st.magazine_refills += 1;
            st.gauges.magazine_refills.set(st.magazine_refills as i64);
            self.magazine_refills_total.fetch_add(1, Ordering::Relaxed);
            self.metrics.magazine_refills_total.add(1);
            frame
        } else {
            let inner = &mut *self.inner.lock();
            if inner.held_pages + 1 > inner.budget_pages {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: 1,
                    available_pages: inner.budget_pages.saturating_sub(inner.held_pages),
                });
            }
            let frame = inner.pool.acquire()?;
            inner.held_pages += 1;
            self.metrics.sync_occupancy(inner);
            frame
        };
        let raw = st.heap.alloc_slab(len, drop_fn, Some(frame))?;
        let (ptr, _) = st.heap.resolve(raw).expect("just allocated");
        init(ptr);
        Ok(raw)
    }

    // ------------------------------------------------------------------
    // Freeing
    // ------------------------------------------------------------------

    /// Frees a byte allocation — the `soft_free` of the paper's API.
    pub fn free_bytes(&self, handle: SoftHandle) -> SoftResult<()> {
        self.free_raw(handle.raw, true).map(|_| ())
    }

    /// Frees a typed slot, dropping its value in place.
    pub fn free_value<T>(&self, slot: SoftSlot<T>) -> SoftResult<()> {
        self.free_raw(slot.raw, true).map(|_| ())
    }

    /// Moves the value out of a slot and frees it.
    pub fn take_value<T: Send>(&self, slot: SoftSlot<T>) -> SoftResult<T> {
        let shard = self.shard(slot.raw.sds)?;
        let value = {
            let mut st = shard.state.lock();
            if st.dead {
                return Err(SoftError::UnknownSds(slot.raw.sds));
            }
            let (ptr, _) = st.heap.resolve(slot.raw)?;
            // SAFETY: the slot is live (just resolved under the shard
            // lock) and holds an initialised `T` written by
            // `alloc_value`; the drop fn is disarmed before the slot is
            // freed, so the value is moved out exactly once and never
            // dropped in place.
            let value = unsafe { ptr.cast::<T>().read() };
            st.heap.disarm_drop(slot.raw).expect("slot verified live");
            value
        };
        // The handle was unique, but an SDS reclaimer may race this
        // free; the value is already moved out and its drop disarmed,
        // so losing that race is benign.
        let _ = self.free_raw(slot.raw, false);
        Ok(value)
    }

    pub(crate) fn free_raw(&self, raw: RawHandle, run_drop: bool) -> SoftResult<usize> {
        let timer = Timer::start_sampled(self.metrics.frees_total.inc());
        let shard = self.shard(raw.sds)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(raw.sds));
        }
        // Deferral decision, made under the shard lock that serialises
        // this free with every reader's resolve+pin: if any guard is
        // active the slot may be observed, so it parks in limbo (the
        // handle is revoked now; the memory and destructor wait out
        // the grace period). With no guard the free is immediate — the
        // pre-SMR fast path, byte for byte.
        let FreeOutcome {
            freed_bytes,
            released_span,
            page_now_free,
        } = if raw.kind == AllocKind::Slab && self.smr.active_guards() > 0 {
            let retire_epoch = self.smr.retire();
            st.heap.free_deferred(raw, run_drop, retire_epoch)?
        } else {
            st.heap.free(raw, run_drop)?
        };
        // Opportunistic slot-limbo flush: no-op unless earlier frees
        // deferred, in which case any slot whose readers have all
        // unpinned rejoins the free lists here.
        let flushed = if st.heap.limbo_slots() > 0 {
            let smr = &self.smr;
            st.heap.flush_limbo(&|e| smr.safe_to_reclaim(e))
        } else {
            0
        };
        let mut to_os = Vec::new();
        if page_now_free || (flushed > 0 && st.heap.wholly_free_pages() > 0) {
            for frame in st.heap.harvest_free_pages(0) {
                self.park_frame(&mut st, frame, &mut to_os);
            }
        }
        let mut auto_released = 0u64;
        if !to_os.is_empty() || released_span.is_some() {
            let inner = &mut *self.inner.lock();
            for frame in to_os {
                inner.pool.release_to_os(frame);
                inner.held_pages -= 1;
                auto_released += 1;
            }
            if let Some(span) = released_span {
                inner.held_pages -= span.pages();
                auto_released += span.pages() as u64;
                inner.pool.release_span(span);
            }
            self.metrics.sync_occupancy(inner);
        }
        st.pages_auto_released += auto_released;
        drop(st);
        // Page-level limbo drains on the same cadence (no-op when the
        // list is empty, which is the steady state).
        self.flush_limbo_pages();
        timer.observe(&self.metrics.free_ns);
        Ok(freed_bytes)
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Reads the bytes of an allocation — **zero-copy**.
    ///
    /// Slab-sized reads resolve the slot once under the shard lock,
    /// pin an SMR read guard ([`crate::smr`]), release the lock, and
    /// pass a borrowed `&[u8]` pointing straight into the slab page to
    /// `f`. No bytes are copied, there is no retry loop and no locked
    /// fallback. The guard keeps the borrow valid: a free that races
    /// the read parks the slot in limbo (revoking the handle but
    /// leaving the bytes and destructor untouched) until every guard
    /// pinned at or before the retirement has dropped, and writers
    /// wait out the same grace period before mutating in place — so a
    /// guarded reader never observes torn bytes, recycled memory, or
    /// bytes from a later generation.
    ///
    /// Consequently a read that starts on a live handle always
    /// completes: [`SoftError::Reclaimed`] is never surfaced to a
    /// guarded reader. A handle that is stale *before* the read starts
    /// fails with [`SoftError::Revoked`] as always. Span allocations
    /// use a locked read instead: span memory really is returned to
    /// the OS interface on free, so the shard lock (which serialises
    /// span frees) is the cheapest way to keep the borrow valid.
    ///
    /// Keep `f` short, and do not call back into this `Sma` from
    /// inside it: while the guard is pinned, frees anywhere on the
    /// allocator defer and in-place writers grace-wait, so a re-entrant
    /// call can deadlock against a writer already waiting on this very
    /// guard. Concurrent frees, writes, reclamation, and destroys from
    /// *other* threads are all safe — that is the point.
    pub fn with_bytes<R>(&self, handle: &SoftHandle, f: impl FnOnce(&[u8]) -> R) -> SoftResult<R> {
        let shard = self.shard(handle.raw.sds)?;
        if handle.raw.kind == AllocKind::Span {
            let st = shard.state.lock();
            if st.dead {
                return Err(SoftError::UnknownSds(handle.raw.sds));
            }
            let (ptr, len) = st.heap.resolve(handle.raw)?;
            // SAFETY: the span is live and `len` bytes long; the shard
            // lock is held for the closure's duration, so no
            // free/reclaim can race.
            let bytes = unsafe { std::slice::from_raw_parts(ptr, len) };
            return Ok(f(bytes));
        }
        let (ptr, len, _guard) = {
            let st = shard.state.lock();
            if st.dead {
                return Err(SoftError::UnknownSds(handle.raw.sds));
            }
            let (ptr, len) = st.heap.resolve(handle.raw)?;
            // Pin *before* releasing the lock: frees take this lock,
            // so any free of this slot orders after the pin and will
            // defer (or wait) on the guard.
            (ptr, len, self.smr.pin())
        };
        // SAFETY: the slot was live when resolved under the shard
        // lock and the pinned guard was published before the lock was
        // released, so every subsequent free of this slot defers to
        // limbo (bytes and destructor untouched) and every in-place
        // writer waits for the guard — the slice stays valid and
        // unaliased-by-writers for the closure's whole run.
        let bytes = unsafe { std::slice::from_raw_parts(ptr, len) };
        Ok(f(bytes))
    }

    /// Mutates the bytes of an allocation. Runs under the shard lock
    /// and bumps the slot's write epoch; if any SMR read guard is
    /// active the writer first waits out the grace period, so a
    /// guarded zero-copy reader never observes a torn buffer.
    pub fn with_bytes_mut<R>(
        &self,
        handle: &SoftHandle,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> SoftResult<R> {
        let shard = self.shard(handle.raw.sds)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(handle.raw.sds));
        }
        let (ptr, len) = st.heap.resolve_for_write(handle.raw)?;
        self.synchronize_readers();
        // SAFETY: the slot is live and `len` bytes long; exclusivity
        // holds because handles are unique, the shard lock blocks all
        // other locked access paths into this SDS, and the grace wait
        // above outlasts every guarded zero-copy reader that resolved
        // before we took the lock.
        let bytes = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
        Ok(f(bytes))
    }

    /// Reads a typed value. The closure runs under the owning SDS's
    /// shard lock (not a global lock): keep it short and do not call
    /// back into the same SDS.
    pub fn with_value<T, R>(&self, slot: &SoftSlot<T>, f: impl FnOnce(&T) -> R) -> SoftResult<R> {
        self.with_raw_value(slot.raw, f)
    }

    /// Reads a typed value like [`Sma::with_value`], but releases the
    /// shard lock before running `f`, so a slow reader — an eviction
    /// callback charged with per-entry cleanup cost, say — does not
    /// serialise the SDS's other operations behind it.
    ///
    /// After `f` returns, the slot's generation is revalidated under
    /// the shard lock: if the allocation was freed, reclaimed, or its
    /// SDS destroyed while `f` ran, the result is discarded and
    /// [`SoftError::Reclaimed`] is returned, so the caller can never
    /// act on data whose backing slot died mid-read.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the slot is not *written* for the
    /// duration of the call (reads of a torn value would be undefined
    /// behaviour for most `T`). In practice that means the caller
    /// exclusively owns the slot (it is unreachable from any shared
    /// structure) or holds the owning container's lock. Frees are
    /// tolerated: a guard pinned before the lock is released parks a
    /// racing free in limbo — the value and its destructor stay intact
    /// while `f` runs — and the revalidation then reports `Reclaimed`
    /// exactly once, to this caller.
    pub unsafe fn with_value_exclusive<T, R>(
        &self,
        slot: &SoftSlot<T>,
        f: impl FnOnce(&T) -> R,
    ) -> SoftResult<R> {
        let shard = self.shard(slot.raw.sds)?;
        let (ptr, guard) = {
            let st = shard.state.lock();
            if st.dead {
                return Err(SoftError::UnknownSds(slot.raw.sds));
            }
            let (ptr, _) = st.heap.resolve(slot.raw)?;
            // Pin before unlocking, exactly as `with_bytes` does: a
            // free racing `f` defers the slot to limbo instead of
            // running its destructor under the reader.
            (ptr, self.smr.pin())
        };
        // SAFETY: live slot holding an initialised `T` (written by
        // `alloc_value`). The lock is released, but the caller's
        // contract rules out concurrent writes, and the guard keeps a
        // racing free from dropping the value or recycling the slot.
        let value = unsafe { &*ptr.cast::<T>() };
        let result = f(value);
        // Drop the guard *before* re-taking the shard lock: a writer
        // may be grace-waiting on this guard while holding that lock,
        // and relocking with the guard still pinned would deadlock.
        // `f` is done, so nothing dereferences the slot past here.
        drop(guard);
        let st = shard.state.lock();
        if st.dead || st.heap.resolve(slot.raw).is_err() {
            return Err(SoftError::Reclaimed);
        }
        Ok(result)
    }

    /// Mutates a typed value. Runs under the shard lock, waits out any
    /// guarded readers, and bumps the slot's write epoch (see
    /// [`Sma::with_bytes_mut`]).
    pub fn with_value_mut<T, R>(
        &self,
        slot: &mut SoftSlot<T>,
        f: impl FnOnce(&mut T) -> R,
    ) -> SoftResult<R> {
        let shard = self.shard(slot.raw.sds)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(slot.raw.sds));
        }
        let (ptr, _) = st.heap.resolve_for_write(slot.raw)?;
        self.synchronize_readers();
        // SAFETY: live slot holding an initialised `T` (written by
        // `alloc_value`); `&mut` exclusivity per `with_bytes_mut`.
        let value = unsafe { &mut *ptr.cast::<T>() };
        Ok(f(value))
    }

    /// Reads a typed value through a shared view.
    pub fn with_view<T, R>(&self, view: &SoftView<T>, f: impl FnOnce(&T) -> R) -> SoftResult<R> {
        self.with_raw_value(view.raw, f)
    }

    fn with_raw_value<T, R>(&self, raw: RawHandle, f: impl FnOnce(&T) -> R) -> SoftResult<R> {
        let shard = self.shard(raw.sds)?;
        let st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(raw.sds));
        }
        let (ptr, _) = st.heap.resolve(raw)?;
        // SAFETY: live slot holding an initialised `T`; shared access
        // is sound because the shard lock excludes writers for the
        // closure's duration.
        let value = unsafe { &*ptr.cast::<T>() };
        Ok(f(value))
    }

    /// Whether the allocation behind `raw` is still live.
    pub fn is_live(&self, raw: RawHandle) -> bool {
        let Ok(shard) = self.shard(raw.sds) else {
            return false;
        };
        let st = shard.state.lock();
        !st.dead && st.heap.resolve(raw).is_ok()
    }

    // ------------------------------------------------------------------
    // Stats
    // ------------------------------------------------------------------

    /// Snapshot of the allocator's accounting. Shard locks are taken
    /// one at a time, so the snapshot is exact at quiescent points
    /// (which is when the testkit certifies it) and approximate under
    /// concurrent mutation.
    pub fn stats(&self) -> SmaStats {
        let mut live_bytes = 0;
        let mut live_allocs = 0;
        let mut allocs_total = 0;
        let mut frees_total = 0;
        let mut sds_count = 0;
        let mut magazine_pages = 0;
        for shard in self.shards() {
            let st = shard.state.lock();
            if st.dead {
                continue;
            }
            let h = st.heap.stats();
            live_bytes += h.live_bytes;
            live_allocs += h.live_allocs;
            allocs_total += h.allocs_total;
            frees_total += h.frees_total;
            magazine_pages += st.magazine.len();
            sds_count += 1;
        }
        let inner = self.inner.lock();
        SmaStats {
            budget_pages: inner.budget_pages,
            held_pages: inner.held_pages,
            free_pool_pages: self.depot.len(),
            magazine_pages,
            live_bytes,
            live_allocs,
            sds_count,
            allocs_total,
            frees_total,
            reclaims_total: inner.reclaims_total,
            pages_reclaimed_total: inner.pages_reclaimed_total,
            budget_granted_total: inner.budget_granted_total,
            magazine_refills_total: self.magazine_refills_total.load(Ordering::Relaxed),
            magazine_steal_backs_total: self.magazine_steal_backs_total.load(Ordering::Relaxed),
            smr_limbo_pages: self.limbo_len.load(Ordering::Relaxed),
            smr_guard_stalls_total: self.smr.guard_stalls(),
            pool: inner.pool.stats(),
        }
    }
}

impl std::fmt::Debug for Sma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Sma")
            .field("budget_pages", &s.budget_pages)
            .field("held_pages", &s.held_pages)
            .field("live_bytes", &s.live_bytes)
            .field("sds_count", &s.sds_count)
            .finish()
    }
}

#[cfg(test)]
mod tests;
