//! The Soft Memory Allocator.
//!
//! One [`Sma`] instance manages all soft memory of one (simulated or
//! real) process: it owns the process-global frame depot, the
//! soft-memory budget granted by the daemon, and one isolated heap per
//! registered Soft Data Structure. Its headline capability — the reason
//! it exists — is [`Sma::reclaim`]: yielding pages back on demand (the
//! tiered protocol is documented on that method and its
//! `ReclaimReport`).
//!
//! # Fast path
//!
//! The allocator is sharded per SDS. Each SDS owns a shard: its heap,
//! plus a small *magazine* of wholly-free page frames, behind its own
//! lock. The common alloc/free cycle therefore touches only the owning
//! shard's lock:
//!
//! * **alloc** — carve a slot from a partial page, or pop a frame from
//!   the magazine; on a magazine miss, *refill* from the lock-free
//!   global frame depot. Only a depot miss (budget growth, fresh OS
//!   pages) takes the global allocator lock.
//! * **free** — return the slot; a page that comes wholly free parks in
//!   the magazine (up to [`SmaConfig::sds_retain_pages`]), overflows to
//!   the depot (up to [`SmaConfig::free_pool_retain_pages`]), and only
//!   then is released to the OS under the global lock.
//!
//! Byte reads are *optimistic*: they snapshot a per-slot write epoch,
//! copy without any lock held, and revalidate — see [`Sma::with_bytes`].
//! Reclamation quiesces magazines with a steal-back protocol
//! (documented in the reclaim module), so parked pages remain fully
//! reclaimable.
//!
//! Pages parked in magazines and the depot still count against
//! `held_pages`: moving a frame between a heap, a magazine, and the
//! depot never changes machine-level accounting, only its parking spot.

mod metrics;
mod reclaim_impl;

pub use metrics::SmaMetrics;
pub use reclaim_impl::{ReclaimReport, SdsContribution};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use softmem_telemetry::{Gauge, Timer};

use crate::budget::BudgetSource;
use crate::config::SmaConfig;
use crate::error::{SoftError, SoftResult};
use crate::handle::{AllocKind, Priority, RawHandle, SdsId, SoftHandle, SoftSlot, SoftView};
use crate::heap::{drop_fn_for, DropFn, FreeOutcome, HeapStats, SdsHeap, MAX_SLAB_ALLOC};
use crate::page::{FrameDepot, PageFrame, PagePool};
use crate::stats::SmaStats;

/// How many times an allocation retries after budget grants before
/// giving up (guards against a budget source that grants tiny amounts
/// forever).
const MAX_BUDGET_RETRIES: usize = 8;

/// Largest single allocation the SMA accepts (1 GiB). Bigger requests
/// are almost certainly arithmetic bugs; failing them early with
/// [`SoftError::AllocTooLarge`] beats asking the daemon to reclaim
/// the whole machine.
pub const MAX_ALLOC_BYTES: usize = 1 << 30;

/// How many optimistic copy attempts [`Sma::with_bytes`] makes before
/// falling back to a locked read (bounds reader work under a
/// pathological writer storm).
const MAX_OPTIMISTIC_ATTEMPTS: usize = 3;

/// A data structure's hook for SMA-driven reclamation.
///
/// The SMA's reclamation is two-tiered (§3.1): the SMA picks SDSs in
/// ascending priority order; each chosen SDS picks *which allocations*
/// to give up (oldest first, least-recently-used first, everything —
/// whatever its engineer decided) by freeing them through the normal
/// allocator API.
///
/// Implementations are called **without** any SMA lock held and free
/// through the regular `Sma` methods. They should keep freeing until
/// roughly `bytes` bytes are freed or they run out of allocations.
pub trait SdsReclaimer: Send + Sync {
    /// Frees about `bytes` bytes of this SDS's soft allocations,
    /// returning the bytes actually freed (0 ⇒ nothing left to give).
    fn reclaim(&self, bytes: usize) -> usize;
}

impl<F> SdsReclaimer for F
where
    F: Fn(usize) -> usize + Send + Sync,
{
    fn reclaim(&self, bytes: usize) -> usize {
        self(bytes)
    }
}

/// Per-SDS snapshot returned by [`Sma::sds_stats`].
#[derive(Debug, Clone)]
pub struct SdsStats {
    /// SDS id.
    pub id: SdsId,
    /// Debug name given at registration.
    pub name: String,
    /// Current reclamation priority.
    pub priority: Priority,
    /// Heap accounting.
    pub heap: HeapStats,
    /// Wholly-free pages parked in this SDS's magazine.
    pub magazine_pages: usize,
    /// Depot→magazine refill events on this SDS's alloc fast path.
    pub magazine_refills: u64,
    /// Pages reclamation stole back out of this SDS's magazine.
    pub magazine_steal_backs: u64,
}

/// The dynamically named per-SDS gauges (`sds{i}_magazine_pages` …).
/// All writes happen under the owning shard's lock, so plain `set` is
/// race-free; the gauges are zeroed when the SDS is destroyed and when
/// its registry index is recycled.
pub(crate) struct SdsGauges {
    pub(crate) magazine_pages: Arc<Gauge>,
    pub(crate) magazine_refills: Arc<Gauge>,
    pub(crate) magazine_steal_backs: Arc<Gauge>,
}

impl SdsGauges {
    fn new(registry: &softmem_telemetry::Registry, idx: usize) -> Self {
        SdsGauges {
            magazine_pages: registry.gauge(&format!("sds{idx}_magazine_pages")),
            magazine_refills: registry.gauge(&format!("sds{idx}_magazine_refills")),
            magazine_steal_backs: registry.gauge(&format!("sds{idx}_magazine_steal_backs")),
        }
    }

    fn reset(&self) {
        self.magazine_pages.set(0);
        self.magazine_refills.set(0);
        self.magazine_steal_backs.set(0);
    }
}

/// The lock-protected half of one SDS shard.
pub(crate) struct SdsState {
    pub(crate) name: String,
    pub(crate) priority: Priority,
    pub(crate) heap: SdsHeap,
    /// This SDS's magazine: wholly-free frames kept for lock-free
    /// (global-lock-free) re-allocation. Capacity is
    /// [`SmaConfig::sds_retain_pages`].
    pub(crate) magazine: Vec<PageFrame>,
    pub(crate) reclaimer: Option<Arc<dyn SdsReclaimer>>,
    /// Pages this SDS's frees sent straight back to the OS (retention
    /// overflow and span releases). Tier-3 reclamation reads the delta
    /// across a callback to credit the *target* SDS exactly — a global
    /// counter would cross-attribute pages between concurrent
    /// reclamation passes and double-shrink the budget.
    pub(crate) pages_auto_released: u64,
    /// Depot→magazine refill events (alloc fast-path depot pulls).
    pub(crate) magazine_refills: u64,
    /// Pages reclamation stole back out of the magazine.
    pub(crate) magazine_steal_backs: u64,
    /// Set by [`Sma::destroy_sds`] under this lock. In-flight
    /// operations that captured the shard `Arc` before the registry
    /// entry was removed observe it and bail instead of touching a
    /// dismantled heap.
    pub(crate) dead: bool,
    pub(crate) gauges: SdsGauges,
}

/// One SDS's shard: its state lock plus the lock-free reclaim guard.
pub(crate) struct SdsShard {
    pub(crate) id: SdsId,
    /// Held (CAS true) by the reclamation pass currently squeezing this
    /// SDS in tier 3. Concurrent [`Sma::reclaim`] calls skip a guarded
    /// SDS instead of queueing behind its callback, so reclamations
    /// targeting different SDSs proceed in parallel. Lives outside the
    /// state mutex by design: it is read/written around the *unlocked*
    /// callback section.
    pub(crate) reclaim_guard: AtomicBool,
    pub(crate) state: Mutex<SdsState>,
}

/// The global slow-path state: budget arithmetic and the OS interface.
/// Taken only on depot misses, page releases, budget changes, and
/// reclamation bookkeeping — never on the alloc/free/read fast paths.
pub(crate) struct SmaInner {
    /// Current soft budget in pages (held + slack).
    pub(crate) budget_pages: usize,
    /// Pages physically held (heaps + magazines + depot).
    pub(crate) held_pages: usize,
    pub(crate) reclaims_total: u64,
    pub(crate) pages_reclaimed_total: u64,
    pub(crate) budget_granted_total: u64,
    /// The OS interface owning the frame arenas.
    pub(crate) pool: PagePool,
}

impl Drop for SmaInner {
    fn drop(&mut self) {
        // Return the machine claims of every physically held page
        // (depot + magazines + SDS heaps): the frames themselves are
        // arena leases the pool recovers, but the machine model must
        // see the capacity come back when the process exits.
        self.pool.machine().release(self.held_pages);
    }
}

/// The Soft Memory Allocator for one process.
///
/// Thread-safe: share it with `Arc<Sma>`. Access closures passed to
/// [`Sma::with_value`] and friends run under the owning SDS's shard
/// lock (not a global lock) and must not call back into the same `Sma`
/// for the same SDS; [`Sma::with_bytes`] runs its closure on a
/// validated copy with no lock held at all.
pub struct Sma {
    // Field order is drop order: shards (heaps, magazines) and the
    // depot hold arena leases, so they must drop before `inner` (the
    // pool owning the arenas).
    registry: RwLock<Vec<Option<Arc<SdsShard>>>>,
    /// The process-global free pool: a lock-free fixed-capacity depot
    /// of idle, backed page frames.
    depot: FrameDepot,
    pub(crate) inner: Mutex<SmaInner>,
    pub(crate) cfg: SmaConfig,
    budget_source: RwLock<Option<Arc<dyn BudgetSource>>>,
    pub(crate) metrics: SmaMetrics,
    /// Ground truth for `SmaStats::magazine_refills_total`: unlike the
    /// per-SDS counters, survives SDS destruction.
    magazine_refills_total: AtomicU64,
    /// Ground truth for `SmaStats::magazine_steal_backs_total`.
    magazine_steal_backs_total: AtomicU64,
}

impl Sma {
    /// Creates an allocator with the given configuration.
    pub fn with_config(cfg: SmaConfig) -> Arc<Self> {
        // The PagePool's own cache is disabled: the SMA's depot *is*
        // the process-level cache, and budget accounting covers it.
        let pool = PagePool::new(Arc::clone(&cfg.machine), 0);
        let depot = FrameDepot::new(cfg.free_pool_retain_pages);
        let sma = Arc::new(Sma {
            registry: RwLock::new(Vec::new()),
            depot,
            inner: Mutex::new(SmaInner {
                budget_pages: cfg.initial_budget_pages,
                held_pages: 0,
                reclaims_total: 0,
                pages_reclaimed_total: 0,
                budget_granted_total: 0,
                pool,
            }),
            cfg,
            budget_source: RwLock::new(None),
            metrics: SmaMetrics::new(),
            magazine_refills_total: AtomicU64::new(0),
            magazine_steal_backs_total: AtomicU64::new(0),
        });
        sma.metrics.sync_occupancy(&sma.inner.lock());
        sma
    }

    /// Creates an allocator on a private, effectively unbounded machine
    /// with `budget_pages` of budget — convenient for tests and
    /// standalone examples.
    pub fn standalone(budget_pages: usize) -> Arc<Self> {
        Self::with_config(SmaConfig::for_testing(budget_pages))
    }

    /// The machine model this allocator draws physical pages from.
    pub fn machine(&self) -> &Arc<crate::page::MachineMemory> {
        &self.cfg.machine
    }

    /// Attaches the budget source consulted when allocations exceed the
    /// current budget (set by the daemon client at registration).
    pub fn set_budget_source(&self, source: Arc<dyn BudgetSource>) {
        *self.budget_source.write() = Some(source);
    }

    /// Detaches the budget source (daemon disconnect).
    pub fn clear_budget_source(&self) {
        *self.budget_source.write() = None;
    }

    /// This allocator's telemetry registry — lock-free mirrors the
    /// testkit certifies against [`Sma::stats`] ground truth.
    pub fn metrics(&self) -> &SmaMetrics {
        &self.metrics
    }

    /// Adds `pages` to the soft budget (a grant pushed by the daemon).
    ///
    /// One critical section, no other locks taken: safe to call from a
    /// [`BudgetSource`] callback re-entering the SMA mid-allocation.
    pub fn grow_budget(&self, pages: usize) {
        let inner = &mut *self.inner.lock();
        inner.budget_pages += pages;
        inner.budget_granted_total += pages as u64;
        self.metrics.budget_granted_total.add(pages as u64);
        self.metrics.sync_occupancy(inner);
    }

    /// Voluntarily returns up to `pages` of unused budget (slack only;
    /// held pages are untouched). Returns the pages actually shed —
    /// the caller hands them back to the daemon.
    ///
    /// Like [`Sma::grow_budget`], a single critical section that is
    /// safe to call from a re-entrant [`BudgetSource`] callback.
    pub fn shrink_budget(&self, pages: usize) -> usize {
        let inner = &mut *self.inner.lock();
        let slack = inner.budget_pages.saturating_sub(inner.held_pages);
        let take = slack.min(pages);
        inner.budget_pages -= take;
        self.metrics.sync_occupancy(inner);
        take
    }

    /// Current budget in pages.
    pub fn budget_pages(&self) -> usize {
        self.inner.lock().budget_pages
    }

    /// Pages physically held by soft memory (heaps + magazines +
    /// depot).
    pub fn held_pages(&self) -> usize {
        self.inner.lock().held_pages
    }

    // ------------------------------------------------------------------
    // SDS registry
    // ------------------------------------------------------------------

    /// Looks up the shard for `id`. Clones the `Arc` (instead of
    /// holding the registry read lock across the operation) so a
    /// long-running shard operation never blocks `destroy_sds` on an
    /// unrelated SDS.
    pub(crate) fn shard(&self, id: SdsId) -> SoftResult<Arc<SdsShard>> {
        self.registry
            .read()
            .get(id.index() as usize)
            .and_then(|slot| slot.as_ref().map(Arc::clone))
            .ok_or(SoftError::UnknownSds(id))
    }

    /// Every live shard, in registration order.
    pub(crate) fn shards(&self) -> Vec<Arc<SdsShard>> {
        self.registry.read().iter().flatten().cloned().collect()
    }

    /// Registers a Soft Data Structure, giving it an isolated heap and
    /// an empty magazine.
    pub fn register_sds(&self, name: impl Into<String>, priority: Priority) -> SdsId {
        let mut registry = self.registry.write();
        let idx = registry
            .iter()
            .position(Option::is_none)
            .unwrap_or(registry.len());
        let id = SdsId(idx as u32);
        let gauges = SdsGauges::new(self.metrics.registry(), idx);
        gauges.reset();
        let shard = Arc::new(SdsShard {
            id,
            reclaim_guard: AtomicBool::new(false),
            state: Mutex::new(SdsState {
                name: name.into(),
                priority,
                heap: SdsHeap::new(id),
                magazine: Vec::with_capacity(self.cfg.sds_retain_pages),
                reclaimer: None,
                pages_auto_released: 0,
                magazine_refills: 0,
                magazine_steal_backs: 0,
                dead: false,
                gauges,
            }),
        });
        if idx == registry.len() {
            registry.push(Some(shard));
        } else {
            registry[idx] = Some(shard);
        }
        id
    }

    /// Installs the reclaimer invoked when the SMA orders this SDS to
    /// give up memory. SDS implementations call this from their
    /// constructors.
    pub fn set_reclaimer(&self, id: SdsId, reclaimer: Arc<dyn SdsReclaimer>) -> SoftResult<()> {
        let shard = self.shard(id)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(id));
        }
        st.reclaimer = Some(reclaimer);
        Ok(())
    }

    /// Updates an SDS's reclamation priority.
    pub fn set_priority(&self, id: SdsId, priority: Priority) -> SoftResult<()> {
        let shard = self.shard(id)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(id));
        }
        st.priority = priority;
        Ok(())
    }

    /// Unregisters an SDS, dropping all its live allocations and
    /// recycling its pages (magazine included) into the depot / OS.
    pub fn destroy_sds(&self, id: SdsId) -> SoftResult<()> {
        let shard = {
            let mut registry = self.registry.write();
            registry
                .get_mut(id.index() as usize)
                .and_then(Option::take)
                .ok_or(SoftError::UnknownSds(id))?
        };
        let mut st = shard.state.lock();
        st.dead = true;
        let magazine: Vec<PageFrame> = st.magazine.drain(..).collect();
        self.metrics.magazine_pages.add(-(magazine.len() as i64));
        let heap = std::mem::replace(&mut st.heap, SdsHeap::new(id));
        st.gauges.reset();
        drop(st);
        let (frames, spans) = heap.destroy();
        let mut to_os = Vec::new();
        for frame in magazine.into_iter().chain(frames) {
            match self.depot.push(frame) {
                Ok(()) => self.metrics.free_pool_pages.add(1),
                Err(frame) => to_os.push(frame),
            }
        }
        if !to_os.is_empty() || !spans.is_empty() {
            let inner = &mut *self.inner.lock();
            for frame in to_os {
                inner.pool.release_to_os(frame);
                inner.held_pages -= 1;
            }
            for span in spans {
                inner.held_pages -= span.pages();
                inner.pool.release_span(span);
            }
            self.metrics.sync_occupancy(inner);
        }
        Ok(())
    }

    /// Snapshot of one SDS's accounting.
    pub fn sds_stats(&self, id: SdsId) -> SoftResult<SdsStats> {
        let shard = self.shard(id)?;
        let st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(id));
        }
        Ok(Self::snapshot_sds(&shard, &st))
    }

    /// Snapshot of every registered SDS, in registration order. The
    /// testkit's metrics-consistency family uses this to cross-check
    /// the per-SDS magazine gauges.
    pub fn all_sds_stats(&self) -> Vec<SdsStats> {
        self.shards()
            .iter()
            .filter_map(|shard| {
                let st = shard.state.lock();
                if st.dead {
                    None
                } else {
                    Some(Self::snapshot_sds(shard, &st))
                }
            })
            .collect()
    }

    fn snapshot_sds(shard: &SdsShard, st: &SdsState) -> SdsStats {
        SdsStats {
            id: shard.id,
            name: st.name.clone(),
            priority: st.priority,
            heap: st.heap.stats(),
            magazine_pages: st.magazine.len(),
            magazine_refills: st.magazine_refills,
            magazine_steal_backs: st.magazine_steal_backs,
        }
    }

    // ------------------------------------------------------------------
    // Magazine / depot plumbing
    // ------------------------------------------------------------------

    /// Pops a frame from the shard's magazine, maintaining the gauges.
    fn magazine_pop(&self, st: &mut SdsState) -> Option<PageFrame> {
        let frame = st.magazine.pop()?;
        self.metrics.magazine_pages.add(-1);
        st.gauges.magazine_pages.set(st.magazine.len() as i64);
        Some(frame)
    }

    /// Pops a frame from the global depot, maintaining its gauge.
    pub(crate) fn depot_pop(&self) -> Option<PageFrame> {
        let frame = self.depot.pop()?;
        self.metrics.free_pool_pages.add(-1);
        Some(frame)
    }

    /// Parks a harvested wholly-free frame: magazine (up to capacity) →
    /// depot → `to_os` (the caller releases those under the slow-path
    /// lock).
    fn park_frame(&self, st: &mut SdsState, frame: PageFrame, to_os: &mut Vec<PageFrame>) {
        if st.magazine.len() < self.cfg.sds_retain_pages {
            st.magazine.push(frame);
            self.metrics.magazine_pages.add(1);
            st.gauges.magazine_pages.set(st.magazine.len() as i64);
        } else {
            match self.depot.push(frame) {
                Ok(()) => self.metrics.free_pool_pages.add(1),
                Err(frame) => to_os.push(frame),
            }
        }
    }

    /// Steals up to `want` parked pages out of the shard's magazine —
    /// the reclamation *steal-back* protocol. Caller holds the shard
    /// lock and releases the frames under the slow-path lock.
    pub(crate) fn steal_magazine(&self, st: &mut SdsState, want: usize) -> Vec<PageFrame> {
        let steal = st.magazine.len().min(want);
        if steal == 0 {
            return Vec::new();
        }
        let at = st.magazine.len() - steal;
        let frames: Vec<PageFrame> = st.magazine.drain(at..).collect();
        st.magazine_steal_backs += steal as u64;
        st.gauges.magazine_pages.set(st.magazine.len() as i64);
        st.gauges
            .magazine_steal_backs
            .set(st.magazine_steal_backs as i64);
        self.metrics.magazine_pages.add(-(steal as i64));
        self.magazine_steal_backs_total
            .fetch_add(steal as u64, Ordering::Relaxed);
        self.metrics.magazine_steal_backs_total.add(steal as u64);
        frames
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates `len` bytes of soft memory in `sds` — the `soft_malloc`
    /// of the paper's API.
    ///
    /// If the budget is insufficient and a budget source is attached,
    /// the SMA requests more budget (in configured chunks, so daemon
    /// round-trips amortise over many allocations) and retries.
    pub fn alloc_bytes(&self, sds: SdsId, len: usize) -> SoftResult<SoftHandle> {
        let raw = self.alloc_retrying(sds, len.max(1), None, |_| {})?;
        Ok(SoftHandle { raw, len })
    }

    /// Moves `value` into soft memory in `sds`.
    ///
    /// The value is dropped in place if the allocation is later
    /// reclaimed or freed without [`Sma::take_value`].
    ///
    /// # Examples
    ///
    /// ```
    /// use softmem_core::{Priority, Sma, SoftError};
    ///
    /// let sma = Sma::standalone(16);
    /// let sds = sma.register_sds("data", Priority::default());
    /// let slot = sma.alloc_value(sds, String::from("soft"))?;
    /// assert_eq!(sma.with_value(&slot, |s| s.len())?, 4);
    /// let back = sma.take_value(slot)?;
    /// assert_eq!(back, "soft");
    /// # Ok::<(), SoftError>(())
    /// ```
    pub fn alloc_value<T: Send>(&self, sds: SdsId, value: T) -> SoftResult<SoftSlot<T>> {
        let len = std::mem::size_of::<T>().max(1);
        debug_assert!(std::mem::align_of::<T>() <= 64 || len > MAX_SLAB_ALLOC);
        let mut value = Some(value);
        let raw = self.alloc_retrying(sds, len, drop_fn_for::<T>(), |ptr| {
            // SAFETY: `ptr` addresses a fresh slot of at least
            // `size_of::<T>()` bytes, aligned to the slot size (≥ the
            // value's alignment); the value is moved in exactly once.
            unsafe { ptr.cast::<T>().write(value.take().expect("init runs once")) }
        })?;
        Ok(SoftSlot::new(raw))
    }

    /// Allocation with budget-growth retry, instrumented: counts every
    /// attempt, times one in [`softmem_telemetry::SAMPLE_EVERY`]
    /// (including any daemon round-trips the retry loop incurs), and
    /// counts terminal failures.
    fn alloc_retrying(
        &self,
        sds: SdsId,
        len: usize,
        drop_fn: Option<DropFn>,
        init: impl FnMut(*mut u8),
    ) -> SoftResult<RawHandle> {
        let timer = Timer::start_sampled(self.metrics.allocs_total.inc());
        let result = self.alloc_retrying_inner(sds, len, drop_fn, init);
        match &result {
            Ok(_) => timer.observe(&self.metrics.alloc_ns),
            Err(_) => self.metrics.alloc_failures_total.add(1),
        }
        result
    }

    /// Allocation with budget-growth retry. `init` runs under the shard
    /// lock immediately after the slot is carved out, so no reclamation
    /// can observe an uninitialised slot. The budget source is invoked
    /// with **no** SMA locks held, so a callback may re-enter the SMA
    /// (reclaim, shrink, even allocate) without deadlocking.
    fn alloc_retrying_inner(
        &self,
        sds: SdsId,
        len: usize,
        drop_fn: Option<DropFn>,
        mut init: impl FnMut(*mut u8),
    ) -> SoftResult<RawHandle> {
        let mut attempts = 0;
        loop {
            let shortfall = {
                match self.try_alloc(sds, len, drop_fn, &mut init) {
                    Ok(raw) => return Ok(raw),
                    Err(SoftError::BudgetExceeded {
                        requested_pages,
                        available_pages,
                    }) => requested_pages - available_pages.min(requested_pages),
                    Err(other) => return Err(other),
                }
            };
            attempts += 1;
            if attempts > MAX_BUDGET_RETRIES {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: shortfall,
                    available_pages: 0,
                });
            }
            let source = self.budget_source.read().clone();
            let Some(source) = source else {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: shortfall,
                    available_pages: 0,
                });
            };
            let want = shortfall.max(self.cfg.auto_grow_chunk_pages);
            let grant = source.grant_more(shortfall, want)?;
            if grant.pages == 0 {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: shortfall,
                    available_pages: 0,
                });
            }
            if !grant.already_applied {
                self.grow_budget(grant.pages);
            }
        }
    }

    /// One allocation attempt. Fast path: the shard lock only. The
    /// global lock is taken just for budget-checked page acquisition
    /// when both the magazine and the depot miss.
    fn try_alloc(
        &self,
        sds: SdsId,
        len: usize,
        drop_fn: Option<DropFn>,
        init: &mut impl FnMut(*mut u8),
    ) -> SoftResult<RawHandle> {
        if len > MAX_ALLOC_BYTES {
            return Err(SoftError::AllocTooLarge {
                requested: len,
                max: MAX_ALLOC_BYTES,
            });
        }
        let shard = self.shard(sds)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(sds));
        }
        if len > MAX_SLAB_ALLOC {
            // Span path: spans always come from the OS interface, so
            // this path is global-locked by nature (and rare).
            let pages = SdsHeap::pages_needed(len);
            let span = {
                let inner = &mut *self.inner.lock();
                if inner.held_pages + pages > inner.budget_pages {
                    return Err(SoftError::BudgetExceeded {
                        requested_pages: pages,
                        available_pages: inner.budget_pages.saturating_sub(inner.held_pages),
                    });
                }
                let span = inner.pool.acquire_span(pages)?;
                inner.held_pages += pages;
                self.metrics.sync_occupancy(inner);
                span
            };
            let raw = st.heap.insert_span(span, len, drop_fn);
            let (ptr, _) = st.heap.resolve(raw).expect("just inserted");
            init(ptr);
            return Ok(raw);
        }
        // Slab path, tried in escalating order of cost:
        // attached partial/free pages → magazine → depot (with a batch
        // refill) → budget-checked OS acquisition under the global
        // lock.
        match st.heap.alloc_slab(len, drop_fn, None) {
            Ok(raw) => {
                let (ptr, _) = st.heap.resolve(raw).expect("just allocated");
                init(ptr);
                return Ok(raw);
            }
            Err(SoftError::BudgetExceeded { .. }) => {}
            Err(other) => return Err(other),
        }
        let frame = if let Some(frame) = self.magazine_pop(&mut st) {
            frame
        } else if let Some(frame) = self.depot_pop() {
            // Refill event: pull a small batch while we are at the
            // depot anyway, so the next few allocations stay on the
            // magazine fast path.
            let room = self.cfg.sds_retain_pages.saturating_sub(st.magazine.len());
            let batch = room.min(self.cfg.sds_retain_pages / 2);
            for _ in 0..batch {
                match self.depot_pop() {
                    Some(extra) => {
                        st.magazine.push(extra);
                        self.metrics.magazine_pages.add(1);
                    }
                    None => break,
                }
            }
            st.gauges.magazine_pages.set(st.magazine.len() as i64);
            st.magazine_refills += 1;
            st.gauges.magazine_refills.set(st.magazine_refills as i64);
            self.magazine_refills_total.fetch_add(1, Ordering::Relaxed);
            self.metrics.magazine_refills_total.add(1);
            frame
        } else {
            let inner = &mut *self.inner.lock();
            if inner.held_pages + 1 > inner.budget_pages {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: 1,
                    available_pages: inner.budget_pages.saturating_sub(inner.held_pages),
                });
            }
            let frame = inner.pool.acquire()?;
            inner.held_pages += 1;
            self.metrics.sync_occupancy(inner);
            frame
        };
        let raw = st.heap.alloc_slab(len, drop_fn, Some(frame))?;
        let (ptr, _) = st.heap.resolve(raw).expect("just allocated");
        init(ptr);
        Ok(raw)
    }

    // ------------------------------------------------------------------
    // Freeing
    // ------------------------------------------------------------------

    /// Frees a byte allocation — the `soft_free` of the paper's API.
    pub fn free_bytes(&self, handle: SoftHandle) -> SoftResult<()> {
        self.free_raw(handle.raw, true).map(|_| ())
    }

    /// Frees a typed slot, dropping its value in place.
    pub fn free_value<T>(&self, slot: SoftSlot<T>) -> SoftResult<()> {
        self.free_raw(slot.raw, true).map(|_| ())
    }

    /// Moves the value out of a slot and frees it.
    pub fn take_value<T: Send>(&self, slot: SoftSlot<T>) -> SoftResult<T> {
        let shard = self.shard(slot.raw.sds)?;
        let value = {
            let mut st = shard.state.lock();
            if st.dead {
                return Err(SoftError::UnknownSds(slot.raw.sds));
            }
            let (ptr, _) = st.heap.resolve(slot.raw)?;
            // SAFETY: the slot is live (just resolved under the shard
            // lock) and holds an initialised `T` written by
            // `alloc_value`; the drop fn is disarmed before the slot is
            // freed, so the value is moved out exactly once and never
            // dropped in place.
            let value = unsafe { ptr.cast::<T>().read() };
            st.heap.disarm_drop(slot.raw).expect("slot verified live");
            value
        };
        // The handle was unique, but an SDS reclaimer may race this
        // free; the value is already moved out and its drop disarmed,
        // so losing that race is benign.
        let _ = self.free_raw(slot.raw, false);
        Ok(value)
    }

    pub(crate) fn free_raw(&self, raw: RawHandle, run_drop: bool) -> SoftResult<usize> {
        let timer = Timer::start_sampled(self.metrics.frees_total.inc());
        let shard = self.shard(raw.sds)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(raw.sds));
        }
        let FreeOutcome {
            freed_bytes,
            released_span,
            page_now_free,
        } = st.heap.free(raw, run_drop)?;
        let mut to_os = Vec::new();
        if page_now_free {
            for frame in st.heap.harvest_free_pages(0) {
                self.park_frame(&mut st, frame, &mut to_os);
            }
        }
        let mut auto_released = 0u64;
        if !to_os.is_empty() || released_span.is_some() {
            let inner = &mut *self.inner.lock();
            for frame in to_os {
                inner.pool.release_to_os(frame);
                inner.held_pages -= 1;
                auto_released += 1;
            }
            if let Some(span) = released_span {
                inner.held_pages -= span.pages();
                auto_released += span.pages() as u64;
                inner.pool.release_span(span);
            }
            self.metrics.sync_occupancy(inner);
        }
        st.pages_auto_released += auto_released;
        drop(st);
        timer.observe(&self.metrics.free_ns);
        Ok(freed_bytes)
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Reads the bytes of an allocation.
    ///
    /// Slab-sized reads are **optimistic**: the slot's address and
    /// write epoch are snapshotted under the shard lock, the bytes are
    /// copied with *no lock held*, and the snapshot is revalidated
    /// before the copy is handed to `f` (which also runs unlocked, so a
    /// slow closure serialises nobody). Three outcomes:
    ///
    /// * snapshot still valid → `Ok` with the copied bytes;
    /// * the slot was overwritten mid-copy (epoch moved) → retry, then
    ///   fall back to a locked read;
    /// * the slot was freed or reclaimed mid-copy →
    ///   [`SoftError::Reclaimed`] — the caller treats it like a miss,
    ///   exactly as it would a [`SoftError::Revoked`] handle, but
    ///   without ever having stalled behind the reclamation.
    ///
    /// A handle that is stale *before* the read starts fails with
    /// [`SoftError::Revoked`] as always. Span allocations use the
    /// locked path: their memory really is returned to the OS interface
    /// on free, and copying megabytes to revalidate would cost more
    /// than the lock.
    pub fn with_bytes<R>(&self, handle: &SoftHandle, f: impl FnOnce(&[u8]) -> R) -> SoftResult<R> {
        let shard = self.shard(handle.raw.sds)?;
        if handle.raw.kind == AllocKind::Span {
            let st = shard.state.lock();
            if st.dead {
                return Err(SoftError::UnknownSds(handle.raw.sds));
            }
            let (ptr, len) = st.heap.resolve(handle.raw)?;
            // SAFETY: the span is live and `len` bytes long; the shard
            // lock is held for the closure's duration, so no
            // free/reclaim can race.
            let bytes = unsafe { std::slice::from_raw_parts(ptr, len) };
            return Ok(f(bytes));
        }
        let mut buf = std::mem::MaybeUninit::<[u64; MAX_SLAB_ALLOC / 8]>::uninit();
        for attempt in 0..MAX_OPTIMISTIC_ATTEMPTS {
            let (ptr, len, epoch) = {
                let st = shard.state.lock();
                if st.dead {
                    return Err(if attempt == 0 {
                        SoftError::UnknownSds(handle.raw.sds)
                    } else {
                        SoftError::Reclaimed
                    });
                }
                match st.heap.resolve_for_read(handle.raw) {
                    Ok(snap) => snap,
                    // Stale before the first copy: the ordinary
                    // stale-handle error. Stale on a *re*-look: the
                    // slot died under an in-flight read.
                    Err(e) if attempt == 0 => return Err(e),
                    Err(_) => return Err(SoftError::Reclaimed),
                }
            };
            debug_assert!(len <= MAX_SLAB_ALLOC);
            // SAFETY: `ptr` was a live slab slot of `len` bytes when
            // snapshotted; slab arenas stay mapped for the pool's
            // lifetime (frees return frames to the depot/arena, they do
            // not unmap), so this unlocked copy reads mapped memory
            // even if the slot is freed mid-copy — the revalidation
            // below then discards the garbage. `dst` is a local buffer
            // of MAX_SLAB_ALLOC ≥ `len` bytes.
            unsafe { optimistic_copy(ptr, buf.as_mut_ptr().cast::<u8>(), len) };
            let st = shard.state.lock();
            if st.dead {
                return Err(SoftError::Reclaimed);
            }
            match st.heap.resolve_for_read(handle.raw) {
                Ok((p, l, e)) if p == ptr && l == len && e == epoch => {
                    drop(st);
                    // SAFETY: the first `len` bytes of `buf` were
                    // initialised by the copy above.
                    let bytes =
                        unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), len) };
                    return Ok(f(bytes));
                }
                // Overwritten mid-copy: the copy may be torn; retry.
                Ok(_) => {}
                // Freed mid-copy.
                Err(_) => return Err(SoftError::Reclaimed),
            }
        }
        // Writer-heavy slot: give up on optimism, read under the lock.
        let st = shard.state.lock();
        if st.dead {
            return Err(SoftError::Reclaimed);
        }
        let (ptr, len) = st.heap.resolve(handle.raw)?;
        // SAFETY: live slot; shard lock held for the closure's
        // duration.
        let bytes = unsafe { std::slice::from_raw_parts(ptr, len) };
        Ok(f(bytes))
    }

    /// Mutates the bytes of an allocation. Runs under the shard lock
    /// and bumps the slot's write epoch, so optimistic readers racing
    /// this writer revalidate and retry instead of observing a torn
    /// buffer.
    pub fn with_bytes_mut<R>(
        &self,
        handle: &SoftHandle,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> SoftResult<R> {
        let shard = self.shard(handle.raw.sds)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(handle.raw.sds));
        }
        let (ptr, len) = st.heap.resolve_for_write(handle.raw)?;
        // SAFETY: the slot is live and `len` bytes long; exclusivity
        // holds because handles are unique and the shard lock blocks
        // all other access paths into this SDS.
        let bytes = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
        Ok(f(bytes))
    }

    /// Reads a typed value. The closure runs under the owning SDS's
    /// shard lock (not a global lock): keep it short and do not call
    /// back into the same SDS.
    pub fn with_value<T, R>(&self, slot: &SoftSlot<T>, f: impl FnOnce(&T) -> R) -> SoftResult<R> {
        self.with_raw_value(slot.raw, f)
    }

    /// Reads a typed value like [`Sma::with_value`], but releases the
    /// shard lock before running `f`, so a slow reader — an eviction
    /// callback charged with per-entry cleanup cost, say — does not
    /// serialise the SDS's other operations behind it.
    ///
    /// After `f` returns, the slot's generation is revalidated under
    /// the shard lock: if the allocation was freed, reclaimed, or its
    /// SDS destroyed while `f` ran, the result is discarded and
    /// [`SoftError::Reclaimed`] is returned, so the caller can never
    /// act on data whose backing slot died mid-read.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the slot is not *written* for the
    /// duration of the call (reads of a torn value would be undefined
    /// behaviour for most `T`). In practice that means the caller
    /// exclusively owns the slot (it is unreachable from any shared
    /// structure) or holds the owning container's lock. Frees are
    /// tolerated: the memory stays mapped (arena-backed) and the
    /// revalidation reports them as `Reclaimed`.
    pub unsafe fn with_value_exclusive<T, R>(
        &self,
        slot: &SoftSlot<T>,
        f: impl FnOnce(&T) -> R,
    ) -> SoftResult<R> {
        let shard = self.shard(slot.raw.sds)?;
        let ptr = {
            let st = shard.state.lock();
            if st.dead {
                return Err(SoftError::UnknownSds(slot.raw.sds));
            }
            let (ptr, _) = st.heap.resolve(slot.raw)?;
            ptr
        };
        // SAFETY: live slot holding an initialised `T` (written by
        // `alloc_value`). The lock is released, but the caller's
        // contract rules out concurrent writes, and the arena backing
        // the slot stays mapped even across a racing free.
        let value = unsafe { &*ptr.cast::<T>() };
        let result = f(value);
        let st = shard.state.lock();
        if st.dead || st.heap.resolve(slot.raw).is_err() {
            return Err(SoftError::Reclaimed);
        }
        Ok(result)
    }

    /// Mutates a typed value. Runs under the shard lock and bumps the
    /// slot's write epoch (see [`Sma::with_bytes_mut`]).
    pub fn with_value_mut<T, R>(
        &self,
        slot: &mut SoftSlot<T>,
        f: impl FnOnce(&mut T) -> R,
    ) -> SoftResult<R> {
        let shard = self.shard(slot.raw.sds)?;
        let mut st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(slot.raw.sds));
        }
        let (ptr, _) = st.heap.resolve_for_write(slot.raw)?;
        // SAFETY: live slot holding an initialised `T` (written by
        // `alloc_value`); `&mut` exclusivity per `with_bytes_mut`.
        let value = unsafe { &mut *ptr.cast::<T>() };
        Ok(f(value))
    }

    /// Reads a typed value through a shared view.
    pub fn with_view<T, R>(&self, view: &SoftView<T>, f: impl FnOnce(&T) -> R) -> SoftResult<R> {
        self.with_raw_value(view.raw, f)
    }

    fn with_raw_value<T, R>(&self, raw: RawHandle, f: impl FnOnce(&T) -> R) -> SoftResult<R> {
        let shard = self.shard(raw.sds)?;
        let st = shard.state.lock();
        if st.dead {
            return Err(SoftError::UnknownSds(raw.sds));
        }
        let (ptr, _) = st.heap.resolve(raw)?;
        // SAFETY: live slot holding an initialised `T`; shared access
        // is sound because the shard lock excludes writers for the
        // closure's duration.
        let value = unsafe { &*ptr.cast::<T>() };
        Ok(f(value))
    }

    /// Whether the allocation behind `raw` is still live.
    pub fn is_live(&self, raw: RawHandle) -> bool {
        let Ok(shard) = self.shard(raw.sds) else {
            return false;
        };
        let st = shard.state.lock();
        !st.dead && st.heap.resolve(raw).is_ok()
    }

    // ------------------------------------------------------------------
    // Stats
    // ------------------------------------------------------------------

    /// Snapshot of the allocator's accounting. Shard locks are taken
    /// one at a time, so the snapshot is exact at quiescent points
    /// (which is when the testkit certifies it) and approximate under
    /// concurrent mutation.
    pub fn stats(&self) -> SmaStats {
        let mut live_bytes = 0;
        let mut live_allocs = 0;
        let mut allocs_total = 0;
        let mut frees_total = 0;
        let mut sds_count = 0;
        let mut magazine_pages = 0;
        for shard in self.shards() {
            let st = shard.state.lock();
            if st.dead {
                continue;
            }
            let h = st.heap.stats();
            live_bytes += h.live_bytes;
            live_allocs += h.live_allocs;
            allocs_total += h.allocs_total;
            frees_total += h.frees_total;
            magazine_pages += st.magazine.len();
            sds_count += 1;
        }
        let inner = self.inner.lock();
        SmaStats {
            budget_pages: inner.budget_pages,
            held_pages: inner.held_pages,
            free_pool_pages: self.depot.len(),
            magazine_pages,
            live_bytes,
            live_allocs,
            sds_count,
            allocs_total,
            frees_total,
            reclaims_total: inner.reclaims_total,
            pages_reclaimed_total: inner.pages_reclaimed_total,
            budget_granted_total: inner.budget_granted_total,
            magazine_refills_total: self.magazine_refills_total.load(Ordering::Relaxed),
            magazine_steal_backs_total: self.magazine_steal_backs_total.load(Ordering::Relaxed),
            pool: inner.pool.stats(),
        }
    }
}

/// Copies `len` bytes from a slot that may be concurrently freed or
/// rewritten. Volatile reads keep the compiler from assuming the source
/// is stable (it must neither fuse nor re-read); a torn result is fine
/// because the caller revalidates the slot's write epoch and discards
/// the buffer on any mismatch.
///
/// # Safety
///
/// `src..src+len` must be mapped readable memory (slab slots satisfy
/// this: arenas stay mapped for the pool's lifetime) and `dst` must be
/// valid for `len` writes. `src` must be 8-byte aligned (slab slots are
/// ≥ 64-byte aligned).
unsafe fn optimistic_copy(src: *const u8, dst: *mut u8, len: usize) {
    let mut i = 0;
    while i + 8 <= len {
        // SAFETY: in-bounds per the function contract; alignment per
        // the function contract.
        let word = unsafe { src.add(i).cast::<u64>().read_volatile() };
        // SAFETY: `dst` valid for `len` writes; offset keeps alignment.
        unsafe { dst.add(i).cast::<u64>().write_unaligned(word) };
        i += 8;
    }
    while i < len {
        // SAFETY: in-bounds per the function contract.
        let byte = unsafe { src.add(i).read_volatile() };
        // SAFETY: `dst` valid for `len` writes.
        unsafe { dst.add(i).write(byte) };
        i += 1;
    }
}

impl std::fmt::Debug for Sma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Sma")
            .field("budget_pages", &s.budget_pages)
            .field("held_pages", &s.held_pages)
            .field("live_bytes", &s.live_bytes)
            .field("sds_count", &s.sds_count)
            .finish()
    }
}

#[cfg(test)]
mod tests;
