//! The Soft Memory Allocator.
//!
//! One [`Sma`] instance manages all soft memory of one (simulated or
//! real) process: it owns the process-global free pool, the soft-memory
//! budget granted by the daemon, and one isolated heap per registered
//! Soft Data Structure. Its headline capability — the reason it exists —
//! is [`Sma::reclaim`]: yielding pages back on demand (the tiered
//! protocol is documented on that method and its `ReclaimReport`).

mod metrics;
mod reclaim_impl;

pub use metrics::SmaMetrics;
pub use reclaim_impl::{ReclaimReport, SdsContribution};

use std::sync::Arc;

use parking_lot::Mutex;
use softmem_telemetry::Timer;

use crate::budget::BudgetSource;
use crate::config::SmaConfig;
use crate::error::{SoftError, SoftResult};
use crate::handle::{Priority, RawHandle, SdsId, SoftHandle, SoftSlot, SoftView};
use crate::heap::{drop_fn_for, DropFn, HeapStats, SdsHeap, MAX_SLAB_ALLOC};
use crate::page::{PageFrame, PagePool};
use crate::stats::SmaStats;

/// How many times an allocation retries after budget grants before
/// giving up (guards against a budget source that grants tiny amounts
/// forever).
const MAX_BUDGET_RETRIES: usize = 8;

/// Largest single allocation the SMA accepts (1 GiB). Bigger requests
/// are almost certainly arithmetic bugs; failing them early with
/// [`SoftError::AllocTooLarge`] beats asking the daemon to reclaim
/// the whole machine.
pub const MAX_ALLOC_BYTES: usize = 1 << 30;

/// A data structure's hook for SMA-driven reclamation.
///
/// The SMA's reclamation is two-tiered (§3.1): the SMA picks SDSs in
/// ascending priority order; each chosen SDS picks *which allocations*
/// to give up (oldest first, least-recently-used first, everything —
/// whatever its engineer decided) by freeing them through the normal
/// allocator API.
///
/// Implementations are called **without** the SMA lock held and free
/// through the regular `Sma` methods. They should keep freeing until
/// roughly `bytes` bytes are freed or they run out of allocations.
pub trait SdsReclaimer: Send + Sync {
    /// Frees about `bytes` bytes of this SDS's soft allocations,
    /// returning the bytes actually freed (0 ⇒ nothing left to give).
    fn reclaim(&self, bytes: usize) -> usize;
}

impl<F> SdsReclaimer for F
where
    F: Fn(usize) -> usize + Send + Sync,
{
    fn reclaim(&self, bytes: usize) -> usize {
        self(bytes)
    }
}

/// Per-SDS snapshot returned by [`Sma::sds_stats`].
#[derive(Debug, Clone)]
pub struct SdsStats {
    /// SDS id.
    pub id: SdsId,
    /// Debug name given at registration.
    pub name: String,
    /// Current reclamation priority.
    pub priority: Priority,
    /// Heap accounting.
    pub heap: HeapStats,
}

pub(crate) struct SdsEntry {
    pub(crate) name: String,
    pub(crate) priority: Priority,
    pub(crate) heap: SdsHeap,
    pub(crate) reclaimer: Option<Arc<dyn SdsReclaimer>>,
    /// Held (CAS true) by the reclamation pass currently squeezing this
    /// SDS in tier 3. Concurrent [`Sma::reclaim`] calls skip a guarded
    /// SDS instead of queueing behind its callback, so reclamations
    /// targeting different SDSs (different shards) proceed in parallel.
    /// Lives outside the `SmaInner` mutex by design: it is read/written
    /// around the *unlocked* callback section.
    pub(crate) reclaim_guard: Arc<std::sync::atomic::AtomicBool>,
    /// Pages this SDS's frees sent straight back to the OS (retention
    /// overflow and span releases). Tier-3 reclamation reads the delta
    /// across a callback to credit the *target* SDS exactly — a global
    /// counter would cross-attribute pages between concurrent
    /// reclamation passes and double-shrink the budget.
    pub(crate) pages_auto_released: u64,
}

pub(crate) struct SmaInner {
    /// The process-global free pool of idle, backed page frames.
    pub(crate) free_pool: Vec<PageFrame>,
    /// Current soft budget in pages (held + slack).
    pub(crate) budget_pages: usize,
    /// Pages physically held (free pool + all SDS heaps).
    pub(crate) held_pages: usize,
    pub(crate) sds: Vec<Option<SdsEntry>>,
    pub(crate) reclaims_total: u64,
    pub(crate) pages_reclaimed_total: u64,
    pub(crate) budget_granted_total: u64,
    /// The OS interface owning the frame arenas. Declared (and thus
    /// dropped) *after* `free_pool` and `sds`: outstanding frames are
    /// leases into the pool's arenas, and SDS heaps run value
    /// destructors against that memory while dropping.
    pub(crate) pool: PagePool,
}

impl Drop for SmaInner {
    fn drop(&mut self) {
        // Return the machine claims of every physically held page
        // (free pool + SDS heaps): the frames themselves are arena
        // leases the pool recovers, but the machine model must see
        // the capacity come back when the process exits.
        self.pool.machine().release(self.held_pages);
    }
}

impl SmaInner {
    pub(crate) fn entry(&self, id: SdsId) -> SoftResult<&SdsEntry> {
        self.sds
            .get(id.index() as usize)
            .and_then(|e| e.as_ref())
            .ok_or(SoftError::UnknownSds(id))
    }

    pub(crate) fn entry_mut(&mut self, id: SdsId) -> SoftResult<&mut SdsEntry> {
        self.sds
            .get_mut(id.index() as usize)
            .and_then(|e| e.as_mut())
            .ok_or(SoftError::UnknownSds(id))
    }
}

/// The Soft Memory Allocator for one process.
///
/// Thread-safe: share it with `Arc<Sma>`. Access closures passed to
/// [`Sma::with_value`] and friends run under the allocator lock and must
/// not call back into the same `Sma`.
pub struct Sma {
    pub(crate) inner: Mutex<SmaInner>,
    pub(crate) cfg: SmaConfig,
    budget_source: Mutex<Option<Arc<dyn BudgetSource>>>,
    pub(crate) metrics: SmaMetrics,
}

impl Sma {
    /// Creates an allocator with the given configuration.
    pub fn with_config(cfg: SmaConfig) -> Arc<Self> {
        // The PagePool's own cache is disabled: the SMA's free pool *is*
        // the process-level cache, and budget accounting covers it.
        let pool = PagePool::new(Arc::clone(&cfg.machine), 0);
        let sma = Arc::new(Sma {
            inner: Mutex::new(SmaInner {
                free_pool: Vec::new(),
                budget_pages: cfg.initial_budget_pages,
                held_pages: 0,
                sds: Vec::new(),
                reclaims_total: 0,
                pages_reclaimed_total: 0,
                budget_granted_total: 0,
                pool,
            }),
            cfg,
            budget_source: Mutex::new(None),
            metrics: SmaMetrics::new(),
        });
        sma.metrics.sync_gauges(&sma.inner.lock());
        sma
    }

    /// Creates an allocator on a private, effectively unbounded machine
    /// with `budget_pages` of budget — convenient for tests and
    /// standalone examples.
    pub fn standalone(budget_pages: usize) -> Arc<Self> {
        Self::with_config(SmaConfig::for_testing(budget_pages))
    }

    /// The machine model this allocator draws physical pages from.
    pub fn machine(&self) -> &Arc<crate::page::MachineMemory> {
        &self.cfg.machine
    }

    /// Attaches the budget source consulted when allocations exceed the
    /// current budget (set by the daemon client at registration).
    pub fn set_budget_source(&self, source: Arc<dyn BudgetSource>) {
        *self.budget_source.lock() = Some(source);
    }

    /// Detaches the budget source (daemon disconnect).
    pub fn clear_budget_source(&self) {
        *self.budget_source.lock() = None;
    }

    /// This allocator's telemetry registry — lock-free mirrors the
    /// testkit certifies against [`Sma::stats`] ground truth.
    pub fn metrics(&self) -> &SmaMetrics {
        &self.metrics
    }

    /// Adds `pages` to the soft budget (a grant pushed by the daemon).
    pub fn grow_budget(&self, pages: usize) {
        let mut inner = self.inner.lock();
        inner.budget_pages += pages;
        inner.budget_granted_total += pages as u64;
        self.metrics.budget_granted_total.add(pages as u64);
        self.metrics.sync_gauges(&inner);
    }

    /// Voluntarily returns up to `pages` of unused budget (slack only;
    /// held pages are untouched). Returns the pages actually shed —
    /// the caller hands them back to the daemon.
    pub fn shrink_budget(&self, pages: usize) -> usize {
        let mut inner = self.inner.lock();
        let slack = inner.budget_pages.saturating_sub(inner.held_pages);
        let take = slack.min(pages);
        inner.budget_pages -= take;
        self.metrics.sync_gauges(&inner);
        take
    }

    /// Current budget in pages.
    pub fn budget_pages(&self) -> usize {
        self.inner.lock().budget_pages
    }

    /// Pages physically held by soft memory (heaps + free pool).
    pub fn held_pages(&self) -> usize {
        self.inner.lock().held_pages
    }

    // ------------------------------------------------------------------
    // SDS registry
    // ------------------------------------------------------------------

    /// Registers a Soft Data Structure, giving it an isolated heap.
    pub fn register_sds(&self, name: impl Into<String>, priority: Priority) -> SdsId {
        let mut inner = self.inner.lock();
        let idx = inner
            .sds
            .iter()
            .position(Option::is_none)
            .unwrap_or(inner.sds.len());
        let id = SdsId(idx as u32);
        let entry = SdsEntry {
            name: name.into(),
            priority,
            heap: SdsHeap::new(id),
            reclaimer: None,
            reclaim_guard: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            pages_auto_released: 0,
        };
        if idx == inner.sds.len() {
            inner.sds.push(Some(entry));
        } else {
            inner.sds[idx] = Some(entry);
        }
        id
    }

    /// Installs the reclaimer invoked when the SMA orders this SDS to
    /// give up memory. SDS implementations call this from their
    /// constructors.
    pub fn set_reclaimer(&self, id: SdsId, reclaimer: Arc<dyn SdsReclaimer>) -> SoftResult<()> {
        self.inner.lock().entry_mut(id)?.reclaimer = Some(reclaimer);
        Ok(())
    }

    /// Updates an SDS's reclamation priority.
    pub fn set_priority(&self, id: SdsId, priority: Priority) -> SoftResult<()> {
        self.inner.lock().entry_mut(id)?.priority = priority;
        Ok(())
    }

    /// Unregisters an SDS, dropping all its live allocations and
    /// recycling its pages into the free pool / OS.
    pub fn destroy_sds(&self, id: SdsId) -> SoftResult<()> {
        let mut inner = self.inner.lock();
        let entry = inner
            .sds
            .get_mut(id.index() as usize)
            .and_then(Option::take)
            .ok_or(SoftError::UnknownSds(id))?;
        let (frames, spans) = entry.heap.destroy();
        for frame in frames {
            if inner.free_pool.len() < self.cfg.free_pool_retain_pages {
                inner.free_pool.push(frame);
            } else {
                inner.pool.release_to_os(frame);
                inner.held_pages -= 1;
            }
        }
        for span in spans {
            inner.held_pages -= span.pages();
            inner.pool.release_span(span);
        }
        self.metrics.sync_gauges(&inner);
        Ok(())
    }

    /// Snapshot of one SDS's accounting.
    pub fn sds_stats(&self, id: SdsId) -> SoftResult<SdsStats> {
        let inner = self.inner.lock();
        let e = inner.entry(id)?;
        Ok(SdsStats {
            id,
            name: e.name.clone(),
            priority: e.priority,
            heap: e.heap.stats(),
        })
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates `len` bytes of soft memory in `sds` — the `soft_malloc`
    /// of the paper's API.
    ///
    /// If the budget is insufficient and a budget source is attached,
    /// the SMA requests more budget (in configured chunks, so daemon
    /// round-trips amortise over many allocations) and retries.
    pub fn alloc_bytes(&self, sds: SdsId, len: usize) -> SoftResult<SoftHandle> {
        let raw = self.alloc_retrying(sds, len.max(1), None, |_| {})?;
        Ok(SoftHandle { raw, len })
    }

    /// Moves `value` into soft memory in `sds`.
    ///
    /// The value is dropped in place if the allocation is later
    /// reclaimed or freed without [`Sma::take_value`].
    ///
    /// # Examples
    ///
    /// ```
    /// use softmem_core::{Priority, Sma, SoftError};
    ///
    /// let sma = Sma::standalone(16);
    /// let sds = sma.register_sds("data", Priority::default());
    /// let slot = sma.alloc_value(sds, String::from("soft"))?;
    /// assert_eq!(sma.with_value(&slot, |s| s.len())?, 4);
    /// let back = sma.take_value(slot)?;
    /// assert_eq!(back, "soft");
    /// # Ok::<(), SoftError>(())
    /// ```
    pub fn alloc_value<T: Send>(&self, sds: SdsId, value: T) -> SoftResult<SoftSlot<T>> {
        let len = std::mem::size_of::<T>().max(1);
        debug_assert!(std::mem::align_of::<T>() <= 64 || len > MAX_SLAB_ALLOC);
        let mut value = Some(value);
        let raw = self.alloc_retrying(sds, len, drop_fn_for::<T>(), |ptr| {
            // SAFETY: `ptr` addresses a fresh slot of at least
            // `size_of::<T>()` bytes, aligned to the slot size (≥ the
            // value's alignment); the value is moved in exactly once.
            unsafe { ptr.cast::<T>().write(value.take().expect("init runs once")) }
        })?;
        Ok(SoftSlot::new(raw))
    }

    /// Allocation with budget-growth retry, instrumented: counts every
    /// attempt, times one in [`softmem_telemetry::SAMPLE_EVERY`]
    /// (including any daemon round-trips the retry loop incurs), and
    /// counts terminal failures.
    fn alloc_retrying(
        &self,
        sds: SdsId,
        len: usize,
        drop_fn: Option<DropFn>,
        init: impl FnMut(*mut u8),
    ) -> SoftResult<RawHandle> {
        let timer = Timer::start_sampled(self.metrics.allocs_total.inc());
        let result = self.alloc_retrying_inner(sds, len, drop_fn, init);
        match &result {
            Ok(_) => timer.observe(&self.metrics.alloc_ns),
            Err(_) => self.metrics.alloc_failures_total.add(1),
        }
        result
    }

    /// Allocation with budget-growth retry. `init` runs under the SMA
    /// lock immediately after the slot is carved out, so no reclamation
    /// can observe an uninitialised slot.
    fn alloc_retrying_inner(
        &self,
        sds: SdsId,
        len: usize,
        drop_fn: Option<DropFn>,
        mut init: impl FnMut(*mut u8),
    ) -> SoftResult<RawHandle> {
        let mut attempts = 0;
        loop {
            let shortfall = {
                match self.try_alloc(sds, len, drop_fn, &mut init) {
                    Ok(raw) => return Ok(raw),
                    Err(SoftError::BudgetExceeded {
                        requested_pages,
                        available_pages,
                    }) => requested_pages - available_pages.min(requested_pages),
                    Err(other) => return Err(other),
                }
            };
            attempts += 1;
            if attempts > MAX_BUDGET_RETRIES {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: shortfall,
                    available_pages: 0,
                });
            }
            let source = self.budget_source.lock().clone();
            let Some(source) = source else {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: shortfall,
                    available_pages: 0,
                });
            };
            let want = shortfall.max(self.cfg.auto_grow_chunk_pages);
            let grant = source.grant_more(shortfall, want)?;
            if grant.pages == 0 {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: shortfall,
                    available_pages: 0,
                });
            }
            if !grant.already_applied {
                self.grow_budget(grant.pages);
            }
        }
    }

    /// One allocation attempt under the lock.
    fn try_alloc(
        &self,
        sds: SdsId,
        len: usize,
        drop_fn: Option<DropFn>,
        init: &mut impl FnMut(*mut u8),
    ) -> SoftResult<RawHandle> {
        if len > MAX_ALLOC_BYTES {
            return Err(SoftError::AllocTooLarge {
                requested: len,
                max: MAX_ALLOC_BYTES,
            });
        }
        let inner = &mut *self.inner.lock();
        inner.entry(sds)?; // validate id before acquiring pages
        if len > MAX_SLAB_ALLOC {
            let pages = SdsHeap::pages_needed(len);
            if inner.held_pages + pages > inner.budget_pages {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: pages,
                    available_pages: inner.budget_pages - inner.held_pages,
                });
            }
            let span = inner.pool.acquire_span(pages)?;
            inner.held_pages += pages;
            let entry = inner.entry_mut(sds).expect("validated above");
            let raw = entry.heap.insert_span(span, len, drop_fn);
            let (ptr, _) = entry.heap.resolve(raw).expect("just inserted");
            init(ptr);
            self.metrics.sync_gauges(inner);
            return Ok(raw);
        }
        // Slab path: optimistic allocation from attached pages; only
        // on failure acquire a frame (free pool, then the machine,
        // under budget) and retry.
        let entry = inner.entry_mut(sds).expect("validated above");
        match entry.heap.alloc_slab(len, drop_fn, None) {
            Ok(raw) => {
                let (ptr, _) = entry.heap.resolve(raw).expect("just allocated");
                init(ptr);
                return Ok(raw);
            }
            Err(SoftError::BudgetExceeded { .. }) => {}
            Err(other) => return Err(other),
        }
        let frame = if let Some(frame) = inner.free_pool.pop() {
            frame
        } else {
            if inner.held_pages + 1 > inner.budget_pages {
                return Err(SoftError::BudgetExceeded {
                    requested_pages: 1,
                    available_pages: inner.budget_pages.saturating_sub(inner.held_pages),
                });
            }
            let frame = inner.pool.acquire()?;
            inner.held_pages += 1;
            frame
        };
        let entry = inner.entry_mut(sds).expect("validated above");
        let raw = entry.heap.alloc_slab(len, drop_fn, Some(frame))?;
        let (ptr, _) = entry.heap.resolve(raw).expect("just allocated");
        init(ptr);
        self.metrics.sync_gauges(inner);
        Ok(raw)
    }

    // ------------------------------------------------------------------
    // Freeing
    // ------------------------------------------------------------------

    /// Frees a byte allocation — the `soft_free` of the paper's API.
    pub fn free_bytes(&self, handle: SoftHandle) -> SoftResult<()> {
        self.free_raw(handle.raw, true).map(|_| ())
    }

    /// Frees a typed slot, dropping its value in place.
    pub fn free_value<T>(&self, slot: SoftSlot<T>) -> SoftResult<()> {
        self.free_raw(slot.raw, true).map(|_| ())
    }

    /// Moves the value out of a slot and frees it.
    pub fn take_value<T: Send>(&self, slot: SoftSlot<T>) -> SoftResult<T> {
        let mut inner = self.inner.lock();
        let entry = inner.entry_mut(slot.raw.sds)?;
        let (ptr, _) = entry.heap.resolve(slot.raw)?;
        // SAFETY: the slot is live (just resolved under the lock) and
        // holds an initialised `T` written by `alloc_value`; the drop fn
        // is disarmed before the slot is freed, so the value is moved
        // out exactly once and never dropped in place.
        let value = unsafe { ptr.cast::<T>().read() };
        entry
            .heap
            .disarm_drop(slot.raw)
            .expect("slot verified live");
        drop(inner);
        self.free_raw(slot.raw, false)?;
        Ok(value)
    }

    pub(crate) fn free_raw(&self, raw: RawHandle, run_drop: bool) -> SoftResult<usize> {
        let timer = Timer::start_sampled(self.metrics.frees_total.inc());
        let inner = &mut *self.inner.lock();
        let entry = inner.entry_mut(raw.sds)?;
        let out = entry.heap.free(raw, run_drop)?;
        let mut auto_released = 0u64;
        if out.page_now_free {
            let frames = entry.heap.harvest_free_pages(self.cfg.sds_retain_pages);
            for frame in frames {
                if inner.free_pool.len() < self.cfg.free_pool_retain_pages {
                    inner.free_pool.push(frame);
                } else {
                    inner.pool.release_to_os(frame);
                    inner.held_pages -= 1;
                    auto_released += 1;
                }
            }
        }
        if let Some(span) = out.released_span {
            inner.held_pages -= span.pages();
            auto_released += span.pages() as u64;
            inner.pool.release_span(span);
        }
        if auto_released > 0 {
            if let Ok(entry) = inner.entry_mut(raw.sds) {
                entry.pages_auto_released += auto_released;
            }
        }
        self.metrics.sync_gauges(inner);
        timer.observe(&self.metrics.free_ns);
        Ok(out.freed_bytes)
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Reads the bytes of an allocation.
    ///
    /// Returns [`SoftError::Revoked`] if the allocation was reclaimed.
    /// The closure runs under the allocator lock: keep it short and do
    /// not call back into this `Sma`.
    pub fn with_bytes<R>(&self, handle: &SoftHandle, f: impl FnOnce(&[u8]) -> R) -> SoftResult<R> {
        let inner = self.inner.lock();
        let (ptr, len) = inner.entry(handle.raw.sds)?.heap.resolve(handle.raw)?;
        // SAFETY: the slot is live and `len` bytes long; the SMA lock is
        // held for the closure's duration, so no free/reclaim can race.
        let bytes = unsafe { std::slice::from_raw_parts(ptr, len) };
        Ok(f(bytes))
    }

    /// Mutates the bytes of an allocation.
    pub fn with_bytes_mut<R>(
        &self,
        handle: &SoftHandle,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> SoftResult<R> {
        let inner = self.inner.lock();
        let (ptr, len) = inner.entry(handle.raw.sds)?.heap.resolve(handle.raw)?;
        // SAFETY: as in `with_bytes`; exclusivity holds because handles
        // are unique and the lock blocks all other access paths.
        let bytes = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
        Ok(f(bytes))
    }

    /// Reads a typed value.
    pub fn with_value<T, R>(&self, slot: &SoftSlot<T>, f: impl FnOnce(&T) -> R) -> SoftResult<R> {
        self.with_raw_value(slot.raw, f)
    }

    /// Reads a typed value like [`Sma::with_value`], but releases the
    /// allocator lock before running `f`, so a slow reader — an
    /// eviction callback charged with per-entry cleanup cost, say —
    /// does not serialise every other SDS's allocations behind it.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the slot stays live and un-mutated
    /// for the duration of the call. In practice that means the caller
    /// exclusively owns the slot (it is unreachable from any shared
    /// structure) and holds the owning container's lock, so no other
    /// path can free, evict, or write through it while `f` runs.
    pub unsafe fn with_value_exclusive<T, R>(
        &self,
        slot: &SoftSlot<T>,
        f: impl FnOnce(&T) -> R,
    ) -> SoftResult<R> {
        let ptr = {
            let inner = self.inner.lock();
            let (ptr, _) = inner.entry(slot.raw.sds)?.heap.resolve(slot.raw)?;
            ptr
        };
        // SAFETY: live slot holding an initialised `T` (written by
        // `alloc_value`). The lock is released, but the caller's
        // exclusivity contract rules out concurrent frees (which could
        // unmap the page) and writes for the call's duration.
        let value = unsafe { &*ptr.cast::<T>() };
        Ok(f(value))
    }

    /// Mutates a typed value.
    pub fn with_value_mut<T, R>(
        &self,
        slot: &mut SoftSlot<T>,
        f: impl FnOnce(&mut T) -> R,
    ) -> SoftResult<R> {
        let inner = self.inner.lock();
        let (ptr, _) = inner.entry(slot.raw.sds)?.heap.resolve(slot.raw)?;
        // SAFETY: live slot holding an initialised `T` (written by
        // `alloc_value`); `&mut` exclusivity per `with_bytes_mut`.
        let value = unsafe { &mut *ptr.cast::<T>() };
        Ok(f(value))
    }

    /// Reads a typed value through a shared view.
    pub fn with_view<T, R>(&self, view: &SoftView<T>, f: impl FnOnce(&T) -> R) -> SoftResult<R> {
        self.with_raw_value(view.raw, f)
    }

    fn with_raw_value<T, R>(&self, raw: RawHandle, f: impl FnOnce(&T) -> R) -> SoftResult<R> {
        let inner = self.inner.lock();
        let (ptr, _) = inner.entry(raw.sds)?.heap.resolve(raw)?;
        // SAFETY: live slot holding an initialised `T`; shared access is
        // sound because the lock excludes writers for the closure's
        // duration.
        let value = unsafe { &*ptr.cast::<T>() };
        Ok(f(value))
    }

    /// Whether the allocation behind `raw` is still live.
    pub fn is_live(&self, raw: RawHandle) -> bool {
        let inner = self.inner.lock();
        inner
            .entry(raw.sds)
            .and_then(|e| e.heap.resolve(raw))
            .is_ok()
    }

    // ------------------------------------------------------------------
    // Stats
    // ------------------------------------------------------------------

    /// Snapshot of the allocator's accounting.
    pub fn stats(&self) -> SmaStats {
        let inner = self.inner.lock();
        let mut live_bytes = 0;
        let mut live_allocs = 0;
        let mut allocs_total = 0;
        let mut frees_total = 0;
        let mut sds_count = 0;
        for entry in inner.sds.iter().flatten() {
            let h = entry.heap.stats();
            live_bytes += h.live_bytes;
            live_allocs += h.live_allocs;
            allocs_total += h.allocs_total;
            frees_total += h.frees_total;
            sds_count += 1;
        }
        SmaStats {
            budget_pages: inner.budget_pages,
            held_pages: inner.held_pages,
            free_pool_pages: inner.free_pool.len(),
            live_bytes,
            live_allocs,
            sds_count,
            allocs_total,
            frees_total,
            reclaims_total: inner.reclaims_total,
            pages_reclaimed_total: inner.pages_reclaimed_total,
            budget_granted_total: inner.budget_granted_total,
            pool: inner.pool.stats(),
        }
    }
}

impl std::fmt::Debug for Sma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Sma")
            .field("budget_pages", &s.budget_pages)
            .field("held_pages", &s.held_pages)
            .field("live_bytes", &s.live_bytes)
            .field("sds_count", &s.sds_count)
            .finish()
    }
}

#[cfg(test)]
mod tests;
