//! The SMA-side reclamation protocol (§3.1 of the paper).
//!
//! A reclamation demand arrives from the Soft Memory Daemon as a page
//! quota. The SMA satisfies it in escalating tiers of disruptiveness:
//!
//! 1. **Budget slack** — budget pages not backed by physical pages are
//!    surrendered for free ("if the application has excess soft budget
//!    … it first exhausts these").
//! 2. **Idle pages** — the lock-free frame depot, every SDS's magazine
//!    (the *steal-back* protocol, below), and wholly-free pages still
//!    attached to SDS heaps are released to the OS.
//! 3. **Live allocations** — SDSs are visited in ascending priority
//!    order; each frees allocations of its choosing (via its
//!    [`super::SdsReclaimer`]) until enough whole pages come free.
//!
//! Tier 3 runs *without* any SMA lock so that the reclaimer can free
//! through the ordinary allocator API (and so concurrent application
//! threads are never blocked for the whole reclamation, only for
//! individual frees). Pages released by those frees — whether through
//! the retention watermarks or the explicit harvest — are counted
//! against the demand via per-SDS release counters.
//!
//! # Steal-back
//!
//! The magazine fast path parks wholly-free pages outside the global
//! lock, which would hide them from a purely global reclamation scan.
//! Reclamation therefore *quiesces* each magazine it targets: it takes
//! the shard lock (which the owning SDS's fast path also takes, so the
//! magazine cannot be concurrently popped), drains up to the demanded
//! number of frames, and counts them as `magazine_steal_backs` before
//! releasing them to the OS under the global lock. The owning SDS
//! simply sees a magazine miss on its next allocation and refills from
//! the depot or the budget — no fast-path operation ever blocks for
//! longer than the drain.
//!
//! Tier 3 is additionally **parallel-safe** across SDSs: each SDS
//! carries a reclaim guard (an atomic flag outside the shard mutex)
//! that one reclamation pass holds while squeezing it. Concurrent
//! [`Sma::reclaim`] calls skip a guarded SDS instead of serialising
//! behind its (potentially very expensive) callback, and the per-round
//! harvest is a *two-phase* affair: the callback runs unlocked, then
//! the shard lock is re-taken only long enough to steal the magazine
//! and the **target SDS's** wholly-free pages — never to scan every
//! heap on the machine. A sharded KV engine whose shard A is being
//! reclaimed therefore keeps allocating on shards B–N with only
//! page-return-sized critical sections in the way. Any idle pages the
//! targeted harvest leaves on *other* shards are swept up by a single
//! global pass after the SDS loop, so the demand is satisfied exactly
//! as before.
//!
//! # Deferred harvest (SMR limbo)
//!
//! Zero-copy guarded reads ([`crate::smr`]) mean some freed slots are
//! parked in limbo: their handles are revoked but their bytes may
//! still be observed by an active read guard, so their pages cannot be
//! recycled yet. Reclamation cooperates instead of stalling:
//!
//! * every pass starts by flushing cleared limbo (slots whose
//!   retirement epoch every reader has advanced past) so those pages
//!   count as ordinary idle pages;
//! * tier 3 visits limbo-heavy SDSs *last* (sort key
//!   `(priority, demote rank, limbo pages, id)`) — squeezing an SDS
//!   whose freed pages are guard-pinned yields nothing until the
//!   guards drop, while a *demoting* SDS (cold-tier eviction, see
//!   [`crate::tier`] and [`Sma::set_demotable`]) sorts ahead of
//!   non-demoting peers of the same priority because squeezing it
//!   destroys no data;
//! * when the targeted harvest comes up short, pages that are all
//!   limbo (zero live slots) are *detached* from the SDS heap onto the
//!   SMA's limbo list. They are not counted as yielded — the machine
//!   does not have them back yet — but the next free or reclamation
//!   after the guards drop returns them to the depot/OS without
//!   touching the SDS again. Each such deferral is recorded as a
//!   `smr_guard_stall`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use super::{SdsShard, SdsState, Sma};
use crate::handle::SdsId;
use crate::page::{PageFrame, PAGE_SIZE};

/// Releases an SDS's reclaim guard on drop, so a panicking bookkeeping
/// path can never leave the SDS permanently unreclaimable.
struct GuardRelease<'a>(&'a AtomicBool);

impl Drop for GuardRelease<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// How many free→harvest rounds to run per SDS before concluding the
/// SDS cannot produce more whole pages (fragmentation guard: freed
/// allocations may not pack into whole pages on the first pass).
const MAX_ROUNDS_PER_SDS: usize = 4;

/// What one SDS contributed to a reclamation.
#[derive(Debug, Clone)]
pub struct SdsContribution {
    /// The SDS ordered to give up memory.
    pub id: SdsId,
    /// Its debug name.
    pub name: String,
    /// Whole pages released to the OS while processing this SDS.
    pub pages: usize,
    /// Bytes of live allocations it reported freeing.
    pub bytes_freed: usize,
    /// Number of allocations it freed.
    pub allocs_freed: u64,
}

/// Outcome of one [`Sma::reclaim`] call.
#[derive(Debug, Clone, Default)]
pub struct ReclaimReport {
    /// Pages the daemon demanded.
    pub demanded_pages: usize,
    /// Pages yielded from budget slack (no physical release needed).
    pub from_slack: usize,
    /// Physical pages released from the depot, magazines, and
    /// already-free SDS pages (tier 2, plus the post-tier-3 global idle
    /// sweep).
    pub from_idle: usize,
    /// Physical pages released by freeing live allocations (tier 3),
    /// per SDS in the order they were visited.
    pub from_sds: Vec<SdsContribution>,
}

impl ReclaimReport {
    /// Total pages yielded (slack + physical).
    pub fn total_yielded(&self) -> usize {
        self.from_slack + self.pages_released()
    }

    /// Physical pages released to the OS.
    pub fn pages_released(&self) -> usize {
        self.from_idle + self.from_sds.iter().map(|c| c.pages).sum::<usize>()
    }

    /// Pages short of the demand (0 when fully satisfied).
    pub fn shortfall(&self) -> usize {
        self.demanded_pages.saturating_sub(self.total_yielded())
    }

    /// Whether the demand was fully satisfied.
    pub fn satisfied(&self) -> bool {
        self.shortfall() == 0
    }

    /// Total allocations freed across all SDSs.
    pub fn allocs_freed(&self) -> u64 {
        self.from_sds.iter().map(|c| c.allocs_freed).sum()
    }
}

impl Sma {
    /// Services a reclamation demand for `demanded_pages` pages.
    ///
    /// Returns a report of where the pages came from; the demand may
    /// fall short if every SDS runs dry (the daemon then reports the
    /// shortfall upstream and may deny the triggering request).
    ///
    /// # Examples
    ///
    /// ```
    /// use softmem_core::{Priority, Sma};
    ///
    /// let sma = Sma::standalone(32);
    /// let sds = sma.register_sds("cache", Priority::new(1));
    /// let _slot = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    ///
    /// // 31 budget pages are slack; the demand is satisfied without
    /// // touching the live allocation.
    /// let report = sma.reclaim(10);
    /// assert!(report.satisfied());
    /// assert_eq!(report.from_slack, 10);
    /// assert_eq!(sma.budget_pages(), 22);
    /// ```
    pub fn reclaim(&self, demanded_pages: usize) -> ReclaimReport {
        // Reclamations are rare relative to allocations, so the whole
        // protocol is timed on every call (no sampling).
        let timer = softmem_telemetry::Timer::start();
        let mut report = ReclaimReport {
            demanded_pages,
            ..ReclaimReport::default()
        };
        let mut remaining = demanded_pages;
        {
            // ---- Tier 1 (global lock): budget slack. ----
            let inner = &mut *self.inner.lock();
            inner.reclaims_total += 1;
            self.metrics.reclaims_total.add(1);
            let slack = inner.budget_pages.saturating_sub(inner.held_pages);
            report.from_slack = slack.min(remaining);
            inner.budget_pages -= report.from_slack;
            remaining -= report.from_slack;
        }
        // Flush limbo whose guards have all dropped *before* tier 2:
        // cleared limbo pages land in the depot and are released as
        // ordinary idle pages instead of lingering.
        self.flush_limbo_pages();
        // ---- Tier 2: idle pages (depot → magazines → heaps). ----
        if remaining > 0 {
            report.from_idle = self.release_idle_pages(remaining);
            remaining -= report.from_idle;
        }
        // Snapshot the visiting order: ascending priority first (the
        // paper's contract), then *demoting* SDSs before non-demoting
        // peers — an SDS whose eviction callback moves values into a
        // cold tier loses no data when squeezed, so it is a
        // near-zero-disturbance target — then ascending limbo-page
        // count (an SDS whose freed pages are pinned by read guards
        // yields nothing until they drop, so limbo-heavy SDSs go
        // last), ties broken by registration order for determinism.
        // Shard locks are taken one at a time, briefly.
        let order: Vec<(Arc<SdsShard>, String, Arc<dyn super::SdsReclaimer>)> = {
            let mut sorted = Vec::new();
            for shard in self.shards() {
                let st = shard.state.lock();
                if st.dead {
                    continue;
                }
                if let Some(reclaimer) = st.reclaimer.as_ref() {
                    let demote_rank = if st.demotes { 0u8 } else { 1u8 };
                    let entry = (
                        st.priority,
                        demote_rank,
                        st.heap.limbo_page_count(),
                        st.name.clone(),
                        Arc::clone(reclaimer),
                    );
                    drop(st);
                    sorted.push((entry.0, entry.1, entry.2, shard.id, entry.3, entry.4, shard));
                }
            }
            sorted.sort_by_key(|e| (e.0, e.1, e.2, e.3));
            sorted
                .into_iter()
                .map(|(_, _, _, _, name, reclaimer, shard)| (shard, name, reclaimer))
                .collect()
        };
        // ---- Tier 3 (unlocked): ask SDSs to free live allocations. ----
        for (shard, name, reclaimer) in order {
            if remaining == 0 {
                break;
            }
            // Another reclamation pass is already squeezing this SDS;
            // queueing behind its callback would serialise reclaims
            // machine-wide, so skip it — the concurrent pass is
            // producing the pages this one would have asked for.
            if shard
                .reclaim_guard
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let _release = GuardRelease(&shard.reclaim_guard);
            let mut contribution = SdsContribution {
                id: shard.id,
                name,
                pages: 0,
                bytes_freed: 0,
                allocs_freed: 0,
            };
            for _ in 0..MAX_ROUNDS_PER_SDS {
                if remaining == 0 {
                    break;
                }
                let target_bytes = remaining * PAGE_SIZE;
                let (auto_before, frees_before) = {
                    let st = shard.state.lock();
                    (st.pages_auto_released, st.heap.stats().frees_total)
                };
                // A panicking reclaimer (buggy SDS policy or user
                // callback) must not unwind into the daemon: treat it
                // as "nothing freed" and move on to the next SDS.
                self.metrics.sds_callbacks_total.add(1);
                let cb_timer = softmem_telemetry::Timer::start();
                let freed_bytes = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    reclaimer.reclaim(target_bytes)
                }))
                .unwrap_or(0);
                cb_timer.observe(&self.metrics.sds_callback_ns);
                // Phase two of the harvest: re-take the *shard* lock
                // only to quiesce the magazine and return whole pages.
                // Pages auto-released by the frees themselves
                // (retention overflow, spans) are counted via the
                // target SDS's own release counter — not a global one,
                // which a concurrent pass on another SDS would also be
                // incrementing.
                let released_this_round = {
                    let mut st = shard.state.lock();
                    let auto = (st.pages_auto_released - auto_before) as usize;
                    let frees_after = st.heap.stats().frees_total;
                    contribution.allocs_freed += frees_after - frees_before;
                    let frames = if st.dead {
                        Vec::new()
                    } else {
                        self.collect_target_frames(&mut st, remaining.saturating_sub(auto))
                    };
                    drop(st);
                    let explicit = frames.len();
                    if explicit > 0 || auto > 0 {
                        let inner = &mut *self.inner.lock();
                        for frame in frames {
                            inner.pool.release_to_os(frame);
                            inner.held_pages -= 1;
                        }
                        inner.budget_pages = inner.budget_pages.saturating_sub(auto + explicit);
                        self.metrics.sync_occupancy(inner);
                    }
                    auto + explicit
                };
                contribution.bytes_freed += freed_bytes;
                contribution.pages += released_this_round;
                remaining = remaining.saturating_sub(released_this_round);
                if freed_bytes == 0 {
                    break;
                }
            }
            if contribution.pages > 0 || contribution.bytes_freed > 0 {
                report.from_sds.push(contribution);
            }
        }
        // Final sweep: the targeted harvests deliberately left other
        // shards' idle pages alone; if the demand is still short, one
        // global idle pass (same as tier 2) collects them — including
        // pages concurrent frees idled while tier 3 ran.
        if remaining > 0 {
            report.from_idle += self.release_idle_pages(remaining);
        }
        {
            let inner = &mut *self.inner.lock();
            inner.pages_reclaimed_total += report.total_yielded() as u64;
            self.metrics
                .pages_reclaimed_total
                .add(report.total_yielded() as u64);
            self.metrics.sync_occupancy(inner);
        }
        timer.observe(&self.metrics.reclaim_ns);
        report
    }

    /// Like [`Sma::reclaim`], but treats a shortfall as an error —
    /// convenient for callers that need all-or-error semantics (the
    /// daemon instead inspects the report and applies its own policy).
    pub fn reclaim_strict(&self, demanded_pages: usize) -> crate::SoftResult<ReclaimReport> {
        let report = self.reclaim(demanded_pages);
        if report.satisfied() {
            Ok(report)
        } else {
            Err(crate::SoftError::ReclaimShortfall {
                requested_pages: demanded_pages,
                reclaimed_pages: report.total_yielded(),
            })
        }
    }

    /// Phase two of the tier-3 two-phase harvest: with the target
    /// shard's lock held, collects up to `want` whole frames from its
    /// magazine (steal-back), the global depot, and its heap's
    /// wholly-free pages, in that order. Deliberately never scans other
    /// shards — those critical sections sit on other SDSs' fast paths.
    ///
    /// If still short, runs the deferred-harvest stage: all-limbo
    /// pages are detached from the heap and parked on the SMA limbo
    /// list. Those do **not** appear in the returned frames (they are
    /// not recyclable until every pinning guard drops) — the caller
    /// must not count them as yielded.
    fn collect_target_frames(&self, st: &mut SdsState, want: usize) -> Vec<PageFrame> {
        if st.heap.limbo_slots() > 0 {
            let smr = &self.smr;
            st.heap.flush_limbo(&|e| smr.safe_to_reclaim(e));
        }
        let mut frames = self.steal_magazine(st, want);
        while frames.len() < want {
            match self.depot_pop() {
                Some(frame) => frames.push(frame),
                None => break,
            }
        }
        if frames.len() < want {
            let surplus = st.heap.wholly_free_pages();
            let take = surplus.min(want - frames.len());
            if take > 0 {
                frames.extend(st.heap.harvest_free_pages(surplus - take));
            }
        }
        if frames.len() < want {
            let parked = st.heap.harvest_limbo_pages(want - frames.len());
            if !parked.is_empty() {
                self.note_guard_stall();
                self.park_limbo_pages(parked);
            }
        }
        frames
    }

    /// Releases up to `want` idle pages back to the OS: the lock-free
    /// depot first, then each shard's magazine (steal-back) and
    /// wholly-free heap pages, one shard lock at a time. The budget
    /// shrinks by the pages released (they were yielded to a demand).
    /// Returns pages released.
    pub(crate) fn release_idle_pages(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let mut frames: Vec<PageFrame> = Vec::new();
        while frames.len() < want {
            match self.depot_pop() {
                Some(frame) => frames.push(frame),
                None => break,
            }
        }
        if frames.len() < want {
            for shard in self.shards() {
                if frames.len() >= want {
                    break;
                }
                let mut st = shard.state.lock();
                if st.dead {
                    continue;
                }
                if st.heap.limbo_slots() > 0 {
                    let smr = &self.smr;
                    st.heap.flush_limbo(&|e| smr.safe_to_reclaim(e));
                }
                frames.extend(self.steal_magazine(&mut st, want - frames.len()));
                if frames.len() < want {
                    let surplus = st.heap.wholly_free_pages();
                    let take = surplus.min(want - frames.len());
                    if take > 0 {
                        frames.extend(st.heap.harvest_free_pages(surplus - take));
                    }
                }
            }
        }
        let released = frames.len();
        if released > 0 {
            let inner = &mut *self.inner.lock();
            for frame in frames {
                inner.pool.release_to_os(frame);
                inner.held_pages -= 1;
            }
            inner.budget_pages = inner.budget_pages.saturating_sub(released);
            self.metrics.sync_occupancy(inner);
        }
        released
    }
}
