//! The SMA-side reclamation protocol (§3.1 of the paper).
//!
//! A reclamation demand arrives from the Soft Memory Daemon as a page
//! quota. The SMA satisfies it in escalating tiers of disruptiveness:
//!
//! 1. **Budget slack** — budget pages not backed by physical pages are
//!    surrendered for free ("if the application has excess soft budget
//!    … it first exhausts these").
//! 2. **Idle pages** — the process-global free pool and wholly-free
//!    pages still attached to SDS heaps are released to the OS.
//! 3. **Live allocations** — SDSs are visited in ascending priority
//!    order; each frees allocations of its choosing (via its
//!    [`super::SdsReclaimer`]) until enough whole pages come free.
//!
//! Tier 3 runs *without* the SMA lock so that the reclaimer can free
//! through the ordinary allocator API (and so concurrent application
//! threads are never blocked for the whole reclamation, only for
//! individual frees). Pages released by those frees — whether through
//! the retention watermarks or the explicit harvest — are counted
//! against the demand via the page pool's release counter.
//!
//! Tier 3 is additionally **parallel-safe** across SDSs: each SDS
//! carries a reclaim guard (an atomic flag outside the `SmaInner`
//! mutex) that one reclamation pass holds while squeezing it.
//! Concurrent [`Sma::reclaim`] calls skip a guarded SDS instead of
//! serialising behind its (potentially very expensive) callback, and
//! the per-round harvest is a *two-phase* affair: the callback runs
//! unlocked, then the lock is re-acquired only long enough to return
//! whole pages from the free pool and the **target SDS's heap** —
//! never to scan every heap on the machine. A sharded KV engine whose
//! shard A is being reclaimed therefore keeps allocating on shards
//! B–N with only page-return-sized critical sections in the way. Any
//! idle pages the targeted harvest leaves attached to *other* heaps
//! are swept up by a single global pass after the SDS loop, so the
//! demand is satisfied exactly as before.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use super::{Sma, SmaInner};
use crate::handle::SdsId;
use crate::page::PAGE_SIZE;

/// Releases an SDS's reclaim guard on drop, so a panicking bookkeeping
/// path can never leave the SDS permanently unreclaimable.
struct GuardRelease<'a>(&'a AtomicBool);

impl Drop for GuardRelease<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// How many free→harvest rounds to run per SDS before concluding the
/// SDS cannot produce more whole pages (fragmentation guard: freed
/// allocations may not pack into whole pages on the first pass).
const MAX_ROUNDS_PER_SDS: usize = 4;

/// What one SDS contributed to a reclamation.
#[derive(Debug, Clone)]
pub struct SdsContribution {
    /// The SDS ordered to give up memory.
    pub id: SdsId,
    /// Its debug name.
    pub name: String,
    /// Whole pages released to the OS while processing this SDS.
    pub pages: usize,
    /// Bytes of live allocations it reported freeing.
    pub bytes_freed: usize,
    /// Number of allocations it freed.
    pub allocs_freed: u64,
}

/// Outcome of one [`Sma::reclaim`] call.
#[derive(Debug, Clone, Default)]
pub struct ReclaimReport {
    /// Pages the daemon demanded.
    pub demanded_pages: usize,
    /// Pages yielded from budget slack (no physical release needed).
    pub from_slack: usize,
    /// Physical pages released from the free pool and already-free SDS
    /// pages (tier 2, plus the post-tier-3 global idle sweep).
    pub from_idle: usize,
    /// Physical pages released by freeing live allocations (tier 3),
    /// per SDS in the order they were visited.
    pub from_sds: Vec<SdsContribution>,
}

impl ReclaimReport {
    /// Total pages yielded (slack + physical).
    pub fn total_yielded(&self) -> usize {
        self.from_slack + self.pages_released()
    }

    /// Physical pages released to the OS.
    pub fn pages_released(&self) -> usize {
        self.from_idle + self.from_sds.iter().map(|c| c.pages).sum::<usize>()
    }

    /// Pages short of the demand (0 when fully satisfied).
    pub fn shortfall(&self) -> usize {
        self.demanded_pages.saturating_sub(self.total_yielded())
    }

    /// Whether the demand was fully satisfied.
    pub fn satisfied(&self) -> bool {
        self.shortfall() == 0
    }

    /// Total allocations freed across all SDSs.
    pub fn allocs_freed(&self) -> u64 {
        self.from_sds.iter().map(|c| c.allocs_freed).sum()
    }
}

impl Sma {
    /// Services a reclamation demand for `demanded_pages` pages.
    ///
    /// Returns a report of where the pages came from; the demand may
    /// fall short if every SDS runs dry (the daemon then reports the
    /// shortfall upstream and may deny the triggering request).
    ///
    /// # Examples
    ///
    /// ```
    /// use softmem_core::{Priority, Sma};
    ///
    /// let sma = Sma::standalone(32);
    /// let sds = sma.register_sds("cache", Priority::new(1));
    /// let _slot = sma.alloc_value(sds, [0u8; 4096]).unwrap();
    ///
    /// // 31 budget pages are slack; the demand is satisfied without
    /// // touching the live allocation.
    /// let report = sma.reclaim(10);
    /// assert!(report.satisfied());
    /// assert_eq!(report.from_slack, 10);
    /// assert_eq!(sma.budget_pages(), 22);
    /// ```
    pub fn reclaim(&self, demanded_pages: usize) -> ReclaimReport {
        // Reclamations are rare relative to allocations, so the whole
        // protocol is timed on every call (no sampling).
        let timer = softmem_telemetry::Timer::start();
        let mut report = ReclaimReport {
            demanded_pages,
            ..ReclaimReport::default()
        };
        let mut remaining = demanded_pages;
        type OrderEntry = (SdsId, String, Arc<dyn super::SdsReclaimer>, Arc<AtomicBool>);
        let order: Vec<OrderEntry>;
        {
            // ---- Tier 1 + 2 (locked): slack and idle pages. ----
            let inner = &mut *self.inner.lock();
            inner.reclaims_total += 1;
            self.metrics.reclaims_total.add(1);
            let slack = inner.budget_pages.saturating_sub(inner.held_pages);
            report.from_slack = slack.min(remaining);
            inner.budget_pages -= report.from_slack;
            remaining -= report.from_slack;

            report.from_idle = Self::release_idle_pages(inner, remaining);
            inner.budget_pages = inner.budget_pages.saturating_sub(report.from_idle);
            remaining -= report.from_idle;

            let mut sorted: Vec<_> = inner
                .sds
                .iter()
                .flatten()
                .filter_map(|e| {
                    e.reclaimer.as_ref().map(|r| {
                        (
                            e.priority,
                            e.heap.id(),
                            e.name.clone(),
                            Arc::clone(r),
                            Arc::clone(&e.reclaim_guard),
                        )
                    })
                })
                .collect();
            // Ascending priority; ties broken by registration order for
            // determinism.
            sorted.sort_by_key(|&(prio, id, _, _, _)| (prio, id));
            order = sorted
                .into_iter()
                .map(|(_, id, name, r, g)| (id, name, r, g))
                .collect();
        }
        // ---- Tier 3 (unlocked): ask SDSs to free live allocations. ----
        for (id, name, reclaimer, guard) in order {
            if remaining == 0 {
                break;
            }
            // Another reclamation pass is already squeezing this SDS;
            // queueing behind its callback would serialise reclaims
            // machine-wide, so skip it — the concurrent pass is
            // producing the pages this one would have asked for.
            if guard
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let _release = GuardRelease(&guard);
            let mut contribution = SdsContribution {
                id,
                name,
                pages: 0,
                bytes_freed: 0,
                allocs_freed: 0,
            };
            for _ in 0..MAX_ROUNDS_PER_SDS {
                if remaining == 0 {
                    break;
                }
                let target_bytes = remaining * PAGE_SIZE;
                let (auto_before, frees_before) = {
                    let inner = self.inner.lock();
                    inner
                        .entry(id)
                        .map(|e| (e.pages_auto_released, e.heap.stats().frees_total))
                        .unwrap_or((0, 0))
                };
                // A panicking reclaimer (buggy SDS policy or user
                // callback) must not unwind into the daemon: treat it
                // as "nothing freed" and move on to the next SDS.
                self.metrics.sds_callbacks_total.add(1);
                let cb_timer = softmem_telemetry::Timer::start();
                let freed_bytes = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    reclaimer.reclaim(target_bytes)
                }))
                .unwrap_or(0);
                cb_timer.observe(&self.metrics.sds_callback_ns);
                let released_this_round = {
                    // Phase two of the harvest: re-acquire the lock
                    // only to *return whole pages*. Pages auto-released
                    // by the frees themselves (retention watermark
                    // overflow, spans) are counted via the target SDS's
                    // own release counter — not a global one, which a
                    // concurrent pass on another SDS would also be
                    // incrementing…
                    let inner = &mut *self.inner.lock();
                    let (auto_after, frees_after) = inner
                        .entry(id)
                        .map(|e| (e.pages_auto_released, e.heap.stats().frees_total))
                        .unwrap_or((auto_before, frees_before));
                    let auto = (auto_after - auto_before) as usize;
                    // …plus a harvest targeted at the SDS that just ran
                    // its callback (free pool first, then that heap's
                    // wholly-free pages). No global heap scan happens
                    // in this critical section.
                    let explicit =
                        Self::harvest_target_pages(inner, id, remaining.saturating_sub(auto));
                    let released = auto + explicit;
                    inner.budget_pages = inner.budget_pages.saturating_sub(released);
                    contribution.allocs_freed += frees_after - frees_before;
                    released
                };
                contribution.bytes_freed += freed_bytes;
                contribution.pages += released_this_round;
                remaining = remaining.saturating_sub(released_this_round);
                if freed_bytes == 0 {
                    break;
                }
            }
            if contribution.pages > 0 || contribution.bytes_freed > 0 {
                report.from_sds.push(contribution);
            }
        }
        // Final sweep: the targeted harvests deliberately left other
        // heaps' idle pages alone; if the demand is still short, one
        // global idle pass (same as tier 2) collects them — including
        // pages concurrent frees idled while tier 3 ran.
        if remaining > 0 {
            let inner = &mut *self.inner.lock();
            let swept = Self::release_idle_pages(inner, remaining);
            inner.budget_pages = inner.budget_pages.saturating_sub(swept);
            report.from_idle += swept;
        }
        {
            let mut inner = self.inner.lock();
            inner.pages_reclaimed_total += report.total_yielded() as u64;
            self.metrics
                .pages_reclaimed_total
                .add(report.total_yielded() as u64);
            self.metrics.sync_gauges(&inner);
        }
        timer.observe(&self.metrics.reclaim_ns);
        report
    }

    /// Like [`Sma::reclaim`], but treats a shortfall as an error —
    /// convenient for callers that need all-or-error semantics (the
    /// daemon instead inspects the report and applies its own policy).
    pub fn reclaim_strict(&self, demanded_pages: usize) -> crate::SoftResult<ReclaimReport> {
        let report = self.reclaim(demanded_pages);
        if report.satisfied() {
            Ok(report)
        } else {
            Err(crate::SoftError::ReclaimShortfall {
                requested_pages: demanded_pages,
                reclaimed_pages: report.total_yielded(),
            })
        }
    }

    /// Phase two of the tier-3 two-phase harvest: with the lock
    /// re-acquired after an *unlocked* reclaim callback, returns up to
    /// `want` whole pages from the free pool and then from the target
    /// SDS's own heap. Deliberately never scans other heaps — this
    /// critical section sits on every shard's allocation path, so it
    /// stays proportional to the pages actually coming back, not to
    /// the number of SDSs on the machine.
    fn harvest_target_pages(inner: &mut SmaInner, id: SdsId, want: usize) -> usize {
        let mut released = 0;
        while released < want {
            let Some(frame) = inner.free_pool.pop() else {
                break;
            };
            inner.pool.release_to_os(frame);
            inner.held_pages -= 1;
            released += 1;
        }
        if released < want {
            // The SDS may have been destroyed while its callback ran;
            // its pages then went through `destroy_sds` already.
            if let Ok(entry) = inner.entry_mut(id) {
                let surplus = entry.heap.wholly_free_pages();
                let take = surplus.min(want - released);
                let keep = surplus - take;
                for frame in entry.heap.harvest_free_pages(keep) {
                    inner.pool.release_to_os(frame);
                    inner.held_pages -= 1;
                    released += 1;
                }
            }
        }
        released
    }

    /// Releases up to `want` idle pages (free pool first, then
    /// wholly-free pages attached to SDS heaps) back to the OS.
    /// Returns pages released; the caller adjusts the budget.
    fn release_idle_pages(inner: &mut SmaInner, want: usize) -> usize {
        let mut released = 0;
        while released < want {
            let Some(frame) = inner.free_pool.pop() else {
                break;
            };
            inner.pool.release_to_os(frame);
            inner.held_pages -= 1;
            released += 1;
        }
        if released < want {
            for entry in inner.sds.iter_mut().flatten() {
                if released >= want {
                    break;
                }
                let surplus = entry.heap.wholly_free_pages();
                if surplus == 0 {
                    continue;
                }
                let take = surplus.min(want - released);
                let keep = surplus - take;
                for frame in entry.heap.harvest_free_pages(keep) {
                    inner.pool.release_to_os(frame);
                    inner.held_pages -= 1;
                    released += 1;
                }
            }
        }
        released
    }
}
