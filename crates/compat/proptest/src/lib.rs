//! A minimal, API-compatible stand-in for the `proptest` crate.
//!
//! This workspace builds in offline environments with no registry
//! access, so the external `proptest` dependency is replaced by this
//! shim. It implements the subset the workspace's property tests use:
//! [`Strategy`] with `prop_map`, [`any`], [`Just`], integer-range and
//! tuple strategies, `collection::vec`, `char::range`, weighted
//! [`prop_oneof!`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: no shrinking (a failing case prints
//! its seed instead — rerun with `PROPTEST_SEED=<seed>` to reproduce),
//! and value streams are not bit-compatible with upstream.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// The generator handed to strategies while a property test runs.
pub type TestRng = StdRng;

/// How a property test executes (number of cases; seed comes from the
/// `PROPTEST_SEED` environment variable or a per-test default).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by [`prop_oneof!`] to mix arms
    /// of different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe view of [`Strategy`] for boxing.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Weighted union of strategies — the engine behind [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs at least one positive weight"
        );
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.gen_range(0..total);
        for (weight, strat) in &self.arms {
            let weight = *weight as u64;
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Ways of expressing the size of a generated collection.
    pub trait IntoSizeRange {
        /// Lower bound (inclusive) and upper bound (exclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty collection size range");
        VecStrategy {
            element,
            min,
            max_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values from `element`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// A set of roughly `size` distinct elements drawn from `element`.
    /// Like upstream proptest, the generator retries duplicates a
    /// bounded number of times, so a narrow element domain may yield a
    /// smaller set than requested (never smaller than the domain
    /// allows).
    pub fn btree_set<S>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty collection size range");
        BTreeSetStrategy {
            element,
            min,
            max_exclusive,
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> std::collections::BTreeSet<S::Value> {
            let target = rng.gen_range(self.min..self.max_exclusive);
            let mut set = std::collections::BTreeSet::new();
            let mut misses = 0usize;
            while set.len() < target && misses < 64 {
                if !set.insert(self.element.generate(rng)) {
                    misses += 1;
                }
            }
            set
        }
    }
}

/// Character strategies (`range`).
pub mod char {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing chars in an inclusive code-point range.
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Chars from `lo` to `hi` inclusive (surrogate gaps are re-rolled).
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = char;

        fn generate(&self, rng: &mut TestRng) -> char {
            loop {
                if let Some(c) = char::from_u32(rng.gen_range(self.lo..=self.hi)) {
                    return c;
                }
            }
        }
    }
}

/// Runs `body` for `config.cases` seeded cases, printing the failing
/// seed before propagating any panic. Called by the [`proptest!`]
/// macro — not intended for direct use.
pub fn run_proptest<F>(config: &ProptestConfig, test_name: &str, body: F)
where
    F: Fn(&mut TestRng),
{
    let forced_seed: Option<u64> = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok());

    // Per-test deterministic base seed: FNV-1a of the test name, so
    // different tests explore different streams but every run of the
    // same binary replays the same cases.
    let mut base: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x1000_0000_01b3);
    }

    let cases = if forced_seed.is_some() {
        1
    } else {
        config.cases
    };
    for case in 0..cases {
        let seed = forced_seed.unwrap_or_else(|| base.wrapping_add(case as u64));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = TestRng::seed_from_u64(seed);
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "proptest shim: test `{test_name}` failed at case {case}/{cases} \
                 (seed {seed}); rerun with PROPTEST_SEED={seed}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies with `arg in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (($config:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                $crate::run_proptest(&config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure; the
/// harness prints the reproducing seed).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn strategies_cover_their_domains() {
        let mut rng = crate::TestRng::seed_from_u64(11);
        let strat = prop_oneof![
            3 => (1usize..10).prop_map(|n| n * 2),
            1 => Just(1usize),
        ];
        let mut saw_even = false;
        let mut saw_one = false;
        for _ in 0..200 {
            match crate::Strategy::generate(&strat, &mut rng) {
                1 => saw_one = true,
                n => {
                    assert!(n % 2 == 0 && (2..20).contains(&n));
                    saw_even = true;
                }
            }
        }
        assert!(saw_even && saw_one);

        let chars = crate::collection::vec(crate::char::range('a', 'f'), 2..5);
        for _ in 0..50 {
            let v = crate::Strategy::generate(&chars, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|c| ('a'..='f').contains(c)));
        }

        let pair = (any::<u8>(), 5u64..=6).prop_map(|(a, b)| (a as u64, b));
        for _ in 0..50 {
            let (_, b) = crate::Strategy::generate(&pair, &mut rng);
            assert!(b == 5 || b == 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_round_trip(xs in crate::collection::vec(any::<u16>(), 1..20), k in 1usize..4) {
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(xs.len() * k / k, xs.len());
        }
    }
}

/// Weighted choice between strategies: `prop_oneof![3 => a, 1 => b]`
/// (or unweighted: `prop_oneof![a, b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}
