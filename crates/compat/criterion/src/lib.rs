//! A minimal, API-compatible stand-in for the `criterion` crate.
//!
//! This workspace builds in offline environments with no registry
//! access, so the external `criterion` dependency is replaced by this
//! shim. It provides the builder/group/bencher surface the workspace's
//! benches use and measures with plain wall-clock timing: each
//! benchmark warms up briefly, then reports the mean ns/iteration over
//! a few timed batches. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point used by benches to defeat constant folding.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver (builder-style configuration).
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets how many timed samples to collect.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = (self.warm_up_time, self.measurement_time, self.sample_size);
        run_one(name, None, config, f);
        self
    }
}

/// Units for reporting throughput alongside latency.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter value alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }

    /// An id with an explicit function name and parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` as the benchmark `name` within this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let c = &*self.criterion;
        let config = (c.warm_up_time, c.measurement_time, c.sample_size);
        run_one(&format!("{}/{name}", self.name), self.throughput, config, f);
        self
    }

    /// Runs a parameterised benchmark, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let c = &*self.criterion;
        let config = (c.warm_up_time, c.measurement_time, c.sample_size);
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.throughput,
            config,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// How much setup output to batch per timed routine call.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state: larger batches.
    SmallInput,
    /// Large per-iteration state: one setup per routine call.
    LargeInput,
}

/// Passed to benchmark closures to drive timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back to back for the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh input from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F>(
    label: &str,
    throughput: Option<Throughput>,
    (warm_up, measurement, samples): (Duration, Duration, usize),
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up + calibration: grow the iteration count until one call
    // takes a measurable slice of the warm-up budget.
    let mut iters: u64 = 1;
    let calibration_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if calibration_start.elapsed() >= warm_up || b.elapsed >= warm_up / 4 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    // Measurement: fixed samples at the calibrated count, bounded by
    // the measurement budget.
    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    let measure_start = Instant::now();
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
        if measure_start.elapsed() >= measurement {
            break;
        }
    }

    let ns_per_iter = if total_iters == 0 {
        0.0
    } else {
        total.as_nanos() as f64 / total_iters as f64
    };
    match throughput {
        Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            println!("bench {label:<48} {ns_per_iter:>12.1} ns/iter  {per_sec:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if ns_per_iter > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            println!("bench {label:<48} {ns_per_iter:>12.1} ns/iter  {per_sec:>14.0} B/s");
        }
        _ => {
            println!("bench {label:<48} {ns_per_iter:>12.1} ns/iter");
        }
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// `config = ...` expression building the [`Criterion`] driver.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3)
    }

    #[test]
    fn group_and_bencher_run_routines() {
        let mut c = quick();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        let mut runs = 0u64;
        group.bench_function("iter", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert!(runs > 0, "routine executed");
    }

    criterion_group! {
        name = benches;
        config = quick();
        targets = noop_target
    }

    fn noop_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn declared_group_is_callable() {
        benches();
    }
}
