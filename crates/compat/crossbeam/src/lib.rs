//! A minimal, API-compatible stand-in for the `crossbeam` crate.
//!
//! This workspace builds in offline environments with no registry
//! access, so the external `crossbeam` dependency is replaced by this
//! shim. Only `crossbeam::channel` is provided — MPMC channels built
//! on a mutex-protected deque with condition variables. Semantics
//! match the crossbeam subset the workspace relies on: cloneable
//! senders and receivers, blocking `recv`, `recv_timeout`, and
//! disconnect errors once the other side is fully dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// `send` failed because every receiver was dropped; the value
    /// comes back to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// `recv` failed because the channel is empty and every sender was
    /// dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `recv_timeout` returned without a value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived within the timeout.
        Timeout,
        /// Every sender was dropped and the queue is empty.
        Disconnected,
    }

    /// Why a `try_recv` returned without a value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// Every sender was dropped and the queue is empty.
        Disconnected,
    }

    /// Why a `try_send` did not enqueue. The unsent value comes back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// Every receiver was dropped.
        Disconnected(T),
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages
    /// (`cap == 0` is treated as capacity 1; true rendezvous channels
    /// are not needed by this workspace).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &self.shared;
            let mut queue = shared.lock();
            loop {
                if shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                match shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = match shared.not_full.wait(queue) {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Sends `value` without blocking: fails if the bounded channel
        /// is full or every receiver is gone. Used for coalesced wakeup
        /// channels, where a pending message already carries the signal.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let shared = &self.shared;
            let mut queue = shared.lock();
            if shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = shared.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            queue.push_back(value);
            drop(queue);
            shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake every parked receiver so it can
                // observe the disconnect.
                let _guard = self.shared.lock();
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a value, blocking until one arrives or every
        /// sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &self.shared;
            let mut queue = shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = match shared.not_empty.wait(queue) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Receives a value, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let shared = &self.shared;
            let deadline = Instant::now() + timeout;
            let mut queue = shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = match shared.not_empty.wait_timeout(queue, deadline - now) {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                queue = guard;
            }
        }

        /// Receives a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &self.shared;
            let mut queue = shared.lock();
            if let Some(value) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(value);
            }
            if shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: discard every queued message (matching
                // real crossbeam). A message that won the race against
                // this drop may own resources another thread is parked
                // on — e.g. the only Sender of a reply channel — and
                // leaving it in the orphaned queue strands that thread
                // forever. Destructors run outside the lock in case
                // they touch other channels. Also wake parked senders
                // so they can observe the disconnect.
                let orphaned: Vec<T> = {
                    let mut queue = self.shared.lock();
                    self.shared.not_full.notify_all();
                    queue.drain(..).collect()
                };
                drop(orphaned);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_blocks_until_send() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(20));
            tx.send(42u32).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }

        #[test]
        fn disconnect_is_observable_on_both_sides() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn dropping_last_receiver_discards_queued_messages() {
            // Regression: a queued message may own the only Sender of a
            // reply channel. A send that lands just before the receiver
            // is dropped must not strand the replier forever (observed
            // as a deadlock in KvServer shutdown: the worker drops its
            // rx after SHUTDOWN while a racing request has already
            // enqueued its reply sender).
            let (tx, rx) = unbounded();
            let (reply_tx, reply_rx) = bounded::<u8>(1);
            assert!(tx.send(reply_tx).is_ok());
            drop(rx);
            assert_eq!(reply_rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_send_blocks_at_capacity() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the first recv
                42
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(t.join().unwrap(), 42);
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        }

        #[test]
        fn mpmc_under_contention() {
            let (tx, rx) = bounded(4);
            let mut producers = Vec::new();
            for p in 0..4u64 {
                let tx = tx.clone();
                producers.push(std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut consumers = Vec::new();
            for _ in 0..2 {
                let rx = rx.clone();
                consumers.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap().len()).sum();
            assert_eq!(total, 400);
        }
    }
}
