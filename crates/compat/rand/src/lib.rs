//! A minimal, API-compatible stand-in for the `rand` crate.
//!
//! This workspace builds in offline environments with no registry
//! access, so the external `rand` dependency is replaced by this shim.
//! It provides the subset the workspace uses — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], [`distributions::Uniform`], and
//! [`seq::SliceRandom`] — over a xoshiro256++ generator seeded with
//! SplitMix64. Streams are deterministic per seed but are **not**
//! bit-compatible with the real `rand` crate.

/// Low-level entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64` in `[0, 1)`, integers uniform over the full range).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim's small generator is the same xoshiro core.
    pub type SmallRng = StdRng;
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`'s standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits => [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over an interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Widening multiply keeps modulo bias negligible for
                // the span sizes tests use.
                let x = rng.next_u64() as u128 % span;
                (lo as i128 + x as i128) as $t
            }

            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sampling range");
                let span = (hi as i128 - lo as i128) as u128;
                let x = rng.next_u64() as u128 % span;
                (lo as i128 + x as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sampling range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }

            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sampling range");
                let u = <$t as StandardSample>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Guard the open upper bound against rounding.
                if v >= hi { lo } else { v }
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Distribution objects (`Uniform`) and the [`Distribution`] trait.
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution samplable with any generator.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a fixed interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Uniform {
                lo,
                hi,
                inclusive: false,
            }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            Uniform {
                lo,
                hi,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            if self.inclusive {
                T::sample_inclusive(rng, self.lo, self.hi)
            } else {
                T::sample_half_open(rng, self.lo, self.hi)
            }
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::RngCore;

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// A generator seeded from the system clock and a counter — the shim's
/// `thread_rng` stand-in (deterministic enough for smoke use; seeded
/// tests should prefer [`SeedableRng::seed_from_u64`]).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    rngs::StdRng::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(1e-9..1.0f64);
            assert!((1e-9..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_distribution_inclusive() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = Uniform::new_inclusive(5u64, 10);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let x = dist.sample(&mut rng);
            assert!((5..=10).contains(&x));
            seen.insert(x);
        }
        assert_eq!(seen.len(), 6, "all values reachable");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut xs: Vec<usize> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "astronomically unlikely to be identity");
        assert!(xs.choose(&mut rng).is_some());
    }
}
