//! A minimal, API-compatible stand-in for the `parking_lot` crate.
//!
//! This workspace builds in offline environments with no registry
//! access, so the external `parking_lot` dependency is replaced by this
//! shim over `std::sync`. Only the surface the workspace actually uses
//! is provided: `Mutex`/`MutexGuard` and `RwLock` with the
//! poison-free `parking_lot` API (locking never returns a `Result`; a
//! poisoned `std` lock is treated as still-usable, matching
//! `parking_lot`'s behaviour of not poisoning on panic).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Poison-free mutex with the `parking_lot::Mutex` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, a panic while the lock was held does not poison
    /// it — the guard is recovered, exactly as `parking_lot` behaves.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Poison-free reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { inner }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
