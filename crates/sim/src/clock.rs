//! A logical millisecond clock for deterministic simulations.

use std::sync::atomic::{AtomicU64, Ordering};

/// A manually-advanced clock.
///
/// Simulations advance it explicitly, so every run of a scenario
/// produces the identical timeline regardless of host speed.
#[derive(Debug, Default)]
pub struct SimClock {
    now_ms: AtomicU64,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::Acquire)
    }

    /// Advances by `ms`, returning the new time.
    pub fn advance(&self, ms: u64) -> u64 {
        self.now_ms.fetch_add(ms, Ordering::AcqRel) + ms
    }

    /// Current time in seconds (float, for report output).
    pub fn now_secs(&self) -> f64 {
        self.now_ms() as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now_ms(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert!((c.now_secs() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn concurrent_advances_sum() {
        let c = std::sync::Arc::new(SimClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now_ms(), 4000);
    }
}
