//! # softmem-sim — simulation substrate for the soft-memory experiments
//!
//! The paper's evaluation runs on a real machine with real processes;
//! this crate supplies the deterministic equivalents the benchmark
//! harnesses drive (DESIGN.md §2):
//!
//! * [`clock`] — a logical millisecond clock, so timelines are exact
//!   and tests are reproducible.
//! * [`timeline`] — the per-process footprint recorder behind the
//!   Figure-2 reproduction, with CSV and ASCII-chart rendering.
//! * [`workload`] — key/load generators: Zipfian key popularity, the
//!   diurnal load curve of §2, batch-job arrivals.
//! * [`pressure`] — the canonical two-process pressure scenario of
//!   Figure 2: a KV store holding soft memory, a second process whose
//!   demand forces the daemon to move pages between them.
//! * [`cluster`] — a cluster-scheduler simulation quantifying the §2
//!   motivation: job evictions and recomputed work with a
//!   kill-under-pressure policy versus soft-memory reclamation.
//! * [`diurnal`] — the §2 day/night scenario: a soft cache tracks the
//!   diurnal load curve while a nightly batch job borrows the idle
//!   memory through the daemon.

pub mod clock;
pub mod cluster;
pub mod diurnal;
pub mod pressure;
pub mod timeline;
pub mod workload;

pub use clock::SimClock;
pub use cluster::{ClusterConfig, ClusterOutcome, JobSpec, MemoryPolicy};
pub use diurnal::{DiurnalConfig, DiurnalOutcome, HourStats};
pub use pressure::{PressureConfig, PressureOutcome};
pub use timeline::{Timeline, TimelinePoint};
pub use workload::{BatchArrivals, DiurnalLoad, ZipfKeys};
